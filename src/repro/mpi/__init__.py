"""Simulated MPI: point-to-point, collectives, communicators, topologies.

Rank programs are generators; every MPI call that can block is used
with ``yield from``:

    def program(rank, comm):
        if rank == 0:
            yield from comm.send(1, nbytes=1024, tag=7)
        else:
            status = yield from comm.recv(0, tag=7)

The semantics mirror the MPI subset the two benchmarks exercise:

* non-overtaking point-to-point matching with ``ANY_SOURCE`` /
  ``ANY_TAG`` wildcards, eager and rendezvous protocols;
* nonblocking ``isend``/``irecv`` with ``wait``/``waitall``;
* algorithmic collectives (dissemination barrier, binomial bcast and
  gather, recursive-doubling allreduce, pairwise alltoallv) whose
  cost comes entirely from their constituent point-to-point messages;
* communicator split/dup and Cartesian topologies (``dims_create``,
  periodic shifts) — used by b_eff's 2-D/3-D patterns.
"""

from repro.mpi.core import ANY_SOURCE, ANY_TAG, MpiError, Request, Status
from repro.mpi.comm import Comm, RankComm, World
from repro.mpi.cart import CartComm, dims_create

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiError",
    "Request",
    "Status",
    "Comm",
    "RankComm",
    "World",
    "CartComm",
    "dims_create",
]
