"""Point-to-point machinery: requests, statuses, the matching engine.

One :class:`Matcher` exists per (context id, receiver world rank).
MPI's non-overtaking rule holds because both the posted-receive queue
and the unexpected-message queue are FIFO and matching always scans
from the front.

Protocols:

* **eager** (size <= fabric threshold): the data flow starts at send
  time; the send request completes after the startup latency (local
  buffer handoff), independent of whether a receive is posted.
* **rendezvous**: the data flow starts only once a matching receive
  is posted (plus a handshake delay); the send request completes when
  the data has fully arrived.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.net.model import Fabric
from repro.sim.process import SimEvent, on_trigger

#: wildcard source rank for receives
ANY_SOURCE = -1
#: wildcard tag for receives
ANY_TAG = -1


class MpiError(RuntimeError):
    """Semantic MPI usage error (truncation, bad rank, ...)."""


@dataclass(frozen=True)
class Status:
    """Completion record of a receive (source/tag/size in comm terms)."""

    source: int
    tag: int
    nbytes: int
    data: object = None


class Request:
    """Handle for a nonblocking operation.

    ``wait`` is a generator (use ``yield from req.wait()``); it
    returns the :class:`Status` for receives and ``None`` for sends.
    """

    __slots__ = ("kind", "event", "status")

    def __init__(self, kind: str, event: SimEvent) -> None:
        self.kind = kind
        self.event = event
        self.status: Status | None = None

    @property
    def done(self) -> bool:
        return self.event.triggered

    def wait(self):
        yield self.event
        return self.status

    def test(self) -> bool:
        """Nonblocking completion probe."""
        return self.event.triggered


@dataclass
class _SendRecord:
    src: int  # comm rank of sender
    tag: int
    nbytes: int
    data: object
    arrival: SimEvent  # triggers when the payload is fully delivered
    request: Request
    rendezvous_start: object = None  # callable scheduled on match (rendezvous only)
    matched: bool = field(default=False)


@dataclass
class _RecvRecord:
    src: int  # may be ANY_SOURCE
    tag: int  # may be ANY_TAG
    capacity: int | None
    request: Request


def _tags_match(posted_tag: int, msg_tag: int) -> bool:
    return posted_tag == ANY_TAG or posted_tag == msg_tag


def _srcs_match(posted_src: int, msg_src: int) -> bool:
    return posted_src == ANY_SOURCE or posted_src == msg_src


class Matcher:
    """FIFO matcher for one receiving endpoint in one communicator."""

    __slots__ = ("posted", "unexpected")

    def __init__(self) -> None:
        self.posted: deque[_RecvRecord] = deque()
        self.unexpected: deque[_SendRecord] = deque()

    # -- sender side -----------------------------------------------------

    def offer(self, send: _SendRecord) -> None:
        for recv in self.posted:
            if _srcs_match(recv.src, send.src) and _tags_match(recv.tag, send.tag):
                self.posted.remove(recv)
                _bind(send, recv)
                return
        self.unexpected.append(send)

    # -- receiver side ---------------------------------------------------

    def post(self, recv: _RecvRecord) -> None:
        for send in self.unexpected:
            if _srcs_match(recv.src, send.src) and _tags_match(recv.tag, send.tag):
                self.unexpected.remove(send)
                _bind(send, recv)
                return
        self.posted.append(recv)


def _bind(send: _SendRecord, recv: _RecvRecord) -> None:
    """Pair a message with a receive and wire up completion."""
    if recv.capacity is not None and send.nbytes > recv.capacity:
        raise MpiError(
            f"message truncation: {send.nbytes} bytes sent to a receive of "
            f"capacity {recv.capacity} (src={send.src}, tag={send.tag})"
        )
    send.matched = True
    if send.rendezvous_start is not None:
        send.rendezvous_start()
        send.rendezvous_start = None

    def complete(_value: object) -> None:
        recv.request.status = Status(
            source=send.src, tag=send.tag, nbytes=send.nbytes, data=send.data
        )
        recv.request.event.trigger(recv.request.status)

    on_trigger(send.arrival, complete)


class Endpoint:
    """Per-world point-to-point engine bound to a fabric.

    Ranks here are *world* ranks; the Comm layer translates
    communicator ranks and owns context ids.
    """

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self._matchers: dict[tuple[int, int], Matcher] = {}

    def _matcher(self, context: int, world_dst: int) -> Matcher:
        key = (context, world_dst)
        m = self._matchers.get(key)
        if m is None:
            m = self._matchers[key] = Matcher()
        return m

    def isend(
        self,
        context: int,
        world_src: int,
        world_dst: int,
        comm_src: int,
        nbytes: int,
        tag: int,
        data: object = None,
    ) -> Request:
        if nbytes < 0:
            raise MpiError(f"negative message size {nbytes}")
        if tag < 0:
            # internal collective tags are allowed; user API validates
            pass
        sim = self.sim
        fabric = self.fabric
        send_done = SimEvent(sim, name=f"send:{world_src}->{world_dst}t{tag}")
        request = Request("send", send_done)

        if fabric.is_eager(nbytes):
            arrival = fabric.transfer_event(world_src, world_dst, nbytes)
            # Local completion: the eager buffer handoff costs the
            # startup latency, then the sender may proceed.
            route = fabric.topology.route(world_src, world_dst)
            sim.schedule(fabric.startup_latency(route), lambda: send_done.trigger(None))
            record = _SendRecord(
                src=comm_src, tag=tag, nbytes=nbytes, data=data,
                arrival=arrival, request=request,
            )
        else:
            arrival = SimEvent(sim, name=f"rndv:{world_src}->{world_dst}t{tag}")
            route = fabric.topology.route(world_src, world_dst)

            def start_transfer() -> None:
                delay = fabric.rendezvous_delay(route)

                def begin() -> None:
                    xfer = fabric.transfer_event(world_src, world_dst, nbytes)
                    on_trigger(xfer, arrival.trigger)

                sim.schedule(delay, begin)

            on_trigger(arrival, lambda _v: send_done.trigger(None))
            record = _SendRecord(
                src=comm_src, tag=tag, nbytes=nbytes, data=data,
                arrival=arrival, request=request,
                rendezvous_start=start_transfer,
            )
        self._matcher(context, world_dst).offer(record)
        return request

    def irecv(
        self,
        context: int,
        world_dst: int,
        comm_src: int,
        tag: int,
        capacity: int | None = None,
    ) -> Request:
        event = SimEvent(self.sim, name=f"recv:{world_dst}<-{comm_src}t{tag}")
        request = Request("recv", event)
        record = _RecvRecord(src=comm_src, tag=tag, capacity=capacity, request=request)
        self._matcher(context, world_dst).post(record)
        return request
