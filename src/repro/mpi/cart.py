"""Cartesian process topologies (MPI_Dims_create / MPI_Cart_*).

b_eff's detail patterns communicate along the directions of 2-D and
3-D Cartesian partitionings of MPI_COMM_WORLD; this module provides
the coordinate arithmetic those patterns need.
"""

from __future__ import annotations

import math

from repro.mpi.comm import Comm
from repro.mpi.core import MpiError


def dims_create(nnodes: int, ndims: int, dims: list[int] | None = None) -> tuple[int, ...]:
    """MPI_Dims_create: balanced factorization of ``nnodes``.

    ``dims`` may pre-constrain entries (non-zero values are fixed,
    zeros are free).  Free dimensions are chosen as close to equal as
    possible, in non-increasing order, and their product times the
    fixed entries equals ``nnodes``.
    """
    if nnodes < 1:
        raise MpiError("nnodes must be positive")
    if ndims < 1:
        raise MpiError("ndims must be positive")
    fixed = list(dims) if dims is not None else [0] * ndims
    if len(fixed) != ndims:
        raise MpiError("dims constraint length mismatch")
    fixed_product = 1
    free_slots = 0
    for d in fixed:
        if d < 0:
            raise MpiError(f"negative dimension constraint {d}")
        if d == 0:
            free_slots += 1
        else:
            fixed_product *= d
    if fixed_product == 0 or nnodes % fixed_product != 0:
        raise MpiError(
            f"cannot factor {nnodes} nodes with fixed dims {fixed!r}"
        )
    remaining = nnodes // fixed_product
    if free_slots == 0:
        if remaining != 1:
            raise MpiError("fixed dims do not multiply to nnodes")
        return tuple(fixed)
    # Balanced factorization of `remaining` into free_slots factors.
    from repro.topology.torus import balanced_dims

    free = list(balanced_dims(remaining, free_slots))
    out = []
    for d in fixed:
        out.append(d if d != 0 else free.pop(0))
    return tuple(out)


class CartComm:
    """A communicator with Cartesian coordinates attached.

    Ranks are laid out row-major over ``dims`` (last dimension varies
    fastest), matching MPI_Cart_create with reorder=false.
    """

    def __init__(self, comm: Comm, dims: tuple[int, ...], periodic: bool | tuple[bool, ...] = True):
        if math.prod(dims) != comm.size:
            raise MpiError(
                f"dims {dims!r} do not cover communicator size {comm.size}"
            )
        if any(d < 1 for d in dims):
            raise MpiError(f"bad Cartesian dims {dims!r}")
        self.comm = comm
        self.dims = tuple(dims)
        if isinstance(periodic, bool):
            self.periodic = tuple(periodic for _ in dims)
        else:
            if len(periodic) != len(dims):
                raise MpiError("periodic flags arity mismatch")
            self.periodic = tuple(periodic)

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> tuple[int, ...]:
        self.comm._check_rank(rank)
        out = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def rank_at(self, coords: tuple[int, ...]) -> int:
        if len(coords) != self.ndims:
            raise MpiError("coordinate arity mismatch")
        rank = 0
        for c, extent in zip(coords, self.dims):
            if not (0 <= c < extent):
                raise MpiError(f"coordinate {c} out of range for extent {extent}")
            rank = rank * extent + c
        return rank

    def shift(self, rank: int, dim: int, disp: int = 1) -> tuple[int | None, int | None]:
        """MPI_Cart_shift: (source, dest) ranks for a shift along ``dim``.

        Returns None entries where a non-periodic dimension runs off
        the edge (MPI_PROC_NULL).
        """
        if not (0 <= dim < self.ndims):
            raise MpiError(f"dimension {dim} out of range")
        coords = list(self.coords(rank))
        extent = self.dims[dim]

        def neighbor(offset: int) -> int | None:
            c = coords[dim] + offset
            if self.periodic[dim]:
                c %= extent
            elif not (0 <= c < extent):
                return None
            nc = list(coords)
            nc[dim] = c
            return self.rank_at(tuple(nc))

        return neighbor(-disp), neighbor(+disp)
