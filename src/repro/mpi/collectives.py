"""Algorithmic collectives built from point-to-point messages.

Costs are not analytic formulas: every collective really executes its
constituent messages through the fabric, so contention between a
collective and other traffic (or between phases of the collective
itself) is captured by the fluid network.

Algorithms (the classic MPICH choices):

* barrier — dissemination (ceil(log2 p) rounds of 0-byte messages);
* bcast — binomial tree;
* reduce — binomial tree (mirror of bcast);
* allreduce — recursive doubling with pre/post phases for non-powers
  of two;
* gather — binomial tree with growing payloads;
* allgather — ring (p-1 steps);
* alltoallv — pairwise exchange ((p-1) sendrecv steps) — this is the
  method b_eff's ``MPI_Alltoallv`` communication variant uses, and the
  0-byte slots it exchanges for non-neighbors are exactly why the
  nonblocking method usually wins the max-over-methods.

All functions are generators operating on a :class:`repro.mpi.comm.Comm`
plus the caller's rank; internal message tags live in the negative
tag space so they can never collide with user tags.
"""

from __future__ import annotations

import operator
from collections.abc import Sequence

# Internal tag space (user tags are >= 0).
TAG_BARRIER = -10
TAG_BCAST = -11
TAG_REDUCE = -12
TAG_ALLREDUCE_PRE = -13
TAG_ALLREDUCE_RD = -14
TAG_ALLREDUCE_POST = -15
TAG_GATHER = -16
TAG_ALLGATHER = -17
TAG_ALLTOALLV = -18


def _combine(a: object, b: object, op) -> object:
    """Reduce two contributions; None propagates (timing-only use)."""
    if a is None or b is None:
        return None
    return op(a, b)


def barrier(comm, rank: int):
    """Dissemination barrier: after ceil(log2 p) rounds everyone has
    (transitively) heard from everyone."""
    size = comm.size
    if size == 1:
        return None
    step = 1
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        sreq = comm._isend_internal(rank, dst, 0, TAG_BARRIER)
        rreq = comm._irecv_internal(rank, src, TAG_BARRIER)
        yield from comm.waitall([sreq, rreq])
        step <<= 1
    return None


def bcast(comm, rank: int, root: int, nbytes: int, data: object = None):
    """Binomial-tree broadcast; returns the payload on every rank."""
    comm._check_rank(root)
    size = comm.size
    if size == 1:
        return data
    relative = (rank - root) % size
    payload = data if rank == root else None

    # Receive phase: non-roots receive from the parent determined by
    # the lowest set bit of the relative rank.
    mask = 1
    while mask < size:
        if relative & mask:
            src = (rank - mask) % size
            status = yield from comm._recv_internal(rank, src, TAG_BCAST)
            payload = status.data
            break
        mask <<= 1
    # Send phase: forward down the tree.
    mask >>= 1
    reqs = []
    while mask > 0:
        if relative + mask < size:
            dst = (rank + mask) % size
            reqs.append(comm._isend_internal(rank, dst, nbytes, TAG_BCAST, payload))
        mask >>= 1
    if reqs:
        yield from comm.waitall(reqs)
    return payload


def reduce(comm, rank: int, root: int, nbytes: int, value: object, op=None):
    """Binomial-tree reduction; the root returns the combined value."""
    comm._check_rank(root)
    op = op or operator.add
    size = comm.size
    if size == 1:
        return value
    relative = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if relative & mask:
            dst = (rank - mask) % size
            yield from comm._send_internal(rank, dst, nbytes, TAG_REDUCE, acc)
            return None
        src_rel = relative + mask
        if src_rel < size:
            src = (rank + mask) % size
            status = yield from comm._recv_internal(rank, src, TAG_REDUCE)
            acc = _combine(acc, status.data, op)
        mask <<= 1
    return acc if rank == root else None


def allreduce(comm, rank: int, nbytes: int, value: object, op=None):
    """Recursive doubling; every rank returns the combined value."""
    op = op or operator.add
    size = comm.size
    if size == 1:
        return value
    p2 = 1
    while p2 * 2 <= size:
        p2 *= 2
    rem = size - p2
    acc = value

    # Pre-phase: fold the surplus ranks into the power-of-two group.
    participating = True
    newrank = rank
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from comm._send_internal(rank, rank - 1, nbytes, TAG_ALLREDUCE_PRE, acc)
            participating = False
        else:
            status = yield from comm._recv_internal(rank, rank + 1, TAG_ALLREDUCE_PRE)
            acc = _combine(acc, status.data, op)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if participating:
        mask = 1
        while mask < p2:
            partner_new = newrank ^ mask
            partner = partner_new * 2 if partner_new < rem else partner_new + rem
            status = yield from comm._sendrecv_internal(
                rank, partner, nbytes, partner, TAG_ALLREDUCE_RD, send_data=acc
            )
            acc = _combine(acc, status.data, op)
            mask <<= 1

    # Post-phase: hand the result back to the folded ranks.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm._send_internal(rank, rank + 1, nbytes, TAG_ALLREDUCE_POST, acc)
        else:
            status = yield from comm._recv_internal(rank, rank - 1, TAG_ALLREDUCE_POST)
            acc = status.data
    return acc


def gather(comm, rank: int, root: int, nbytes: int, value: object = None):
    """Binomial gather; root returns the list of per-rank values."""
    comm._check_rank(root)
    size = comm.size
    collected: dict[int, object] = {rank: value}
    if size == 1:
        return [value]
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            dst = (rank - mask) % size
            yield from comm._send_internal(
                rank, dst, nbytes * len(collected), TAG_GATHER, collected
            )
            return None
        src_rel = relative + mask
        if src_rel < size:
            src = (rank + mask) % size
            status = yield from comm._recv_internal(rank, src, TAG_GATHER)
            collected.update(status.data)
        mask <<= 1
    return [collected[r] for r in range(size)]


def allgather(comm, rank: int, nbytes: int, value: object = None):
    """Ring allgather: p-1 steps, passing blocks around the ring."""
    size = comm.size
    blocks: list[object] = [None] * size
    blocks[rank] = value
    if size == 1:
        return blocks
    right = (rank + 1) % size
    left = (rank - 1) % size
    carrying = rank  # index of the block we forward next
    for _step in range(size - 1):
        status = yield from comm._sendrecv_internal(
            rank, right, nbytes, left, TAG_ALLGATHER,
            send_data=(carrying, blocks[carrying]),
        )
        idx, payload = status.data
        blocks[idx] = payload
        carrying = idx
    return blocks


def alltoallv(
    comm,
    rank: int,
    send_nbytes: Sequence[int],
    send_data: Sequence[object] | None = None,
):
    """Pairwise-exchange alltoallv.

    ``send_nbytes[d]`` is the byte count for destination ``d`` (0 is
    allowed and still exchanges a header-only message — the fixed
    per-step cost that makes Alltoallv on sparse patterns expensive).
    Returns ``[(nbytes, data), ...]`` indexed by source rank.
    """
    size = comm.size
    if len(send_nbytes) != size:
        raise ValueError(f"send_nbytes needs {size} entries, got {len(send_nbytes)}")
    if send_data is not None and len(send_data) != size:
        raise ValueError("send_data length mismatch")
    received: list[tuple[int, object]] = [(0, None)] * size
    own = send_data[rank] if send_data is not None else None
    received[rank] = (send_nbytes[rank], own)
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        payload = send_data[dst] if send_data is not None else None
        status = yield from comm._sendrecv_internal(
            rank, dst, send_nbytes[dst], src, TAG_ALLTOALLV, send_data=payload
        )
        received[src] = (status.nbytes, status.data)
    return received
