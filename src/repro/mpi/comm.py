"""Communicators and the simulated world.

:class:`World` owns the simulator, the fabric, and the rank programs;
:class:`Comm` is the object rank programs talk to.  Rank programs are
factories ``factory(rank, comm) -> generator``; :meth:`World.run`
drives the whole system to completion in virtual time.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Sequence

from repro.mpi import collectives
from repro.mpi.core import ANY_SOURCE, ANY_TAG, Endpoint, MpiError, Request, Status
from repro.net.model import Fabric
from repro.sim.engine import Simulator
from repro.sim.process import Process, wait_all


class World:
    """All simulated MPI state for one machine run."""

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.endpoint = Endpoint(fabric)
        self.nprocs = fabric.topology.nprocs
        self._next_context = 0
        self.comm_world = Comm(self, ranks=list(range(self.nprocs)))

    def _new_context(self) -> int:
        ctx = self._next_context
        self._next_context += 1
        return ctx

    def spawn(self, factory: Callable[["RankComm"], Generator]) -> list[Process]:
        """Create one process per rank running ``factory(rank_comm)``.

        The factory receives a :class:`RankComm` — the world
        communicator bound to that process's rank.
        """
        procs = []
        for rank in range(self.nprocs):
            gen = factory(self.comm_world.view(rank))
            procs.append(Process(self.sim, gen, name=f"rank{rank}"))
        return procs

    def run(
        self,
        factory: Callable[["RankComm"], Generator],
        max_events: int | None = None,
    ) -> list[object]:
        """Spawn all ranks, run to completion, return per-rank results.

        ``max_events`` bounds the simulation (fault-injected runs use
        it as a never-hang guard); exhausting it raises
        :class:`repro.sim.engine.EventBudgetError`.
        """
        procs = self.spawn(factory)
        self.sim.run_to_completion(max_events=max_events)
        return [p.result for p in procs]


class Comm:
    """A communicator: an ordered group of world ranks + a context id.

    All rank arguments of the methods are ranks *within this
    communicator*.  A rank program learns its own rank per
    communicator via :meth:`rank_of_world` / the ``rank`` passed by
    :meth:`World.run` (for ``comm_world`` the two coincide).
    """

    def __init__(self, world: World, ranks: Sequence[int]) -> None:
        if not ranks:
            raise MpiError("empty communicator")
        if len(set(ranks)) != len(ranks):
            raise MpiError(f"duplicate world ranks in communicator: {ranks!r}")
        self.world = world
        self.ranks = list(ranks)
        self.context = world._new_context()
        self._world_to_comm = {w: i for i, w in enumerate(self.ranks)}

    # -- introspection -----------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.ranks)

    def world_rank(self, comm_rank: int) -> int:
        self._check_rank(comm_rank)
        return self.ranks[comm_rank]

    def rank_of_world(self, world_rank: int) -> int | None:
        """This communicator's rank of a world rank (None if absent)."""
        return self._world_to_comm.get(world_rank)

    def wtime(self) -> float:
        """MPI_Wtime: current virtual time in seconds."""
        return self.world.sim.now

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise MpiError(f"rank {rank} out of range for communicator of size {self.size}")

    def _check_tag(self, tag: int) -> None:
        if tag < 0 and tag not in (ANY_TAG,):
            raise MpiError(f"negative tag {tag} reserved for internal use")

    # -- point-to-point ------------------------------------------------------

    def isend(self, my_rank: int, dst: int, nbytes: int, tag: int = 0, data: object = None) -> Request:
        """Nonblocking send of ``nbytes`` from ``my_rank`` to ``dst``."""
        self._check_rank(my_rank)
        self._check_rank(dst)
        self._check_tag(tag)
        return self._isend_internal(my_rank, dst, nbytes, tag, data)

    def _isend_internal(self, my_rank: int, dst: int, nbytes: int, tag: int, data: object = None) -> Request:
        return self.world.endpoint.isend(
            context=self.context,
            world_src=self.ranks[my_rank],
            world_dst=self.ranks[dst],
            comm_src=my_rank,
            nbytes=nbytes,
            tag=tag,
            data=data,
        )

    def irecv(self, my_rank: int, src: int = ANY_SOURCE, tag: int = ANY_TAG,
              capacity: int | None = None) -> Request:
        """Nonblocking receive at ``my_rank`` (wildcards allowed)."""
        self._check_rank(my_rank)
        if src != ANY_SOURCE:
            self._check_rank(src)
        if tag != ANY_TAG:
            self._check_tag(tag)
        return self._irecv_internal(my_rank, src, tag, capacity)

    def _irecv_internal(self, my_rank: int, src: int, tag: int,
                        capacity: int | None = None) -> Request:
        return self.world.endpoint.irecv(
            context=self.context,
            world_dst=self.ranks[my_rank],
            comm_src=src,
            tag=tag,
            capacity=capacity,
        )

    def _send_internal(self, my_rank: int, dst: int, nbytes: int, tag: int, data: object = None):
        """Blocking send with an internal (negative) tag."""
        req = self._isend_internal(my_rank, dst, nbytes, tag, data)
        result = yield from req.wait()
        return result

    def _recv_internal(self, my_rank: int, src: int, tag: int):
        """Blocking receive with an internal (negative) tag."""
        req = self._irecv_internal(my_rank, src, tag)
        status = yield from req.wait()
        return status

    def _sendrecv_internal(self, my_rank: int, dst: int, send_nbytes: int,
                           src: int, tag: int, send_data: object = None):
        rreq = self._irecv_internal(my_rank, src, tag)
        sreq = self._isend_internal(my_rank, dst, send_nbytes, tag, send_data)
        yield from sreq.wait()
        status = yield from rreq.wait()
        return status

    def send(self, my_rank: int, dst: int, nbytes: int, tag: int = 0, data: object = None):
        """Blocking send (generator)."""
        req = self.isend(my_rank, dst, nbytes, tag, data)
        result = yield from req.wait()
        return result

    def recv(self, my_rank: int, src: int = ANY_SOURCE, tag: int = ANY_TAG,
             capacity: int | None = None):
        """Blocking receive (generator) -> Status."""
        req = self.irecv(my_rank, src, tag, capacity)
        status = yield from req.wait()
        return status

    def sendrecv(
        self,
        my_rank: int,
        dst: int,
        send_nbytes: int,
        src: int,
        tag: int = 0,
        send_data: object = None,
        recv_capacity: int | None = None,
    ):
        """MPI_Sendrecv: concurrent send to ``dst`` and receive from ``src``."""
        rreq = self.irecv(my_rank, src, tag, recv_capacity)
        sreq = self.isend(my_rank, dst, send_nbytes, tag, send_data)
        yield from sreq.wait()
        status = yield from rreq.wait()
        return status

    @staticmethod
    def waitall(requests: Sequence[Request]):
        """Wait for every request; returns their statuses in order."""
        yield from wait_all([r.event for r in requests])
        return [r.status for r in requests]

    # -- collectives (generators; see repro.mpi.collectives) -----------------

    def barrier(self, my_rank: int):
        result = yield from collectives.barrier(self, my_rank)
        return result

    def bcast(self, my_rank: int, root: int, nbytes: int, data: object = None):
        result = yield from collectives.bcast(self, my_rank, root, nbytes, data)
        return result

    def reduce(self, my_rank: int, root: int, nbytes: int, value: object, op=None):
        result = yield from collectives.reduce(self, my_rank, root, nbytes, value, op)
        return result

    def allreduce(self, my_rank: int, nbytes: int, value: object, op=None):
        result = yield from collectives.allreduce(self, my_rank, nbytes, value, op)
        return result

    def gather(self, my_rank: int, root: int, nbytes: int, value: object = None):
        result = yield from collectives.gather(self, my_rank, root, nbytes, value)
        return result

    def allgather(self, my_rank: int, nbytes: int, value: object = None):
        result = yield from collectives.allgather(self, my_rank, nbytes, value)
        return result

    def alltoallv(self, my_rank: int, send_nbytes: Sequence[int],
                  send_data: Sequence[object] | None = None):
        result = yield from collectives.alltoallv(self, my_rank, send_nbytes, send_data)
        return result

    # -- communicator management ---------------------------------------------

    def dup(self) -> "Comm":
        """New communicator over the same group (fresh context)."""
        return Comm(self.world, self.ranks)

    def create(self, comm_ranks: Sequence[int]) -> "Comm":
        """Sub-communicator from *this* communicator's ranks (in order given)."""
        world_ranks = [self.world_rank(r) for r in comm_ranks]
        return Comm(self.world, world_ranks)

    def split(self, assignments: Sequence[tuple[int, int]]) -> dict[int, "Comm"]:
        """MPI_Comm_split over the whole group at once.

        ``assignments[r] = (color, key)`` for every rank ``r``.  Returns
        ``{color: Comm}``; within each new communicator ranks are
        ordered by (key, old rank).  Ranks with color < 0
        (MPI_UNDEFINED) get no communicator.
        """
        if len(assignments) != self.size:
            raise MpiError("split needs one (color, key) per rank")
        by_color: dict[int, list[tuple[int, int]]] = {}
        for rank, (color, key) in enumerate(assignments):
            if color < 0:
                continue
            by_color.setdefault(color, []).append((key, rank))
        out = {}
        for color, members in by_color.items():
            members.sort()
            out[color] = self.create([rank for _key, rank in members])
        return out

    def view(self, my_rank: int) -> "RankComm":
        """This communicator bound to one rank (the per-process handle)."""
        self._check_rank(my_rank)
        return RankComm(self, my_rank)


class RankComm:
    """A communicator as seen from one rank.

    This is the handle rank programs use: ``comm.rank`` and
    ``comm.size`` are plain attributes and all operations drop the
    explicit ``my_rank`` argument of :class:`Comm`:

        status = yield from comm.sendrecv(dst=left, send_nbytes=L, src=right)

    Communicator *construction* (dup/split/create) stays on
    :class:`Comm` and is done by the host-side driver before rank
    programs start — our benchmarks build their pattern communicators
    up front, which keeps rank programs free of collective
    bookkeeping.  Use :meth:`of` to re-bind a prebuilt communicator to
    this process.
    """

    __slots__ = ("comm", "rank")

    def __init__(self, comm: Comm, rank: int) -> None:
        self.comm = comm
        self.rank = rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def world(self) -> World:
        return self.comm.world

    def wtime(self) -> float:
        return self.comm.wtime()

    def of(self, other: Comm) -> "RankComm | None":
        """Bind ``other`` to this process (None if the process is not in it)."""
        my_world = self.comm.world_rank(self.rank)
        other_rank = other.rank_of_world(my_world)
        if other_rank is None:
            return None
        return RankComm(other, other_rank)

    # -- point-to-point ----------------------------------------------------

    def isend(self, dst: int, nbytes: int, tag: int = 0, data: object = None) -> Request:
        return self.comm.isend(self.rank, dst, nbytes, tag, data)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
              capacity: int | None = None) -> Request:
        return self.comm.irecv(self.rank, src, tag, capacity)

    def send(self, dst: int, nbytes: int, tag: int = 0, data: object = None):
        result = yield from self.comm.send(self.rank, dst, nbytes, tag, data)
        return result

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
             capacity: int | None = None):
        status = yield from self.comm.recv(self.rank, src, tag, capacity)
        return status

    def sendrecv(self, dst: int, send_nbytes: int, src: int, tag: int = 0,
                 send_data: object = None, recv_capacity: int | None = None):
        status = yield from self.comm.sendrecv(
            self.rank, dst, send_nbytes, src, tag, send_data, recv_capacity
        )
        return status

    @staticmethod
    def waitall(requests: Sequence[Request]):
        statuses = yield from Comm.waitall(requests)
        return statuses

    # -- collectives ---------------------------------------------------------

    def barrier(self):
        result = yield from self.comm.barrier(self.rank)
        return result

    def bcast(self, root: int, nbytes: int, data: object = None):
        result = yield from self.comm.bcast(self.rank, root, nbytes, data)
        return result

    def reduce(self, root: int, nbytes: int, value: object, op=None):
        result = yield from self.comm.reduce(self.rank, root, nbytes, value, op)
        return result

    def allreduce(self, nbytes: int, value: object, op=None):
        result = yield from self.comm.allreduce(self.rank, nbytes, value, op)
        return result

    def gather(self, root: int, nbytes: int, value: object = None):
        result = yield from self.comm.gather(self.rank, root, nbytes, value)
        return result

    def allgather(self, nbytes: int, value: object = None):
        result = yield from self.comm.allgather(self.rank, nbytes, value)
        return result

    def alltoallv(self, send_nbytes: Sequence[int],
                  send_data: Sequence[object] | None = None):
        result = yield from self.comm.alltoallv(self.rank, send_nbytes, send_data)
        return result
