"""File views: mapping a rank's linear byte stream to file offsets.

An MPI file view makes each process see a (possibly strided) window
of the file as one linear sequence.  ``map_bytes`` converts a range
of that sequence into absolute file extents — the quantity the
filesystem layer consumes.

``StridedView(disp, block, stride)`` is the view b_eff_io's
scattering pattern type 0 sets: process ``r`` of ``n`` uses
``disp = r * l``, ``block = l``, ``stride = n * l`` so the processes'
chunks interleave across the file.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class FileView(ABC):
    """Maps view-relative byte positions to absolute file extents."""

    @abstractmethod
    def map_bytes(self, position: int, nbytes: int) -> list[tuple[int, int]]:
        """Absolute (start, end) extents for [position, position+nbytes)."""

    @abstractmethod
    def extent_of(self, nbytes: int) -> int:
        """File-space span consumed by ``nbytes`` of view data from 0."""


class ContiguousView(FileView):
    """The default view: the file itself, shifted by ``disp``."""

    def __init__(self, disp: int = 0) -> None:
        if disp < 0:
            raise ValueError("displacement must be >= 0")
        self.disp = disp

    def map_bytes(self, position: int, nbytes: int) -> list[tuple[int, int]]:
        if position < 0 or nbytes < 0:
            raise ValueError("negative position or size")
        if nbytes == 0:
            return []
        start = self.disp + position
        return [(start, start + nbytes)]

    def extent_of(self, nbytes: int) -> int:
        return nbytes

    def __repr__(self) -> str:
        return f"ContiguousView(disp={self.disp})"


class StridedView(FileView):
    """Blocks of ``block`` bytes every ``stride`` bytes, from ``disp``.

    ``map_bytes`` is called once per repetition of a timed loop with a
    position that advances by a whole number of blocks, so the extent
    list of call *i+1* is the list of call *i* shifted by ``stride``
    per block.  The view therefore memoises one *canonical plan* per
    ``(position % block, nbytes)`` shape and shifts it by the block
    index — exact integer arithmetic, bit-identical to the direct
    computation.
    """

    #: canonical plans kept per view (distinct shapes are few; the cap
    #: only guards against adversarial call sequences)
    _PLAN_CAP = 1024

    def __init__(self, disp: int, block: int, stride: int) -> None:
        if disp < 0:
            raise ValueError("displacement must be >= 0")
        if block < 1:
            raise ValueError("block must be >= 1")
        if stride < block:
            raise ValueError("stride must be >= block")
        self.disp = disp
        self.block = block
        self.stride = stride
        self._plans: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}

    def _plan(self, in_block: int, nbytes: int) -> tuple[tuple[int, int], ...]:
        """Extents for ``nbytes`` of view data starting at block 0 + ``in_block``."""
        out: list[tuple[int, int]] = []
        remaining = nbytes
        pos = in_block
        while remaining > 0:
            block_idx, off = divmod(pos, self.block)
            start = self.disp + block_idx * self.stride + off
            take = min(self.block - off, remaining)
            # coalesce with previous extent when contiguous (stride == block)
            if out and out[-1][1] == start:
                out[-1] = (out[-1][0], start + take)
            else:
                out.append((start, start + take))
            pos += take
            remaining -= take
        return tuple(out)

    def map_bytes(self, position: int, nbytes: int) -> list[tuple[int, int]]:
        if position < 0 or nbytes < 0:
            raise ValueError("negative position or size")
        if nbytes == 0:
            return []
        block_idx, in_block = divmod(position, self.block)
        key = (in_block, nbytes)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plan(in_block, nbytes)
            if len(self._plans) < self._PLAN_CAP:
                self._plans[key] = plan
        shift = block_idx * self.stride
        if shift == 0:
            return list(plan)
        return [(s + shift, e + shift) for s, e in plan]

    def extent_of(self, nbytes: int) -> int:
        if nbytes == 0:
            return 0
        full, rest = divmod(nbytes, self.block)
        if rest == 0:
            return (full - 1) * self.stride + self.block
        return full * self.stride + rest

    def __repr__(self) -> str:
        return f"StridedView(disp={self.disp}, block={self.block}, stride={self.stride})"
