"""Simulated MPI-IO on top of the parallel filesystem.

Implements the MPI-2 I/O subset b_eff_io exercises (paper Sec. 3.2,
item 4):

* access methods: first write, rewrite, read (the benchmark's three);
* positioning: individual file pointers and shared file pointers
  (explicit offsets exist as ``write_at``/``read_at``);
* coordination: collective and noncollective variants, with a
  ROMIO-style two-phase collective-buffering optimization — data is
  exchanged over the *compute* fabric to aggregator ranks which issue
  large merged filesystem requests;
* synchronism: blocking only (the benchmark uses no overlap);
* file views: contiguous and strided (the scatter pattern type 0).

``MPI_File_sync`` maps to a collective flush that waits until no
server holds dirty bytes of the file — matching the paper's
discussion that sync publishes data but a benchmark must still write
far more than the cache to measure disks.
"""

from repro.mpiio.fileview import ContiguousView, FileView, StridedView
from repro.mpiio.file import IOFile, open_file

__all__ = ["FileView", "ContiguousView", "StridedView", "IOFile", "open_file"]
