"""Rendezvous gate for collective file operations.

Every collective call on an :class:`~repro.mpiio.file.IOFile` is a
rendezvous: the n-th collective call of each rank joins the n-th gate
instance; the last arrival runs the gate's action (a generator, e.g.
the two-phase exchange+write) in a fresh process, and everyone leaves
together with the action's result.  MPI's ordering rule — all ranks
issue collective operations in the same order — is what makes the
per-rank sequence number a sound matching key.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.sim.process import Process, SimEvent, on_trigger


class CollectiveGate:
    def __init__(self, sim, size: int, name: str = "gate") -> None:
        if size < 1:
            raise ValueError("gate size must be >= 1")
        self.sim = sim
        self.size = size
        self.name = name
        self._rank_seq = [0] * size
        self._instances: dict[int, _GateInstance] = {}

    def arrive(
        self,
        rank: int,
        payload: object,
        action: Callable[[dict[int, object]], Generator],
    ):
        """Generator: join the gate, wait for the action, return its result.

        ``action`` receives ``{rank: payload}`` once everyone has
        arrived; only the action passed by the *last* arriving rank is
        executed (all ranks of one collective call pass the same
        action by construction).
        """
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range")
        seq = self._rank_seq[rank]
        self._rank_seq[rank] += 1
        inst = self._instances.get(seq)
        if inst is None:
            inst = self._instances[seq] = _GateInstance(
                SimEvent(self.sim, name=f"{self.name}#{seq}")
            )
        if rank in inst.contributions:
            raise RuntimeError(f"rank {rank} arrived twice at {self.name}#{seq}")
        inst.contributions[rank] = payload
        if len(inst.contributions) == self.size:
            del self._instances[seq]
            proc = Process(
                self.sim,
                action(inst.contributions),
                name=f"{self.name}#{seq}.action",
            )
            on_trigger(proc.done_event, inst.release.trigger)
        result = yield inst.release
        return result


class _GateInstance:
    __slots__ = ("release", "contributions")

    def __init__(self, release: SimEvent) -> None:
        self.release = release
        self.contributions: dict[int, object] = {}
