"""The MPI-IO file object.

One :class:`IOFile` is shared by all ranks of the communicator that
opened it (pass the opening rank to each method, or use it through
the benchmark drivers).  Pointers:

* individual file pointers — one per rank, view-relative;
* one shared file pointer — view-relative, advanced atomically.

Collective data operations run ROMIO-style two-phase collective
buffering (:meth:`write_all` / :meth:`read_all` / the ordered shared-
pointer variants): per-rank extents are merged into contiguous runs,
runs are split into ``cb_buffer`` chunks assigned round-robin to
``num_aggregators`` aggregator ranks, data moves over the compute
fabric between ranks and aggregators, and each aggregator issues a
single large filesystem call.  This is the mechanism that makes the
scattering pattern type 0 fast for small disk chunks (Fig. 4).
"""

from __future__ import annotations

from repro.mpi.comm import Comm
from repro.mpiio.fileview import ContiguousView, FileView
from repro.mpiio.gate import CollectiveGate
from repro.pfs.filesystem import FileSystem, PFSFile
from repro.sim.process import Process, wait_all
from repro.util import MB


def open_file(
    comm: Comm,
    fs: FileSystem,
    name: str,
    cb_buffer: int = 4 * MB,
    num_aggregators: int | None = None,
    sync_drains: bool = False,
) -> "IOFile":
    """Collectively open (create if absent) ``name`` over ``comm``.

    ``sync_drains`` defaults to False — MPI_File_sync only *publishes*
    (the MPI standard's consistency semantics, which the paper's
    Sec. 5.4 stresses: sync does not guarantee data reached a
    permanent medium).  This matches :class:`~repro.beffio.benchmark.
    BeffIOConfig`, so the benchmark driver and a directly opened file
    behave identically.  Pass ``sync_drains=True`` for a stricter
    model where sync waits for disk writeback.
    """
    return IOFile(
        comm, fs, name,
        cb_buffer=cb_buffer,
        num_aggregators=num_aggregators,
        sync_drains=sync_drains,
    )


class IOFile:
    def __init__(
        self,
        comm: Comm,
        fs: FileSystem,
        name: str,
        cb_buffer: int = 4 * MB,
        num_aggregators: int | None = None,
        sync_drains: bool = False,
    ) -> None:
        """``sync_drains`` selects the strength of :meth:`sync`.

        False (default, **paper semantics**): sync only *publishes*
        (consistency semantics), matching the paper's Sec. 5.4
        observation that MPI_File_sync does not guarantee data reached
        a permanent medium; cached data may still inflate short
        benchmark runs.  True: sync waits for disk writeback — the
        durability a careful application wants.  The default agrees
        with ``BeffIOConfig.sync_drains`` so the b_eff_io driver and a
        hand-opened file see the same semantics.
        """
        if cb_buffer < 1:
            raise ValueError("cb_buffer must be >= 1")
        self.comm = comm
        self.fs = fs
        self.fabric = comm.world.fabric
        self.pfsfile: PFSFile = fs.open(name)
        self.cb_buffer = cb_buffer
        naggr = num_aggregators if num_aggregators is not None else comm.size
        self.num_aggregators = max(1, min(naggr, comm.size))
        self._views: list[FileView] = [ContiguousView(0) for _ in range(comm.size)]
        self._fp = [0] * comm.size
        self._shared_fp = 0
        self._gate = CollectiveGate(comm.world.sim, comm.size, name=f"io:{name}")
        #: last collective plan: (flat extent list, aggregator assignments)
        self._plan_cache: tuple[list, list] | None = None
        self.sync_drains = sync_drains
        self.closed = False
        #: statistics
        self.bytes_written = 0
        self.bytes_read = 0

    # -- views and pointers -------------------------------------------------

    def set_view(self, rank: int, view: FileView) -> None:
        """MPI_File_set_view: install a view; resets the rank's pointer."""
        self.comm._check_rank(rank)
        self._views[rank] = view
        self._fp[rank] = 0

    def view(self, rank: int) -> FileView:
        return self._views[rank]

    def tell(self, rank: int) -> int:
        return self._fp[rank]

    def seek(self, rank: int, position: int) -> None:
        if position < 0:
            raise ValueError("negative file position")
        self._fp[rank] = position

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"I/O on closed file {self.pfsfile.name!r}")

    def _client(self, rank: int) -> int:
        return self.comm.world_rank(rank)

    # -- noncollective operations ----------------------------------------------

    def write(self, rank: int, nbytes: int):
        """Noncollective write at the individual file pointer."""
        self._check_open()
        extents = self._views[rank].map_bytes(self._fp[rank], nbytes)
        self._fp[rank] += nbytes
        yield from self.fs.submit_io(self._client(rank), self.pfsfile, "write", extents)
        self.bytes_written += nbytes
        return nbytes

    def read(self, rank: int, nbytes: int):
        """Noncollective read at the individual file pointer."""
        self._check_open()
        extents = self._views[rank].map_bytes(self._fp[rank], nbytes)
        self._fp[rank] += nbytes
        yield from self.fs.submit_io(self._client(rank), self.pfsfile, "read", extents)
        self.bytes_read += nbytes
        return nbytes

    def write_at(self, rank: int, position: int, nbytes: int):
        """Explicit-offset write (does not move the individual pointer)."""
        self._check_open()
        extents = self._views[rank].map_bytes(position, nbytes)
        yield from self.fs.submit_io(self._client(rank), self.pfsfile, "write", extents)
        self.bytes_written += nbytes
        return nbytes

    def read_at(self, rank: int, position: int, nbytes: int):
        """Explicit-offset read (does not move the individual pointer)."""
        self._check_open()
        extents = self._views[rank].map_bytes(position, nbytes)
        yield from self.fs.submit_io(self._client(rank), self.pfsfile, "read", extents)
        self.bytes_read += nbytes
        return nbytes

    def write_shared(self, rank: int, nbytes: int):
        """Noncollective shared-pointer write (pointer grabbed atomically)."""
        self._check_open()
        position = self._shared_fp
        self._shared_fp += nbytes
        extents = self._views[rank].map_bytes(position, nbytes)
        yield from self.fs.submit_io(self._client(rank), self.pfsfile, "write", extents)
        self.bytes_written += nbytes
        return nbytes

    def read_shared(self, rank: int, nbytes: int):
        """Noncollective shared-pointer read."""
        self._check_open()
        position = self._shared_fp
        self._shared_fp += nbytes
        extents = self._views[rank].map_bytes(position, nbytes)
        yield from self.fs.submit_io(self._client(rank), self.pfsfile, "read", extents)
        self.bytes_read += nbytes
        return nbytes

    # -- collective operations -----------------------------------------------

    def write_all(self, rank: int, nbytes: int):
        """Collective write at the individual pointer (two-phase)."""
        result = yield from self._collective_data(rank, nbytes, "write", shared=False)
        return result

    def read_all(self, rank: int, nbytes: int):
        """Collective read at the individual pointer (two-phase)."""
        result = yield from self._collective_data(rank, nbytes, "read", shared=False)
        return result

    def write_ordered(self, rank: int, nbytes: int):
        """Collective shared-pointer write: rank-ordered contiguous blocks."""
        result = yield from self._collective_data(rank, nbytes, "write", shared=True)
        return result

    def read_ordered(self, rank: int, nbytes: int):
        """Collective shared-pointer read."""
        result = yield from self._collective_data(rank, nbytes, "read", shared=True)
        return result

    def _collective_data(self, rank: int, nbytes: int, kind: str, shared: bool):
        self._check_open()
        if not shared:
            position = self._fp[rank]
            self._fp[rank] += nbytes
        else:
            position = None  # assigned when everyone has arrived
        result = yield from self._gate.arrive(
            rank,
            (position, nbytes),
            lambda contribs: self._two_phase(contribs, kind, shared),
        )
        return result

    def _two_phase(self, contribs: dict[int, tuple[int | None, int]], kind: str,
                   shared: bool):
        """Exchange + aggregated access; runs once per collective call."""
        size = self.comm.size
        # Resolve positions: shared-pointer collectives get rank-ordered
        # consecutive blocks starting at the shared pointer.
        per_rank_extents: dict[int, list[tuple[int, int]]] = {}
        if shared:
            base = self._shared_fp
            for r in range(size):
                _pos, nbytes = contribs[r]
                per_rank_extents[r] = self._views[r].map_bytes(base, nbytes)
                base += nbytes
            self._shared_fp = base
        else:
            for r, (pos, nbytes) in contribs.items():
                per_rank_extents[r] = self._views[r].map_bytes(pos, nbytes)

        total = sum(nb for _pos, nb in contribs.values())
        flat: list[tuple[int, int]] = []
        for r in range(size):
            flat.extend(per_rank_extents[r])
        assignments = self._collective_plan(flat)

        if kind == "write":
            # Phase 1: ranks ship data to aggregators; Phase 2: writes.
            yield from wait_all(self._exchange_flows(contribs, kind))
            yield from self._aggregated_io(assignments, "write")
            self.bytes_written += total
        else:
            # Phase 1: aggregators read; Phase 2: data back to ranks.
            yield from self._aggregated_io(assignments, "read")
            yield from wait_all(self._exchange_flows(contribs, kind))
            self.bytes_read += total
        return total

    def _collective_plan(self, flat: list[tuple[int, int]]
                         ) -> list[list[tuple[int, int]]]:
        """Merged contiguous runs of ``flat``, chunked over aggregators.

        Successive collective calls of a timed loop produce the same
        extent *shape* shifted by the repetition offset, so the last
        plan is cached and reused by shifting every chunk — exact
        integer arithmetic, bit-identical to recomputing.  A miss
        merges with one sort + linear sweep instead of the seed's
        per-extent interval-set insertions.
        """
        cached = self._plan_cache
        if cached is not None and flat:
            prev_flat, prev_assignments = cached
            if len(flat) == len(prev_flat):
                shift = flat[0][0] - prev_flat[0][0]
                for (a0, a1), (b0, b1) in zip(flat, prev_flat):
                    if a0 - b0 != shift or a1 - b1 != shift:
                        break
                else:
                    if shift == 0:
                        return prev_assignments
                    assignments = [
                        [(s + shift, e + shift) for s, e in chunk]
                        for chunk in prev_assignments
                    ]
                    self._plan_cache = (flat, assignments)
                    return assignments
        # merge into maximal contiguous runs (sort + sweep)
        runs: list[list[int]] = []
        for s, e in sorted(x for x in flat if x[1] > x[0]):
            if runs and s <= runs[-1][1]:
                if e > runs[-1][1]:
                    runs[-1][1] = e
            else:
                runs.append([s, e])
        # chunk the merged runs round-robin over the aggregators
        naggr = self.num_aggregators
        cb = self.cb_buffer
        assignments = [[] for _ in range(naggr)]
        chunk_idx = 0
        for s, e in runs:
            pos = s
            while pos < e:
                end = min(e, pos + cb)
                assignments[chunk_idx % naggr].append((pos, end))
                chunk_idx += 1
                pos = end
        self._plan_cache = (flat, assignments)
        return assignments

    def _exchange_flows(self, contribs, kind: str):
        """Fabric transfers between each rank and its aggregator."""
        events = []
        naggr = self.num_aggregators
        for r, (_pos, nbytes) in contribs.items():
            if nbytes == 0:
                continue
            aggregator = r % naggr
            src = self.comm.world_rank(r if kind == "write" else aggregator)
            dst = self.comm.world_rank(aggregator if kind == "write" else r)
            events.append(self.fabric.transfer_event(src, dst, nbytes))
        return events

    def _aggregated_io(self, assignments, kind: str):
        procs = []
        for aggregator, extents in enumerate(assignments):
            if not extents:
                continue
            gen = self.fs.submit_io(
                self.comm.world_rank(aggregator), self.pfsfile, kind, extents
            )
            procs.append(
                Process(self.comm.world.sim, gen, name=f"2ph.{kind}.a{aggregator}")
            )
        yield from wait_all([p.done_event for p in procs])

    # -- metadata collectives ------------------------------------------------------

    def sync(self, rank: int):
        """MPI_File_sync: collective; returns when no dirty bytes remain.

        Note the paper's caveat: in real MPI this only guarantees
        *visibility* to other processes; our model is stricter and
        waits for disk writeback, which is what the benchmark needs
        sync for.
        """
        self._check_open()
        result = yield from self._gate.arrive(rank, None, self._do_sync)
        return result

    def _do_sync(self, _contribs):
        if self.sync_drains:
            yield from self.fs.sync(self.comm.world_rank(0), self.pfsfile)
        else:
            # publish-only: a metadata round, no disk writeback wait
            yield from self.fs.submit_io(
                self.comm.world_rank(0), self.pfsfile, "write", []
            )

    def close(self, rank: int):
        """Collective close (flushes like sync, then marks closed)."""
        self._check_open()
        result = yield from self._gate.arrive(rank, None, self._do_close)
        return result

    def _do_close(self, _contribs):
        yield from self._do_sync(_contribs)
        self.closed = True

    def reset_shared_pointer(self) -> None:
        """Rewind the shared file pointer (start of a new access pass)."""
        self._shared_fp = 0
