"""Result validity states for resilient benchmark runs.

The paper's aggregation rules imply a simple taxonomy once a run can
lose patterns: a value produced from *every* scheduled averaged
component is ``valid``; a value whose averaged components all ran but
some were flagged (over budget, measured under active faults that
stalled them) is ``degraded``; and a value missing an averaged
component is ``invalid`` — the single number cannot be quoted, only
the surviving per-pattern partials can.  A skipped *non-averaged*
component (a detail pattern, an optional extension) never invalidates
the aggregate; it only flags the run.
"""

from __future__ import annotations

from dataclasses import dataclass

#: the three validity states, from best to worst
STATES = ("valid", "degraded", "invalid")


@dataclass(frozen=True)
class RunValidity:
    """How trustworthy one benchmark aggregate is.

    ``skipped``
        averaged components that produced no (complete) measurement;
        any entry here forces ``state == "invalid"``.
    ``flagged``
        components that ran but exceeded their budget or were
        otherwise degraded; they keep the aggregate computable but
        demote it to ``degraded``.
    ``reason``
        free-text cause (the caught exception, "pattern budget
        exceeded", ...).
    """

    state: str
    skipped: tuple[str, ...] = ()
    flagged: tuple[str, ...] = ()
    reason: str = ""

    def __post_init__(self) -> None:
        if self.state not in STATES:
            raise ValueError(f"unknown validity state {self.state!r}")

    @property
    def ok(self) -> bool:
        return self.state == "valid"

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.state == "valid":
            return "valid"
        parts = [self.state]
        if self.skipped:
            parts.append(f"skipped={list(self.skipped)}")
        if self.flagged:
            parts.append(f"flagged={list(self.flagged)}")
        if self.reason:
            parts.append(self.reason)
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "skipped": list(self.skipped),
            "flagged": list(self.flagged),
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunValidity":
        return cls(
            state=d["state"],
            skipped=tuple(d.get("skipped", ())),
            flagged=tuple(d.get("flagged", ())),
            reason=d.get("reason", ""),
        )


#: the validity of an undisturbed run
VALID = RunValidity("valid")


def classify(
    skipped: tuple[str, ...],
    flagged: tuple[str, ...],
    reason: str = "",
) -> RunValidity:
    """The one classification rule both benchmarks share.

    Any skipped averaged component → ``invalid``; otherwise any flag
    or failure reason → ``degraded``; otherwise the :data:`VALID`
    singleton (callers test identity on the clean path).
    """
    if skipped:
        return RunValidity(
            "invalid", skipped=tuple(skipped), flagged=tuple(flagged), reason=reason
        )
    if flagged or reason:
        return RunValidity("degraded", flagged=tuple(flagged), reason=reason)
    return VALID


def merge(parts: list[RunValidity]) -> RunValidity:
    """Combine component validities (worst state wins)."""
    if not parts:
        return VALID
    worst = max(parts, key=lambda v: STATES.index(v.state))
    if worst.state == "valid":
        return VALID
    skipped = tuple(s for v in parts for s in v.skipped)
    flagged = tuple(f for v in parts for f in v.flagged)
    reasons = "; ".join(sorted({v.reason for v in parts if v.reason}))
    return RunValidity(worst.state, skipped=skipped, flagged=flagged, reason=reasons)
