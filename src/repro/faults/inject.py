"""Turns a :class:`FaultPlan` into scheduled apply/revert callbacks.

The injector is attached once, before any rank process is spawned, so
its events get the lowest sequence numbers at each instant — fault
transitions at time *t* are applied before benchmark events at *t*,
deterministically.  All state the hot-path hooks consult (straggler
factors, active jitter amplitude) is a plain dict/float updated by
those callbacks; the hooks never compare times.

Attachment is zero-cost for untouched machinery: a fabric whose
``faults`` attribute is ``None`` (the default) pays one attribute
check per message, and an attached injector whose windows never open
applies no multiplier and draws no randomness, so an empty (or
never-overlapping) plan leaves every benchmark number bit-identical.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan, JitterBurst, LinkFault, ServerCrash, Straggler
from repro.sim.randomness import RandomStreams

if TYPE_CHECKING:
    from repro.net.model import Fabric
    from repro.pfs.filesystem import FileSystem
    from repro.sim.engine import Simulator
    from repro.sim.fluid import FlowNetwork
    from repro.topology.base import Topology

#: outage links keep this fraction of their capacity — the fluid
#: engine needs finite positive capacities; 1e-9 stalls transfers for
#: the outage window (they resume at full speed on revert) without
#: breaking the allocator's invariants
OUTAGE_FLOOR = 1e-9


class _LinkState:
    """Pristine capacity + active degradation factors of one link."""

    __slots__ = ("net", "link_id", "base", "factors")

    def __init__(self, net: FlowNetwork, link_id: int, base: float) -> None:
        self.net = net
        self.link_id = link_id
        self.base = base
        self.factors: list[float] = []

    def reprice(self) -> None:
        capacity = self.base
        for f in self.factors:
            capacity *= f
        self.net.set_capacity(self.link_id, capacity)


class FaultInjector:
    """Applies one plan to one simulated machine."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: (id(net), link_id) -> _LinkState shared by overlapping faults
        self._link_states: dict[tuple[int, int], _LinkState] = {}
        #: rank -> list of active slowdown factors (stacked windows multiply)
        self._straggler: dict[int, list[float]] = {}
        #: amplitudes of currently open jitter bursts
        self._jitter: list[float] = []
        self._jitter_rng = RandomStreams(plan.seed).stream("faults.burst")
        #: transition log for tests/observability: (time, description)
        self.transitions: list[tuple[float, str]] = []
        self._attached = False

    # -- wiring -----------------------------------------------------------

    def attach(
        self,
        sim: Simulator,
        fabric: Fabric | None = None,
        fs: FileSystem | None = None,
    ) -> None:
        """Resolve selectors and schedule every apply/revert event.

        ``fabric`` is a :class:`repro.net.model.Fabric` (or None for
        I/O-only scenarios); ``fs`` a
        :class:`repro.pfs.filesystem.FileSystem` (or None when the
        plan has no server faults).
        """
        if self._attached:
            raise RuntimeError("injector already attached")
        self._attached = True
        self.sim = sim
        if self.plan.needs_filesystem() and fs is None:
            raise ValueError("plan contains server faults but no filesystem given")
        for event in self.plan.events:
            if isinstance(event, LinkFault):
                self._wire_link(sim, event, fabric, fs)
            elif isinstance(event, Straggler):
                self._wire_straggler(sim, event, fabric)
            elif isinstance(event, ServerCrash):
                self._wire_server(sim, event, fs)
            elif isinstance(event, JitterBurst):
                self._wire_jitter(sim, event)
            else:  # pragma: no cover - plan validation prevents this
                raise TypeError(f"unknown fault event {event!r}")
        if fabric is not None:
            fabric.faults = self

    def _log(self, text: str) -> None:
        self.transitions.append((self.sim.now, text))

    @staticmethod
    def _at(sim: Simulator, time: float, callback: Callable[[], None]) -> None:
        """Schedule a transition; an infinite time means "never"."""
        if not math.isinf(time):
            sim.schedule_abs(time, callback)

    # -- link faults ------------------------------------------------------

    def _resolve_links(
        self, selector: int | str, fabric: Fabric | None, fs: FileSystem | None
    ) -> list[tuple[FlowNetwork, int]]:
        nets: list[tuple[FlowNetwork, Topology | None]] = []
        if fabric is not None:
            nets.append((fabric.flows, fabric.topology))
        if fs is not None:
            nets.append((fs.io_net, None))
        if not nets:
            raise ValueError("link fault needs a fabric or a filesystem")
        if isinstance(selector, int):
            net, topo = nets[0]
            if topo is not None:
                ids = topo.links_matching("")
            else:
                ids = net.link_ids()
            if not ids:
                raise ValueError("no links to select from")
            return [(net, ids[selector % len(ids)])]
        out: list[tuple[FlowNetwork, int]] = []
        for net, topo in nets:
            finder = topo.links_matching if topo is not None else net.find_links
            out.extend((net, link_id) for link_id in finder(selector))
        if not out:
            raise ValueError(f"link selector {selector!r} matched no links")
        return out

    def _wire_link(
        self, sim: Simulator, event: LinkFault, fabric: Fabric | None, fs: FileSystem | None
    ) -> None:
        targets = self._resolve_links(event.selector, fabric, fs)
        factor = max(event.factor, OUTAGE_FLOOR)
        # Pristine capacities are captured at attach time and links are
        # always re-priced as base * product(active factors), so
        # overlapping windows stack and every revert restores the
        # original float bit-exactly.
        states = [self._link_states.setdefault(
            (id(net), link_id), _LinkState(net, link_id, net.link(link_id).capacity)
        ) for net, link_id in targets]

        def apply() -> None:
            for st in states:
                st.factors.append(factor)
                st.reprice()
            self._log(f"link x{len(targets)} -> {event.factor:g}")

        def revert() -> None:
            for st in states:
                st.factors.remove(factor)
                st.reprice()
            self._log(f"link x{len(targets)} restored")

        self._at(sim, event.t_start, apply)
        self._at(sim, event.t_end, revert)

    # -- stragglers -------------------------------------------------------

    def _wire_straggler(self, sim: Simulator, event: Straggler, fabric: Fabric | None) -> None:
        if fabric is None:
            raise ValueError("straggler fault needs a fabric")
        rank = event.rank % fabric.topology.nprocs

        def apply() -> None:
            self._straggler.setdefault(rank, []).append(event.slowdown)
            self._log(f"rank {rank} straggling x{event.slowdown:g}")

        def revert() -> None:
            factors = self._straggler.get(rank)
            if factors:
                factors.remove(event.slowdown)
                if not factors:
                    del self._straggler[rank]
            self._log(f"rank {rank} recovered")

        self._at(sim, event.t_start, apply)
        self._at(sim, event.t_end, revert)

    # -- server crashes ---------------------------------------------------

    def _wire_server(self, sim: Simulator, event: ServerCrash, fs: FileSystem | None) -> None:
        assert fs is not None  # attach() rejected server faults without a filesystem
        server = fs.servers[event.server % len(fs.servers)]

        def crash() -> None:
            lost = server.inject_crash(event.t_recover, lose_cache=event.lose_cache)
            self._log(f"{server.name} crashed (lost {lost} cached bytes)")
            if not math.isinf(event.t_recover):
                self._at(sim, event.t_recover, lambda: self._log(f"{server.name} recovered"))

        self._at(sim, event.t_crash, crash)

    # -- jitter bursts ----------------------------------------------------

    def _wire_jitter(self, sim: Simulator, event: JitterBurst) -> None:
        def apply() -> None:
            self._jitter.append(event.amplitude)
            self._log(f"jitter burst {event.amplitude:g}")

        def revert() -> None:
            self._jitter.remove(event.amplitude)
            self._log("jitter burst over")

        self._at(sim, event.t_start, apply)
        self._at(sim, event.t_end, revert)

    # -- hot-path hooks ---------------------------------------------------

    def adjust_latency(self, src: int, dst: int, latency: float) -> float:
        """Fabric hook: inflate a message's startup latency.

        Applies the active straggler factors of both endpoints and, in
        a jitter burst, a one-sided noise draw from the injector's own
        stream.  With no active window this returns ``latency``
        unchanged without consuming randomness.
        """
        stragglers = self._straggler
        if stragglers:
            for factors in (stragglers.get(src), stragglers.get(dst)):
                if factors:
                    for f in factors:
                        latency *= f
        if self._jitter:
            amp = max(self._jitter)
            latency *= 1.0 + amp * float(self._jitter_rng.uniform(0.0, 1.0))
        return latency
