"""Deterministic fault injection for the simulated benchmarks.

* :mod:`repro.faults.plan` — declarative, seed-deterministic
  :class:`FaultPlan` (link degradation/outage, straggler ranks, PFS
  server crash/recovery, jitter bursts);
* :mod:`repro.faults.inject` — :class:`FaultInjector`, which turns a
  plan into scheduled apply/revert events on a live machine;
* :mod:`repro.faults.validity` — the ``valid`` / ``degraded`` /
  ``invalid`` result taxonomy resilient runs report.

See ``docs/robustness.md`` for the fault model and its semantics.
"""

from repro.faults.inject import OUTAGE_FLOOR, FaultInjector
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    JitterBurst,
    LinkFault,
    ServerCrash,
    Straggler,
)
from repro.faults.validity import STATES, VALID, RunValidity, merge

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "JitterBurst",
    "LinkFault",
    "OUTAGE_FLOOR",
    "RunValidity",
    "STATES",
    "ServerCrash",
    "Straggler",
    "VALID",
    "merge",
]
