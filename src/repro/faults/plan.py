"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is a value object: a tuple of fault events with
absolute simulated times.  It never touches the simulator itself —
:class:`repro.faults.inject.FaultInjector` turns a plan into
scheduled apply/revert callbacks.  Two plans built from the same seed
and arguments are *equal* (frozen dataclasses compare by value), and
because every consumer of randomness downstream draws from named
:class:`repro.sim.randomness.RandomStreams`, the same plan applied to
the same machine yields bit-identical benchmark results.

Selector conventions (resolved at attach time, so a plan is portable
across partition sizes):

* ``LinkFault.selector``: an ``int`` picks the k-th fabric link
  (modulo the link count); a ``str`` selects every link whose name
  contains the substring (``""`` selects all links, compute fabric
  and I/O network alike).
* ``Straggler.rank`` and ``ServerCrash.server`` are taken modulo the
  attached world's process / server count.

``t_end`` (or ``t_recover``) may be ``math.inf``: the fault is never
reverted — the *unrecoverable* case the resilient runners must turn
into a flagged partial result instead of a hang.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.sim.randomness import RandomStreams


def _check_window(t_start: float, t_end: float) -> None:
    if t_start < 0:
        raise ValueError(f"fault window starts in the past: {t_start!r}")
    if not t_end > t_start:
        raise ValueError(f"empty fault window [{t_start!r}, {t_end!r})")


@dataclass(frozen=True)
class LinkFault:
    """Degrade (0 < factor < 1) or cut (factor == 0) matching links."""

    selector: int | str
    t_start: float
    t_end: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.t_end)
        if not (0.0 <= self.factor <= 1.0):
            raise ValueError(f"link factor must be in [0, 1], got {self.factor!r}")


@dataclass(frozen=True)
class Straggler:
    """Multiplicative slowdown of one rank's message startup latency."""

    rank: int
    t_start: float
    t_end: float
    slowdown: float

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.t_end)
        if self.slowdown < 1.0:
            raise ValueError(f"straggler slowdown must be >= 1, got {self.slowdown!r}")


@dataclass(frozen=True)
class ServerCrash:
    """One PFS server crashes (losing its volatile cache) and recovers.

    Requests already accepted keep their queue slots and are serviced
    after recovery; ``t_recover == inf`` models a dead server — client
    calls touching it block forever, which the benchmark layer must
    surface as an invalid partial result via deadlock detection.
    """

    server: int
    t_crash: float
    t_recover: float
    lose_cache: bool = True

    def __post_init__(self) -> None:
        _check_window(self.t_crash, self.t_recover)


@dataclass(frozen=True)
class JitterBurst:
    """Window of extra per-message latency noise (relative amplitude)."""

    t_start: float
    t_end: float
    amplitude: float

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.t_end)
        if not (0.0 < self.amplitude):
            raise ValueError(f"jitter amplitude must be > 0, got {self.amplitude!r}")


FaultEvent = LinkFault | Straggler | ServerCrash | JitterBurst


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events plus the injector seed.

    ``seed`` feeds the injector's own random stream (burst jitter
    draws), keeping fault noise independent of the benchmark's
    pattern permutations.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.events)

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    def needs_filesystem(self) -> bool:
        return any(isinstance(e, ServerCrash) for e in self.events)

    def signature(self) -> tuple[Any, ...]:
        """A hashable, order-stable fingerprint of the schedule."""
        return (self.seed,) + tuple(
            (type(e).__name__,) + tuple(getattr(e, f.name) for f in _fields(e))
            for e in self.events
        )

    # -- deterministic generators ---------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        duration: float,
        *,
        nprocs: int = 0,
        num_servers: int = 0,
        severity: float = 0.5,
        n_link: int = 1,
        n_straggler: int = 1,
        n_server: int | None = None,
        n_jitter: int = 1,
    ) -> "FaultPlan":
        """A random but fully seed-determined schedule over ``duration``.

        Same (seed, arguments) always produce an *equal* plan.  Event
        severity scales with ``severity`` in [0, 1]: window lengths,
        degradation depth, straggler slowdown and jitter amplitude all
        grow with it; ``severity >= 0.5`` turns the first link fault
        into a full outage.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not (0.0 <= severity <= 1.0):
            raise ValueError("severity must be in [0, 1]")
        if n_server is None:
            n_server = 1 if num_servers > 0 else 0
        if n_server > 0 and num_servers <= 0:
            raise ValueError("server crashes need num_servers > 0")
        streams = RandomStreams(seed)
        events: list[FaultEvent] = []

        def window(rng: np.random.Generator, scale: float = 1.0) -> tuple[float, float]:
            start = float(rng.uniform(0.05, 0.6)) * duration
            length = float(rng.uniform(0.05, 0.25)) * duration
            length *= (0.5 + severity) * scale
            return start, start + max(length, duration * 1e-3)

        rng = streams.stream("faults.link")
        for i in range(n_link):
            start, end = window(rng)
            outage = i == 0 and severity >= 0.5
            factor = 0.0 if outage else max(0.05, 1.0 - 0.9 * severity * float(rng.uniform(0.5, 1.0)))
            events.append(LinkFault(int(rng.integers(0, 1 << 16)), start, end, factor))
        rng = streams.stream("faults.straggler")
        for _ in range(n_straggler):
            start, end = window(rng)
            rank = int(rng.integers(0, max(1, nprocs)))
            events.append(Straggler(rank, start, end, 1.0 + 7.0 * severity * float(rng.uniform(0.5, 1.0))))
        rng = streams.stream("faults.server")
        for _ in range(n_server):
            start, end = window(rng, scale=0.5)
            events.append(ServerCrash(int(rng.integers(0, num_servers)), start, end))
        rng = streams.stream("faults.jitter")
        for _ in range(n_jitter):
            start, end = window(rng)
            events.append(JitterBurst(start, end, max(0.01, severity) * float(rng.uniform(0.5, 1.5))))
        events.sort(key=lambda e: (e.t_start if not isinstance(e, ServerCrash) else e.t_crash,
                                   type(e).__name__))
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def severity_profile(
        cls,
        seed: int,
        horizon: float,
        severity: float,
        *,
        nprocs: int = 0,
        num_servers: int = 0,
    ) -> "FaultPlan":
        """The systematic degradation sweep used by ``--faults``.

        One whole-run degradation of *every* link to ``1 - 0.9 * s``
        of its capacity, one straggler rank at ``1 + 4 s`` slowdown,
        one mid-run server crash whose outage lasts ``0.2 s * horizon``
        (when an I/O subsystem exists), and a jitter burst of
        amplitude ``s`` over the middle third — a monotone fault load
        suitable for a "b_eff vs. severity" table.  ``severity == 0``
        yields the empty plan.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not (0.0 <= severity <= 1.0):
            raise ValueError("severity must be in [0, 1]")
        if severity == 0.0:
            return cls(seed=seed)
        rng = RandomStreams(seed).stream("faults.profile")
        events: list[FaultEvent] = [
            LinkFault("", 0.0, math.inf, 1.0 - 0.9 * severity),
        ]
        if nprocs > 0:
            events.append(
                Straggler(int(rng.integers(0, nprocs)), 0.0, math.inf, 1.0 + 4.0 * severity)
            )
        if num_servers > 0:
            t_crash = 0.25 * horizon
            events.append(
                ServerCrash(int(rng.integers(0, num_servers)), t_crash,
                            t_crash + 0.2 * severity * horizon)
            )
        events.append(JitterBurst(horizon / 3.0, 2.0 * horizon / 3.0, severity))
        return cls(events=tuple(events), seed=seed)


def _fields(e: FaultEvent) -> tuple["dataclasses.Field[Any]", ...]:
    return dataclasses.fields(e)
