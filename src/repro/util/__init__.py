"""Shared utilities: byte units, averaging math, table rendering.

These helpers are deliberately free of any simulation state so every
other subpackage can depend on them without import cycles.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    KIB,
    MIB,
    GIB,
    format_bytes,
    format_bandwidth,
    format_time,
    parse_size,
)
from repro.util.averages import (
    logavg,
    weighted_logavg,
    weighted_average,
    geometric_mean,
)
from repro.util.tables import Table

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_bandwidth",
    "format_time",
    "parse_size",
    "logavg",
    "weighted_logavg",
    "weighted_average",
    "geometric_mean",
    "Table",
]
