"""Averaging rules used by the b_eff and b_eff_io definitions.

The central operation is the *logarithmic average* (geometric mean):
b_eff averages ring patterns and random patterns on a logarithmic
scale and then takes the logarithmic average of the two results
(paper Sec. 4).  b_eff_io uses plain weighted averages with the
scattering pattern type double-weighted and the access methods
weighted 25/25/50 (paper Sec. 5.1).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def logavg(values: Iterable[float]) -> float:
    """Logarithmic average (geometric mean) of positive values.

    This is the ``logavg`` of the b_eff formula:
    ``exp(mean(log(v)))``.  Raises :class:`ValueError` on an empty
    input or any non-positive value — a bandwidth of zero means a
    measurement failed and must not be silently absorbed.
    """
    total = 0.0
    count = 0
    for v in values:
        if v <= 0.0:
            raise ValueError(f"logavg requires positive values, got {v!r}")
        total += math.log(v)
        count += 1
    if count == 0:
        raise ValueError("logavg of empty sequence")
    return math.exp(total / count)


def geometric_mean(values: Iterable[float]) -> float:
    """Alias for :func:`logavg` under its textbook name."""
    return logavg(values)


def weighted_logavg(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted geometric mean: ``exp(sum(w*log(v)) / sum(w))``."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("weighted_logavg of empty sequence")
    wsum = float(sum(weights))
    if wsum <= 0.0:
        raise ValueError("weights must sum to a positive value")
    acc = 0.0
    for v, w in zip(values, weights):
        if v <= 0.0:
            raise ValueError(f"weighted_logavg requires positive values, got {v!r}")
        if w < 0.0:
            raise ValueError(f"negative weight {w!r}")
        acc += w * math.log(v)
    return math.exp(acc / wsum)


def weighted_average(values: Sequence[float], weights: Sequence[float]) -> float:
    """Plain weighted arithmetic mean, used by the b_eff_io aggregation."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("weighted_average of empty sequence")
    wsum = float(sum(weights))
    if wsum <= 0.0:
        raise ValueError("weights must sum to a positive value")
    for w in weights:
        if w < 0.0:
            raise ValueError(f"negative weight {w!r}")
    return sum(v * w for v, w in zip(values, weights)) / wsum
