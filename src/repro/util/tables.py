"""Minimal ASCII table renderer for benchmark protocols.

The original b_eff / b_eff_io programs emit plain-text measurement
protocols; this renderer produces the same style of aligned columns
for our reports (Table 1, the Table 2 pattern list, per-pattern
detail tables behind Fig. 4, ...).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class Table:
    """Accumulate rows and render them as an aligned ASCII table."""

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are stringified, None renders empty."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(["" if c is None else str(c) for c in cells])

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
