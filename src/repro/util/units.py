"""Byte and bandwidth units and human-readable formatting.

The paper (and the original b_eff / b_eff_io sources) consistently use
binary units: 1 kB = 1024 bytes, 1 MB = 1024**2 bytes.  We follow that
convention: ``KB``/``MB``/``GB`` here are the *binary* constants that
match the paper's tables (message-size ladders such as "1 byte to
4 kb" are powers of two).  The IEC aliases ``KIB``/``MIB``/``GIB`` are
provided for code that wants to be explicit.
"""

from __future__ import annotations

import re

#: 1 kB in the paper's convention (binary).
KB = 1024
#: 1 MB in the paper's convention (binary).
MB = 1024 * 1024
#: 1 GB in the paper's convention (binary).
GB = 1024 * 1024 * 1024

KIB = KB
MIB = MB
GIB = GB

_SIZE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([kKmMgGtT]?)i?[bB]?\s*$"
)

_SUFFIX_FACTOR = {
    "": 1,
    "k": KB,
    "m": MB,
    "g": GB,
    "t": 1024 * GB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human size string like ``"32kB"`` or ``"1 MB"`` to bytes.

    Integers and floats pass through (rounded to int).  Raises
    :class:`ValueError` for unrecognized strings or negative values.
    """
    if isinstance(text, bool):
        raise ValueError(f"not a size: {text!r}")
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"negative size: {text!r}")
        return int(text)
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size: {text!r}")
    value = float(m.group(1))
    factor = _SUFFIX_FACTOR[m.group(2).lower()]
    return int(round(value * factor))


def format_bytes(nbytes: float) -> str:
    """Format a byte count the way the paper's tables do (1 kB, 32 kB, 1 MB).

    Exact multiples of a unit are printed without a decimal point;
    other values get one decimal digit.  Values below 1 kB are printed
    in bytes.
    """
    if nbytes < 0:
        return "-" + format_bytes(-nbytes)
    for factor, suffix in ((GB, "GB"), (MB, "MB"), (KB, "kB")):
        if nbytes >= factor:
            value = nbytes / factor
            if value == int(value):
                return f"{int(value)} {suffix}"
            return f"{value:.1f} {suffix}"
    if nbytes == int(nbytes):
        return f"{int(nbytes)} B"
    return f"{nbytes:.1f} B"


def format_bandwidth(bytes_per_second: float) -> str:
    """Format a bandwidth in MB/s as in Table 1 (integer MByte/s)."""
    mbs = bytes_per_second / MB
    if mbs >= 100:
        return f"{mbs:.0f} MB/s"
    if mbs >= 1:
        return f"{mbs:.1f} MB/s"
    return f"{mbs:.3f} MB/s"


def format_time(seconds: float) -> str:
    """Format a duration with a sensible unit (us / ms / s / min)."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
