"""Benchmark-agnostic sweep orchestrator: one journal, one retry
policy, one worker-error path for both benchmarks.

Generalizes the b_eff_io partition sweep (``repro.beffio.sweep`` +
``journal``, which remain as thin shims) so b_eff sweeps get
``journal``/``resume``/``retries`` and parallel partitions from the
same machinery:

* With ``journal=<dir>``, each partition's result envelope is written
  atomically the moment it completes; ``resume=True`` loads the
  completed partitions (bit-identically) and runs only the missing
  ones.  The journal manifest pins :func:`~repro.runtime.spec.
  sweep_fingerprint`, which hashes the engine mode and fault-plan
  seed explicitly — resuming under changed flags raises
  :class:`JournalMismatchError`.
* A crashed or failing worker is retried up to ``retries`` times;
  when retries are exhausted the failure surfaces as
  :class:`SweepWorkerError` carrying the partition's configuration
  and the worker's traceback.
* Partitions whose resilient run produced ``nan`` (invalid) are
  excluded from the system maximum; the sweep's ``validity`` merges
  the partitions' states.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import re
import time
import traceback
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.faults.validity import VALID, RunValidity, merge
from repro.runtime import chaos
from repro.runtime.spec import (
    BenchmarkConfig,
    cell_fingerprint,
    legacy_sweep_fingerprint,
    sweep_fingerprint,
)
from repro.runtime.supervisor import (
    PoisonRecord,
    SupervisedTask,
    SupervisionPolicy,
    backoff_delay,
    supervise,
)

#: the official minimum scheduled time for b_eff_io (15 minutes)
OFFICIAL_MINIMUM_T = 900.0

#: journal layout version — 2 adds the per-cell fingerprint map
#: (``cells``) that ties each partition file to its store key; schema-1
#: manifests (pre-store) are still resumable via
#: :func:`~repro.runtime.spec.legacy_sweep_fingerprint`
JOURNAL_SCHEMA = 2

#: test/CI hook: when set to an integer k, the sweep parent raises
#: after journaling its k-th partition — equivalent (for resume
#: purposes) to killing the process there, because partition writes
#: are atomic
CRASH_AFTER_ENV = "REPRO_SWEEP_CRASH_AFTER"


class SweepWorkerError(RuntimeError):
    """A partition run failed after exhausting its retries.

    The message names the machine, the partition size, the cell
    fingerprint, the attempt count, the configuration that failed
    *and the failing source frame*; the original exception is chained
    as ``__cause__`` and the worker's full formatted traceback is kept
    on ``worker_traceback`` so the CLI's exit-code-3 report can show
    where the worker died, not just which partition it was running.
    The identity also travels as attributes (``fingerprint``,
    ``benchmark``, ``machine``, ``nprocs``, ``attempts``) so callers
    can requeue the exact cell without parsing prose.
    """

    def __init__(
        self,
        message: str,
        worker_traceback: str = "",
        fingerprint: str = "",
        benchmark: str = "",
        machine: str = "",
        nprocs: int = 0,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback
        self.fingerprint = fingerprint
        self.benchmark = benchmark
        self.machine = machine
        self.nprocs = nprocs
        self.attempts = attempts


class JournalMismatchError(RuntimeError):
    """Resume attempted against a journal from a different sweep."""


# ---------------------------------------------------------------------------
# benchmark adapters
# ---------------------------------------------------------------------------


def _beff_run(spec: Any, nprocs: int, config: Any) -> Any:
    return spec.run_beff(nprocs, config)


def _beffio_run(spec: Any, nprocs: int, config: Any) -> Any:
    return spec.run_beffio(nprocs, config)


def _beff_default_config() -> Any:
    from repro.beff.measurement import MeasurementConfig

    return MeasurementConfig()


def _beffio_default_config() -> Any:
    from repro.beffio.benchmark import BeffIOConfig

    return BeffIOConfig()


def _beff_value(result: Any) -> float:
    return float(result.b_eff)


def _beffio_value(result: Any) -> float:
    return float(result.b_eff_io)


def _beff_describe(config: Any) -> str:
    return (
        f"(backend={config.backend!r}, methods={config.methods}, "
        f"faults={'yes' if config.faults else 'no'})"
    )


def _beffio_describe(config: Any) -> str:
    return (
        f"(T={config.T}, types={config.pattern_types}, mode={config.mode!r}, "
        f"faults={'yes' if config.faults else 'no'})"
    )


def _beff_official(config: Any) -> bool:
    # b_eff has no minimum-duration rule; every run counts
    return True


def _beffio_official(config: Any) -> bool:
    return bool(config.T >= OFFICIAL_MINIMUM_T)


@dataclass(frozen=True)
class BenchmarkAdapter:
    """How the generic orchestrator drives one benchmark.

    All callables are module-level functions, so adapters (and the
    worker dispatch by benchmark *name*) survive pickling into
    :class:`ProcessPoolExecutor` workers.
    """

    name: str
    #: (machine spec, nprocs, config) -> result object
    run: Callable[[Any, int, Any], Any]
    default_config: Callable[[], Any]
    #: the partition's single number (the axis of the system max)
    value_of: Callable[[Any], float]
    #: config summary used in worker-failure messages
    describe_config: Callable[[Any], str]
    #: does this config satisfy the paper's official-number rule?
    official_of: Callable[[Any], bool]


_ADAPTERS: dict[str, BenchmarkAdapter] = {
    "b_eff": BenchmarkAdapter(
        name="b_eff",
        run=_beff_run,
        default_config=_beff_default_config,
        value_of=_beff_value,
        describe_config=_beff_describe,
        official_of=_beff_official,
    ),
    "b_eff_io": BenchmarkAdapter(
        name="b_eff_io",
        run=_beffio_run,
        default_config=_beffio_default_config,
        value_of=_beffio_value,
        describe_config=_beffio_describe,
        official_of=_beffio_official,
    ),
}


def adapter_for(benchmark: str) -> BenchmarkAdapter:
    """The adapter registered for a benchmark name."""
    try:
        return _ADAPTERS[benchmark]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {benchmark!r} (known: {sorted(_ADAPTERS)})"
        ) from None


# ---------------------------------------------------------------------------
# the journal (one implementation for both benchmarks)
# ---------------------------------------------------------------------------


class SweepJournal:
    """One sweep's on-disk state.

    A journal is a directory: ``manifest.json`` pins the machine and
    the sweep fingerprint, and each completed partition is one
    ``partition_<n>.json`` — a result envelope — written atomically
    (temp file + ``os.replace``) the moment it finishes.  A killed
    sweep therefore leaves either a complete partition file or none —
    never a torn one — and ``--resume`` replays the completed
    partitions bit-identically (JSON float serialization round-trips
    exactly) while running only the missing ones.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.path / "manifest.json"

    def partition_path(self, nprocs: int) -> pathlib.Path:
        return self.path / f"partition_{nprocs}.json"

    def poison_path(self, nprocs: int) -> pathlib.Path:
        return self.path / f"poison_{nprocs}.json"

    # -- lifecycle -----------------------------------------------------

    def start(
        self,
        machine: str,
        fingerprint: str,
        cells: dict[str, str] | None = None,
    ) -> None:
        """Begin a fresh sweep: wipe stale partitions, pin the manifest.

        ``cells`` (optional) maps partition size (as a string, JSON
        keys are strings) to that cell's store fingerprint, tying the
        journal to the content-addressed store keys.
        """
        from repro.reporting.export import write_json_atomic

        self.path.mkdir(parents=True, exist_ok=True)
        for stale in self.path.glob("partition_*.json"):
            stale.unlink()
        for stale in self.path.glob("poison_*.json"):
            stale.unlink()
        manifest: dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "machine": machine,
            "fingerprint": fingerprint,
        }
        if cells is not None:
            manifest["cells"] = cells
        write_json_atomic(self.manifest_path, manifest)

    def check(
        self,
        machine: str,
        fingerprint: str,
        legacy_fingerprint: str | None = None,
    ) -> None:
        """Verify this journal belongs to (machine, config) before resuming.

        Schema-1 journals (written before the unified cell keying)
        pinned a different digest of the *same* payload; they stay
        resumable when ``legacy_fingerprint`` matches.
        """
        if not self.manifest_path.exists():
            raise JournalMismatchError(
                f"no journal manifest at {self.manifest_path} — nothing to resume"
            )
        manifest = json.loads(self.manifest_path.read_text())
        schema = manifest.get("schema")
        if schema == 1 and legacy_fingerprint is not None:
            expected = legacy_fingerprint
        elif schema == JOURNAL_SCHEMA:
            expected = fingerprint
        else:
            raise JournalMismatchError(
                f"journal schema {schema!r} != {JOURNAL_SCHEMA}"
            )
        if manifest.get("machine") != machine or manifest.get("fingerprint") != expected:
            raise JournalMismatchError(
                f"journal at {self.path} was written by a different sweep "
                f"(machine {manifest.get('machine')!r}, or the config changed); "
                "refusing to mix results"
            )

    # -- partition records ---------------------------------------------

    def record(self, result: Any, machine: str | None = None) -> None:
        """Atomically persist one completed partition (as an envelope).

        The payload is the *canonical* envelope text (sorted keys) —
        the same bytes a :class:`~repro.runtime.store.RunStore` entry
        holds — so a journal written from fresh executions and one
        written from cache-served results are byte-identical.
        """
        from repro.reporting.export import write_json_atomic
        from repro.runtime.envelope import envelope_for
        from repro.runtime.store import canonical_envelope_text

        write_json_atomic(
            self.partition_path(result.nprocs),
            canonical_envelope_text(envelope_for(result, machine)),
        )
        # a completed partition heals any poison stub left by an
        # earlier supervised run that quarantined this cell
        self.poison_path(result.nprocs).unlink(missing_ok=True)

    def record_poison(self, record: PoisonRecord) -> None:
        """Persist a quarantined cell's failure provenance as a stub.

        The stub stands where the partition file would: a resumed
        sweep sees the partition as *not completed* (so it re-attempts
        the cell) while the stub documents why the previous run gave
        up.  :meth:`record` of a later success removes it.
        """
        from repro.reporting.export import write_json_atomic

        write_json_atomic(self.poison_path(record.nprocs), record.to_dict())

    def poisoned(self) -> dict[int, PoisonRecord]:
        """Every active poison stub, keyed by process count."""
        out: dict[int, PoisonRecord] = {}
        for path in sorted(self.path.glob("poison_*.json")):
            record = PoisonRecord.from_dict(json.loads(path.read_text()))
            out[record.nprocs] = record
        return out

    def completed(self) -> dict[int, Any]:
        """Load every journaled partition, keyed by process count."""
        from repro.runtime.envelope import ResultEnvelope, result_from_envelope

        out: dict[int, Any] = {}
        for path in sorted(self.path.glob("partition_*.json")):
            env = ResultEnvelope.from_dict(json.loads(path.read_text()))
            result = result_from_envelope(env)
            out[result.nprocs] = result
        return out


# ---------------------------------------------------------------------------
# the orchestrator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepOutcome:
    """All partitions of one machine plus the system-level maximum."""

    benchmark: str
    machine: str
    results: tuple[Any, ...]
    system_value: float
    best_partition: int
    official: bool
    #: worst-case partition validity (a single invalid partition does
    #: not poison the system value — it is excluded from the max —
    #: but it does demote the sweep)
    validity: RunValidity = VALID
    #: partitions simulated in this call vs served from the result store
    fresh: int = 0
    cached: int = 0
    #: partitions quarantined by a supervised run (absent from
    #: ``results``; their failure provenance is the only trace)
    poisoned: tuple[PoisonRecord, ...] = ()

    def partition_values(self) -> dict[int, float]:
        value_of = adapter_for(self.benchmark).value_of
        return {r.nprocs: value_of(r) for r in self.results}


def _failure_site(exc: BaseException) -> str:
    """``file:line in function`` of the deepest frame that raised ``exc``.

    For exceptions re-raised out of a :class:`ProcessPoolExecutor`
    worker the parent-side traceback only shows executor internals;
    the worker's real frames travel as a ``_RemoteTraceback`` cause
    string, so those are parsed in preference.
    """
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        found = re.findall(r'File "([^"]+)", line (\d+), in (\S+)', str(cause))
        if found:
            path, line, func = found[-1]
            return f"{pathlib.Path(path).name}:{line} in {func}"
    frames = traceback.extract_tb(exc.__traceback__)
    if not frames:
        return "no traceback available"
    last = frames[-1]
    return f"{pathlib.Path(last.filename).name}:{last.lineno} in {last.name}"


def _resolve(spec: Any) -> Any:
    """A machine key resolves through the registry; specs pass through."""
    if isinstance(spec, str):
        from repro.machines import get_machine

        return get_machine(spec)
    return spec


def _registry_key(spec: Any) -> str:
    """Find the registry key of a spec (required to ship it to workers:
    a :class:`MachineSpec` holds environment-factory closures, so only
    the key crosses the process boundary)."""
    from repro.machines import MACHINES

    for key, factory in MACHINES.items():
        if factory().name == spec.name:
            return key
    raise ValueError(
        f"machine {spec.name!r} is not in the registry; pass the machine "
        "key (a string) to run_sweep for jobs > 1"
    )


def _run_partition(benchmark: str, key: str, nprocs: int, config: Any) -> Any:
    """Worker entry: rebuild the machine in-process and run one partition."""
    from repro.machines import get_machine

    chaos.on_cell(chaos.cell_key(benchmark, key, nprocs))
    return adapter_for(benchmark).run(get_machine(key), nprocs, config)


def _describe(adapter: BenchmarkAdapter, machine: str, nprocs: int, config: Any) -> str:
    return (
        f"partition nprocs={nprocs} on machine {machine!r} "
        f"{adapter.describe_config(config)}"
    )


class _Retry:
    """Per-partition attempt counter shared by both execution paths.

    Attempts key by (machine, nprocs, benchmark) — not nprocs alone —
    so a counter reused across a grid never pools two machines'
    failures at the same partition size into one budget.  The delay
    between attempts is the supervisor's seeded
    exponential-backoff-with-jitter schedule
    (:func:`~repro.runtime.supervisor.backoff_delay`, keyed by the
    cell fingerprint), replacing the old linear ``backoff * n`` —
    retry timing is now a reproducible function of the run's identity.
    """

    def __init__(
        self,
        adapter: BenchmarkAdapter,
        machine: str,
        config: Any,
        retries: int,
        backoff: float,
    ):
        self.adapter = adapter
        self.machine = machine
        self.config = config
        self.retries = retries
        self.backoff = backoff
        self.attempts: dict[tuple[str, int, str], int] = {}

    def failed(
        self, nprocs: int, exc: BaseException, machine: str | None = None
    ) -> None:
        """Count a failure; raise :class:`SweepWorkerError` past the limit."""
        cell_machine = machine or self.machine
        key = (cell_machine, nprocs, self.adapter.name)
        n = self.attempts.get(key, 0) + 1
        self.attempts[key] = n
        fingerprint = cell_fingerprint(
            self.adapter.name, cell_machine, nprocs, self.config
        )
        if n > self.retries:
            raise SweepWorkerError(
                f"{_describe(self.adapter, self.machine, nprocs, self.config)} "
                f"(fingerprint {fingerprint[:12]}) "
                f"failed after {n} attempt(s) at {_failure_site(exc)}: "
                f"{type(exc).__name__}: {exc}",
                worker_traceback="".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
                fingerprint=fingerprint,
                benchmark=self.adapter.name,
                machine=cell_machine,
                nprocs=nprocs,
                attempts=n,
            ) from exc
        if self.backoff > 0:
            time.sleep(backoff_delay(fingerprint, n, self.backoff))


def run_sweep(
    benchmark: str,
    spec: Any,
    partitions: Iterable[int],
    config: BenchmarkConfig | None = None,
    jobs: int = 1,
    journal: str | os.PathLike[str] | SweepJournal | None = None,
    resume: bool = False,
    retries: int = 0,
    backoff: float = 0.0,
    store: Any = None,
    supervision: SupervisionPolicy | None = None,
) -> SweepOutcome:
    """Run one benchmark over several partition sizes of one machine.

    ``spec`` is a :class:`repro.machines.MachineSpec` or a machine
    registry key; ``partitions`` an iterable of process counts.
    Returns the per-partition results and the system value (max over
    partitions that produced a number).

    ``jobs > 1`` runs partitions concurrently in worker processes.
    Every partition is an independent simulation from a fresh
    environment, so the results are bit-identical to a serial sweep —
    the workers only change wall-clock time.

    ``journal`` (a directory path) makes the sweep crash-safe: each
    partition is persisted atomically when it completes, and
    ``resume=True`` replays completed partitions bit-identically
    instead of re-running them.  ``retries``/``backoff`` bound how
    often a crashed or failing partition is re-attempted before
    :class:`SweepWorkerError` is raised.

    ``store`` (a :class:`~repro.runtime.store.RunStore` or a path)
    serves partitions whose fingerprint it already holds — verified,
    byte-identical, no simulation — and absorbs every fresh result.
    Store-served partitions are still journaled, so cache and resume
    compose: a later ``--resume`` replays them like any other.

    ``supervision`` switches the remaining partitions to the
    supervised executor (one killable worker process per attempt,
    deadlines, heartbeat monitoring, seeded backoff).  Exhausted cells
    are then *quarantined* instead of raising: they appear on
    ``SweepOutcome.poisoned`` (and as journal/store stubs), the
    surviving partitions still produce the system value, and
    ``validity`` reports ``degraded`` (``invalid`` when nothing
    survived).
    """
    adapter = adapter_for(benchmark)
    partitions = sorted(set(partitions))
    if not partitions:
        raise ValueError("need at least one partition size")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if resume and journal is None:
        raise ValueError("resume=True needs a journal")
    if config is None:
        config = adapter.default_config()
    machine_name = spec if isinstance(spec, str) else spec.name

    from repro.runtime.store import as_store

    run_store = as_store(store)
    cell_keys = {
        n: cell_fingerprint(benchmark, machine_name, n, config) for n in partitions
    }

    jr = SweepJournal(journal) if isinstance(journal, (str, os.PathLike)) else journal
    done: dict[int, Any] = {}
    if jr is not None:
        fingerprint = sweep_fingerprint(benchmark, machine_name, config)
        if resume:
            jr.check(
                machine_name,
                fingerprint,
                legacy_sweep_fingerprint(benchmark, machine_name, config),
            )
            # hoisted: a comprehension condition re-evaluates its
            # expression per row, so build the membership set once
            wanted = frozenset(partitions)
            done = {n: r for n, r in jr.completed().items() if n in wanted}
        else:
            jr.start(
                machine_name,
                fingerprint,
                cells={str(n): fp for n, fp in cell_keys.items()},
            )

    crash_after_text = os.environ.get(CRASH_AFTER_ENV)
    crash_after = int(crash_after_text) if crash_after_text else None
    fresh = 0
    cached = 0

    def finish(result: Any) -> None:
        nonlocal fresh
        done[result.nprocs] = result
        if jr is not None:
            jr.record(result, machine_name)
        if run_store is not None:
            from repro.runtime.envelope import envelope_for

            run_store.put(
                cell_keys[result.nprocs], envelope_for(result, machine_name)
            )
        fresh += 1
        if crash_after is not None and fresh >= crash_after:
            raise RuntimeError(
                f"injected sweep crash after {fresh} partition(s) "
                f"({CRASH_AFTER_ENV}={crash_after})"
            )

    remaining = [n for n in partitions if n not in done]
    if run_store is not None and remaining:
        from repro.runtime.envelope import result_from_envelope

        still: list[int] = []
        for n in remaining:
            hit = run_store.get(cell_keys[n])
            if hit is not None:
                result = result_from_envelope(hit)
                done[n] = result
                if jr is not None:
                    jr.record(result, machine_name)
                cached += 1
            else:
                still.append(n)
        remaining = still
    retry = _Retry(adapter, machine_name, config, retries, backoff)
    poisoned: tuple[PoisonRecord, ...] = ()
    if supervision is not None and remaining:
        from repro.runtime.envelope import ResultEnvelope, result_from_envelope

        key = spec if isinstance(spec, str) else _registry_key(spec)
        tasks = [
            SupervisedTask(
                key=cell_keys[n],
                benchmark=benchmark,
                machine=key,
                nprocs=n,
                config=config,
            )
            for n in remaining
        ]
        outcome = supervise(tasks, supervision, jobs=jobs)
        for n in remaining:
            payload = outcome.results.get(cell_keys[n])
            if payload is not None:
                finish(result_from_envelope(ResultEnvelope.from_dict(payload)))
        poisoned = outcome.poisoned
        for record in poisoned:
            if jr is not None:
                jr.record_poison(record)
            if run_store is not None:
                run_store.record_poison(record.key, record.to_dict())
        spec = _resolve(spec)
    elif jobs > 1 and len(remaining) > 1:
        key = spec if isinstance(spec, str) else _registry_key(spec)
        _run_parallel(benchmark, key, remaining, config, jobs, retry, finish)
        spec = _resolve(spec)
    else:
        spec = _resolve(spec)
        for n in remaining:
            while True:
                try:
                    result = adapter.run(spec, n, config)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:  # repro-lint: disable=REPRO005 -- retry.failed re-raises (as SweepWorkerError with the captured traceback) past the retry limit
                    retry.failed(n, exc)
                    continue
                finish(result)
                break

    results = tuple(done[n] for n in partitions if n in done)
    values = {r.nprocs: adapter.value_of(r) for r in results}
    finite = {n: v for n, v in values.items() if not math.isnan(v)}
    if finite:
        system = max(finite.values())
        best = max(finite, key=lambda n: finite[n])
    else:
        system = math.nan
        best = partitions[0]
    validity_parts = [r.validity for r in results]
    for record in poisoned:
        validity_parts.append(
            RunValidity(
                "degraded",
                flagged=(f"partition:{record.nprocs}",),
                reason=f"poisoned after {len(record.attempts)} attempt(s)",
            )
        )
    if poisoned and not results:
        # nothing survived: there is no system value to quote at all
        validity_parts.append(
            RunValidity(
                "invalid",
                skipped=tuple(f"partition:{r.nprocs}" for r in poisoned),
                reason="every partition was poisoned",
            )
        )
    return SweepOutcome(
        benchmark=benchmark,
        machine=spec.name if not isinstance(spec, str) else machine_name,
        results=results,
        system_value=system,
        best_partition=best,
        official=adapter.official_of(config),
        validity=merge(validity_parts),
        fresh=fresh,
        cached=cached,
        poisoned=poisoned,
    )


def _run_parallel(
    benchmark: str,
    key: str,
    remaining: list[int],
    config: Any,
    jobs: int,
    retry: _Retry,
    finish: Callable[[Any], None],
) -> None:
    """Fan partitions over worker processes; journal as each completes.

    A :class:`BrokenProcessPool` (worker killed mid-run) poisons every
    in-flight future, so the pool is rebuilt and the unfinished
    partitions resubmitted — each broken partition consumes one retry.
    """
    todo = set(remaining)
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(remaining)))
    try:
        while todo:
            futures: dict[Future[Any], int] = {
                pool.submit(_run_partition, benchmark, key, n, config): n
                for n in sorted(todo)
            }
            broken = False
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                # wait() returns a set; drain it in partition order so
                # journal writes and retry accounting are reproducible
                for fut in sorted(finished, key=futures.__getitem__):
                    n = futures[fut]
                    try:
                        result = fut.result()
                    except BrokenProcessPool as exc:
                        retry.failed(n, exc)
                        broken = True
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:  # repro-lint: disable=REPRO005 -- retry.failed re-raises (as SweepWorkerError with the worker's traceback) past the retry limit
                        retry.failed(n, exc)
                    else:
                        todo.discard(n)
                        finish(result)
                if broken:
                    break
            if broken and todo:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=min(jobs, len(todo)))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
