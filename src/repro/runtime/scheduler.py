"""Dynamic grid scheduler: machine-zoo × benchmark × config × partitions.

The paper's whole point is cross-machine characterization — the same
two benchmarks swept over many machines and partition sizes.  This
module turns such a grid into :class:`~repro.runtime.spec.RunSpec`
cells and executes them with three properties a naive
``for machine: for nprocs: run()`` loop lacks:

* **Cache integration.**  Cells whose fingerprint is already in a
  :class:`~repro.runtime.store.RunStore` are served from disk (digest
  verified) and never re-simulated.
* **Deduplication.**  Identical fingerprints — duplicate grid cells,
  or concurrent submitters racing the same spec through
  :meth:`GridScheduler.submit` — collapse to one execution whose
  result every requester shares.
* **Dynamic longest-expected-first dispatch.**  A :class:`CostModel`
  (calibratable from the committed ``BENCH_*.json`` payloads) orders
  the queue by expected cost, so a skewed grid — one 4k-rank cell
  among 16-proc cells — starts its big cell first instead of
  serializing the fleet on whichever static chunk drew it last.
  :func:`plan_schedule` exposes the exact assignment both policies
  produce, so the makespan win is a testable property of this module,
  not a wall-clock accident.

Workers are processes (the cells are CPU-bound simulations); results
travel back as envelope dicts and are journaled/stored as they land.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.validity import VALID, RunValidity, merge
from repro.runtime import chaos
from repro.runtime.envelope import ResultEnvelope, envelope_for
from repro.runtime.spec import BenchmarkConfig, RunSpec, run_spec
from repro.runtime.store import RunStore, as_store
from repro.runtime.supervisor import (
    PoisonRecord,
    SupervisedTask,
    SupervisionPolicy,
    backoff_delay,
    supervise,
)

__all__ = [
    "CostModel",
    "GridCell",
    "GridOutcome",
    "GridScheduler",
    "GridWorkerError",
    "SchedulePlan",
    "SupervisionPolicy",
    "expand_grid",
    "grid_validity",
    "plan_schedule",
    "run_grid",
]


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------

#: relative wall-cost weight per engine mode (same nprocs).  The DES
#: backends simulate events; analytic solves one capped max-min per
#: pattern; the b_eff_io fast path skips proven-periodic repetitions.
_DEFAULT_MODE_WEIGHT: Mapping[str, float] = {
    "analytic": 1.0,
    "des-fast": 40.0,
    "des-reference": 120.0,
    "fast": 15.0,
    "reference": 60.0,
}


@dataclass(frozen=True)
class CostModel:
    """Expected relative cost of a cell, from nprocs and engine mode.

    The absolute scale is irrelevant — only the *ordering* (and the
    rough ratios, for makespan planning) matter.  ``exponent`` is the
    nprocs scaling power; :meth:`calibrate` fits it from the committed
    ``BENCH_fluid.json`` wall-time trajectory when available and falls
    back to the default otherwise.
    """

    exponent: float = 1.4
    mode_weight: Mapping[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_MODE_WEIGHT)
    )

    def cost(self, spec: RunSpec) -> float:
        weight = self.mode_weight.get(
            spec.engine_mode, max(self.mode_weight.values(), default=1.0)
        )
        cost = weight * float(spec.nprocs) ** self.exponent
        # b_eff_io work scales with the scheduled time as well
        scheduled = getattr(spec.config, "T", None)
        if scheduled is not None:
            cost *= max(float(scheduled), 1.0)
        return cost

    @classmethod
    def calibrate(cls, results_dir: "str | os.PathLike[str]") -> "CostModel":
        """Fit the nprocs exponent from ``BENCH_fluid.json`` rounds.

        The committed payload records incremental-engine wall seconds
        at several process counts; the log-log slope between the first
        and last rows is the measured scaling power.  Missing or
        malformed payloads keep the defaults — calibration is an
        optimization, never a requirement.
        """
        import json
        import math
        import pathlib

        path = pathlib.Path(results_dir) / "BENCH_fluid.json"
        try:
            payload = json.loads(path.read_text())
            rounds = [
                (float(row["procs"]), float(row["incremental_wall_s"]))
                for row in payload["rounds"]
                if row.get("procs") and row.get("incremental_wall_s")
            ]
        except (OSError, ValueError, TypeError, KeyError):
            return cls()
        rounds.sort()
        if len(rounds) < 2 or rounds[0][0] == rounds[-1][0]:
            return cls()
        (p0, w0), (p1, w1) = rounds[0], rounds[-1]
        if w0 <= 0 or w1 <= 0:
            return cls()
        exponent = math.log(w1 / w0) / math.log(p1 / p0)
        return cls(exponent=min(max(exponent, 0.5), 3.0))


# ---------------------------------------------------------------------------
# grid expansion
# ---------------------------------------------------------------------------


def expand_grid(
    machines: Iterable[str],
    benchmarks: Iterable[str],
    partitions: Iterable[int],
    configs: Mapping[str, BenchmarkConfig] | None = None,
    skip_unsupported: bool = True,
) -> list[RunSpec]:
    """Expand a machine-zoo × benchmark × partitions grid to cells.

    ``configs`` maps benchmark name to the engine configuration for
    its cells (the benchmark's default configuration otherwise).
    With ``skip_unsupported`` (the default), b_eff_io cells on
    machines without a parallel-filesystem model are dropped instead
    of failing the whole grid — the paper itself only reports
    b_eff_io for the machines whose I/O subsystem it describes.
    """
    from repro.machines import get_machine

    cells: list[RunSpec] = []
    parts = sorted(set(partitions))
    for machine in machines:
        spec = get_machine(machine)  # validates the key early
        for benchmark in benchmarks:
            if (
                benchmark == "b_eff_io"
                and spec.pfs is None
                and skip_unsupported
            ):
                continue
            config = configs.get(benchmark) if configs else None
            for nprocs in parts:
                cells.append(run_spec(benchmark, machine, nprocs, config))
    return cells


# ---------------------------------------------------------------------------
# schedule planning (the dynamic-vs-static contract, testable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchedulePlan:
    """One policy's assignment of cells to workers.

    ``dispatch`` is the order cells enter the pool; ``assignments``
    maps worker index to its cell list under the model costs;
    ``makespan`` is the modelled finish time of the slowest worker.
    Feeding :func:`plan_schedule` *measured* per-cell costs turns the
    modelled makespan into the real one a pool with that dispatch
    order would achieve — which is how the recorded benchmark proves
    the dynamic policy's win without depending on runner core counts.
    """

    policy: str
    dispatch: tuple[int, ...]
    assignments: tuple[tuple[int, ...], ...]
    makespan: float


def plan_schedule(
    costs: Sequence[float], jobs: int, policy: str = "dynamic"
) -> SchedulePlan:
    """Assign cells (given their costs) to ``jobs`` workers.

    ``dynamic`` is longest-expected-first with greedy
    earliest-available-worker dispatch — exactly what feeding a
    process pool in descending-cost order achieves.  ``static`` is
    the ``jobs=N`` baseline it replaces: contiguous chunks in grid
    order, one chunk per worker, no balancing.  Ties break by cell
    index, so plans are deterministic.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if policy not in ("dynamic", "static"):
        raise ValueError(f"unknown scheduling policy {policy!r}")
    n = len(costs)
    workers = max(1, min(jobs, n))
    if policy == "static":
        # contiguous chunks in the given order (ceil-sized), the
        # classic static pre-partitioning
        per = -(-n // workers) if n else 0
        chunks = [tuple(range(i, min(i + per, n))) for i in range(0, n, per)] if n else []
        chunks += [()] * (workers - len(chunks))
        dispatch = tuple(range(n))
        makespan = max((sum(costs[i] for i in chunk) for chunk in chunks), default=0.0)
        return SchedulePlan(
            policy=policy,
            dispatch=dispatch,
            assignments=tuple(chunks),
            makespan=makespan,
        )
    order = sorted(range(n), key=lambda i: (-costs[i], i))
    finish = [0.0] * workers
    assigned: list[list[int]] = [[] for _ in range(workers)]
    for i in order:
        w = min(range(workers), key=lambda k: (finish[k], k))
        assigned[w].append(i)
        finish[w] += costs[i]
    return SchedulePlan(
        policy="dynamic",
        dispatch=tuple(order),
        assignments=tuple(tuple(cells) for cells in assigned),
        makespan=max(finish, default=0.0),
    )


# ---------------------------------------------------------------------------
# grid execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridCell:
    """One grid cell's outcome: the spec, its envelope, and its source."""

    spec: RunSpec
    envelope: ResultEnvelope
    #: ``"fresh"`` (simulated now), ``"cache"`` (store hit) or
    #: ``"dedup"`` (another cell with the same fingerprint ran)
    source: str

    @property
    def fingerprint(self) -> str:
        return self.spec.fingerprint()


@dataclass(frozen=True)
class GridOutcome:
    """Every cell of a grid run plus the execution accounting.

    ``validity`` is the grid-level merge (see :func:`grid_validity`):
    per-cell validities plus one degraded flag per poisoned cell, so a
    grid that lost cells can never report itself silently ``valid``.
    Poisoned cells are absent from ``cells`` — their
    :class:`~repro.runtime.supervisor.PoisonRecord` stubs are the only
    trace, by design.
    """

    cells: tuple[GridCell, ...]
    fresh: int
    cached: int
    deduped: int
    #: fingerprints in the order they were dispatched for execution
    dispatch_order: tuple[str, ...]
    validity: RunValidity = VALID
    poisoned: tuple[PoisonRecord, ...] = ()

    def describe(self) -> str:
        text = (
            f"{len(self.cells)} cell(s) = {self.fresh} fresh + "
            f"{self.cached} cached + {self.deduped} deduped"
        )
        if self.poisoned:
            text += f" ({len(self.poisoned)} poisoned)"
        return text


class GridWorkerError(RuntimeError):
    """A grid cell failed after exhausting its retries.

    Besides the worker traceback, the failing cell's full identity —
    fingerprint, benchmark, machine, nprocs and the attempt count —
    travels both in the message and as attributes, so an operator (or
    the service layer) can requeue exactly the cell that died without
    parsing prose.
    """

    def __init__(
        self,
        message: str,
        worker_traceback: str = "",
        fingerprint: str = "",
        benchmark: str = "",
        machine: str = "",
        nprocs: int = 0,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback
        self.fingerprint = fingerprint
        self.benchmark = benchmark
        self.machine = machine
        self.nprocs = nprocs
        self.attempts = attempts


class _GridRetry:
    """Attempt counter keyed by (machine, nprocs, benchmark).

    The key matters: in a grid, two different machines fail the same
    partition size independently — pooling their attempts (the old
    nprocs-only keying of the sweep retry) would exhaust one budget
    for both.  Between attempts the counter sleeps the same seeded
    exponential-backoff-with-jitter schedule the supervisor uses, so
    retry timing is a pure function of the cell fingerprint.
    """

    def __init__(self, retries: int, backoff: float = 0.0) -> None:
        self.retries = retries
        self.backoff = backoff
        self.attempts: dict[tuple[str, int, str], int] = {}

    def failed(self, spec: RunSpec, exc: BaseException) -> None:
        key = (spec.machine, spec.nprocs, spec.benchmark)
        n = self.attempts.get(key, 0) + 1
        self.attempts[key] = n
        fingerprint = spec.fingerprint()
        if n > self.retries:
            raise GridWorkerError(
                f"grid cell {spec.benchmark} on {spec.machine!r} at "
                f"nprocs={spec.nprocs} (fingerprint {fingerprint[:12]}) "
                f"failed after {n} attempt(s): "
                f"{type(exc).__name__}: {exc}",
                worker_traceback="".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
                fingerprint=fingerprint,
                benchmark=spec.benchmark,
                machine=spec.machine,
                nprocs=spec.nprocs,
                attempts=n,
            ) from exc
        if self.backoff > 0:
            time.sleep(backoff_delay(fingerprint, n, self.backoff))


def _run_cell(benchmark: str, machine: str, nprocs: int, config: Any) -> dict[str, Any]:
    """Worker entry: run one cell, return its envelope as a plain dict."""
    from repro.machines import get_machine
    from repro.runtime.sweep import adapter_for

    chaos.on_cell(chaos.cell_key(benchmark, machine, nprocs))
    result = adapter_for(benchmark).run(get_machine(machine), nprocs, config)
    return chaos.corrupt_payload(envelope_for(result, machine=machine).to_dict())


def grid_validity(
    cells: Iterable[ResultEnvelope], poisoned: Sequence[PoisonRecord]
) -> RunValidity:
    """Merge cell validities and poison stubs into one grid verdict.

    Every completed cell contributes its own envelope validity (a cell
    whose internal averaged formula lost an input already carries
    ``invalid`` and demotes the grid with it); every poisoned cell
    contributes a ``degraded`` flag naming the cell.  All cells clean
    and nothing poisoned → :data:`~repro.faults.validity.VALID`.
    """
    parts = [env.validity for env in cells]
    for record in poisoned:
        parts.append(
            RunValidity(
                "degraded",
                flagged=(f"cell:{record.benchmark}:{record.machine}:{record.nprocs}",),
                reason=f"poisoned after {len(record.attempts)} attempt(s)",
            )
        )
    return merge(parts)


def _execute(spec: RunSpec) -> ResultEnvelope:
    """In-process execution of one cell (serial path and submitters)."""
    return ResultEnvelope.from_dict(
        _run_cell(spec.benchmark, spec.machine, spec.nprocs, spec.config)
    )


def run_grid(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    store: "RunStore | str | os.PathLike[str] | None" = None,
    policy: str = "dynamic",
    cost_model: CostModel | None = None,
    retries: int = 0,
    journal_root: "str | os.PathLike[str] | None" = None,
    backoff: float = 0.0,
    supervision: SupervisionPolicy | None = None,
) -> GridOutcome:
    """Execute a grid of run specs with caching, dedupe and balancing.

    Identical fingerprints execute once; cells present in ``store``
    are served from it (and count as ``cached``); the rest are
    dispatched longest-expected-first (``policy="dynamic"``) over
    ``jobs`` worker processes, or in static contiguous chunks
    (``policy="static"`` — the baseline, kept for measurement).

    With ``journal_root``, every cell — fresh *or* cache-served — is
    recorded into the per-(benchmark, machine) sweep journal under
    that root, so an interrupted grid resumes through the same
    machinery as a single-machine sweep and cache and journal compose.

    ``backoff`` seeds the exponential-with-jitter retry delay (see
    :func:`~repro.runtime.supervisor.backoff_delay`).  ``supervision``
    switches execution to the supervised path: one killable worker
    process per attempt with deadlines, heartbeat monitoring and — in
    place of the abort-on-exhaustion :class:`GridWorkerError` — poison
    quarantine: the dead cell becomes a
    :class:`~repro.runtime.supervisor.PoisonRecord` on the outcome (and
    a stub in the store sidecar and journal), the grid completes, and
    ``GridOutcome.validity`` reports ``degraded``.
    """
    run_store = as_store(store)
    model = cost_model if cost_model is not None else CostModel()
    retry = _GridRetry(retries, backoff)

    # dedupe identical fingerprints to one execution; remember each
    # fingerprint's first position so later duplicates are labelled
    unique: dict[str, RunSpec] = {}
    first_at: dict[str, int] = {}
    for i, spec in enumerate(specs):
        fp = spec.fingerprint()
        unique.setdefault(fp, spec)
        first_at.setdefault(fp, i)
    deduped = len(specs) - len(unique)

    # serve what the store already has
    envelopes: dict[str, ResultEnvelope] = {}
    sources: dict[str, str] = {}
    pending: list[RunSpec] = []
    for fp, spec in unique.items():
        hit = run_store.get(fp) if run_store is not None else None
        if hit is not None:
            envelopes[fp] = hit
            sources[fp] = "cache"
        else:
            pending.append(spec)

    plan = plan_schedule([model.cost(s) for s in pending], jobs, policy)
    ordered = [pending[i] for i in plan.dispatch]
    dispatch_order = tuple(s.fingerprint() for s in ordered)

    def finish(spec: RunSpec, envelope: ResultEnvelope) -> None:
        fp = spec.fingerprint()
        envelopes[fp] = envelope
        sources[fp] = "fresh"
        if run_store is not None:
            run_store.put(fp, envelope)

    poisoned: tuple[PoisonRecord, ...] = ()
    if supervision is not None:
        tasks = [
            SupervisedTask(
                key=spec.fingerprint(),
                benchmark=spec.benchmark,
                machine=spec.machine,
                nprocs=spec.nprocs,
                config=spec.config,
            )
            for spec in ordered
        ]
        outcome = supervise(tasks, supervision, jobs=jobs)
        for spec in ordered:
            payload = outcome.results.get(spec.fingerprint())
            if payload is not None:
                finish(spec, ResultEnvelope.from_dict(payload))
        poisoned = outcome.poisoned
        if run_store is not None:
            for record in poisoned:
                run_store.record_poison(record.key, record.to_dict())
    elif jobs > 1 and len(ordered) > 1:
        _run_pool(ordered, plan, jobs, policy, retry, finish)
    else:
        for spec in ordered:
            while True:
                try:
                    envelope = _execute(spec)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:  # repro-lint: disable=REPRO005 -- retry.failed re-raises (as GridWorkerError) past the retry limit
                    retry.failed(spec, exc)
                    continue
                finish(spec, envelope)
                break

    if journal_root is not None:
        _journal_cells(journal_root, unique, envelopes, poisoned)

    cells = tuple(
        GridCell(
            spec=spec,
            envelope=envelopes[spec.fingerprint()],
            source=(
                sources[spec.fingerprint()]
                if first_at[spec.fingerprint()] == i
                else "dedup"
            ),
        )
        for i, spec in enumerate(specs)
        if spec.fingerprint() in envelopes
    )
    fresh = sum(1 for s in sources.values() if s == "fresh")
    cached = sum(1 for s in sources.values() if s == "cache")
    return GridOutcome(
        cells=cells,
        fresh=fresh,
        cached=cached,
        deduped=deduped,
        dispatch_order=dispatch_order,
        validity=grid_validity((c.envelope for c in cells), poisoned),
        poisoned=poisoned,
    )


def _run_pool(
    ordered: list[RunSpec],
    plan: SchedulePlan,
    jobs: int,
    policy: str,
    retry: _GridRetry,
    finish: Callable[[RunSpec, ResultEnvelope], None],
) -> None:
    """Fan cells over worker processes following the planned dispatch.

    The dynamic policy submits every cell in longest-first order and
    lets the pool balance; the static policy submits one serial chunk
    per worker (the pre-partitioned baseline).  A broken pool (worker
    killed mid-run) is rebuilt and the unfinished cells resubmitted,
    each consuming one retry.
    """
    todo = list(ordered)
    workers = max(1, min(jobs, len(todo)))
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        while todo:
            futures: dict[Future[Any], tuple[RunSpec, ...]] = {}
            if policy == "static" and len(todo) == len(ordered):
                # initial static submission: one contiguous chunk per
                # worker, exactly the plan's assignment
                for chunk in plan.assignments:
                    batch = tuple(ordered[i] for i in chunk)
                    if batch:
                        futures[pool.submit(_run_cell_batch, _ship(batch))] = batch
            else:
                for spec in todo:
                    futures[pool.submit(_run_cell_batch, _ship((spec,)))] = (spec,)
            broken = False
            order_of = {fut: i for i, fut in enumerate(futures)}
            pending_futs = set(futures)
            while pending_futs:
                finished, pending_futs = wait(pending_futs, return_when=FIRST_COMPLETED)
                for fut in sorted(finished, key=order_of.__getitem__):
                    batch = futures[fut]
                    try:
                        payloads = fut.result()
                    except BrokenProcessPool as exc:
                        for spec in batch:
                            retry.failed(spec, exc)
                        broken = True
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:  # repro-lint: disable=REPRO005 -- retry.failed re-raises (as GridWorkerError) past the retry limit
                        for spec in batch:
                            retry.failed(spec, exc)
                    else:
                        for spec, payload in zip(batch, payloads):
                            todo.remove(spec)
                            finish(spec, ResultEnvelope.from_dict(payload))
                if broken:
                    break
            if broken and todo:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=max(1, min(jobs, len(todo))))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _ship(batch: tuple[RunSpec, ...]) -> list[tuple[str, str, int, Any]]:
    """Picklable form of a batch (specs hold only registry keys)."""
    return [(s.benchmark, s.machine, s.nprocs, s.config) for s in batch]


def _run_cell_batch(cells: list[tuple[str, str, int, Any]]) -> list[dict[str, Any]]:
    """Worker entry: run a batch of cells serially (static chunks)."""
    return [_run_cell(*cell) for cell in cells]


def _journal_cells(
    journal_root: "str | os.PathLike[str]",
    unique: Mapping[str, RunSpec],
    envelopes: Mapping[str, ResultEnvelope],
    poisoned: Sequence[PoisonRecord] = (),
) -> None:
    """Record every cell into per-(benchmark, machine) sweep journals.

    Cache-served cells are journaled exactly like fresh ones, so a
    later ``--resume`` of the per-machine sweep replays them — cache
    and journal compose instead of competing.  Poisoned cells leave a
    stub (their failure provenance) in place of a partition file; a
    later run that heals the cell overwrites the stub with the result.
    """
    import pathlib

    from repro.reporting.export import write_json_atomic
    from repro.runtime.envelope import result_from_envelope
    from repro.runtime.spec import cell_fingerprint, sweep_fingerprint
    from repro.runtime.sweep import JOURNAL_SCHEMA, SweepJournal

    root = pathlib.Path(journal_root)
    by_sweep: dict[tuple[str, str], list[RunSpec]] = {}
    for spec in unique.values():
        by_sweep.setdefault((spec.benchmark, spec.machine), []).append(spec)
    poison_by_sweep: dict[tuple[str, str], list[PoisonRecord]] = {}
    for record in poisoned:
        poison_by_sweep.setdefault((record.benchmark, record.machine), []).append(record)
    for (benchmark, machine), cells in sorted(by_sweep.items()):
        journal = SweepJournal(root / f"{benchmark}__{machine}")
        journal.path.mkdir(parents=True, exist_ok=True)
        config = cells[0].config
        write_json_atomic(
            journal.manifest_path,
            {
                "schema": JOURNAL_SCHEMA,
                "machine": machine,
                "fingerprint": sweep_fingerprint(benchmark, machine, config),
                "cells": {
                    str(c.nprocs): cell_fingerprint(
                        benchmark, machine, c.nprocs, config
                    )
                    for c in cells
                },
            },
        )
        for cell in cells:
            if cell.fingerprint() in envelopes:
                journal.record(
                    result_from_envelope(envelopes[cell.fingerprint()]), machine
                )
        for record in poison_by_sweep.get((benchmark, machine), []):
            journal.record_poison(record)


# ---------------------------------------------------------------------------
# concurrent submission (in-flight dedupe)
# ---------------------------------------------------------------------------


class GridScheduler:
    """Submission front-end with in-flight fingerprint dedupe.

    ``submit`` is safe to call from many threads: the first submitter
    of a fingerprint executes it (store-first), every concurrent or
    later submitter receives *the same* :class:`Future` — and hence
    the identical envelope object — without a second execution.  This
    is the surface the ROADMAP's benchmark-as-a-service layer stacks
    on: N clients racing the same spec cost one simulation.
    """

    def __init__(
        self,
        store: "RunStore | str | os.PathLike[str] | None" = None,
        runner: Callable[[RunSpec], ResultEnvelope] | None = None,
    ) -> None:
        self.store = as_store(store)
        self._runner = runner if runner is not None else _execute
        self._lock = threading.Lock()
        self._futures: dict[str, Future[ResultEnvelope]] = {}
        #: executions actually performed (for observability and tests)
        self.executions = 0

    def submit(self, spec: RunSpec) -> "Future[ResultEnvelope]":
        """A future for the spec's envelope; dedupes identical specs."""
        fp = spec.fingerprint()
        with self._lock:
            existing = self._futures.get(fp)
            if existing is not None:
                return existing
            fut: Future[ResultEnvelope] = Future()
            self._futures[fp] = fut
        hit = self.store.get(fp) if self.store is not None else None
        if hit is not None:
            fut.set_result(hit)
            return fut
        try:
            with self._lock:
                self.executions += 1
            envelope = self._runner(spec)
        except BaseException as exc:  # repro-lint: disable=REPRO005 -- the error travels to every submitter via Future.set_exception
            fut.set_exception(exc)
            # a failed execution must not poison later submitters
            with self._lock:
                self._futures.pop(fp, None)
            return fut
        if self.store is not None:
            self.store.put(fp, envelope)
        fut.set_result(envelope)
        return fut

    def result(self, spec: RunSpec) -> ResultEnvelope:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(spec).result()
