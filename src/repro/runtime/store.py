"""Persistent content-addressed result store: never simulate twice.

Every benchmark run is named completely by its
:meth:`~repro.runtime.spec.RunSpec.fingerprint` and produces a
versioned :class:`~repro.runtime.envelope.ResultEnvelope` whose JSON
form round-trips bit-exactly — which makes the pair exactly a cache
key and a cache value.  A :class:`RunStore` is that cache, durable on
disk:

* **Writes are atomic** (``write_json_atomic``: temp file +
  ``os.replace``), so a crash mid-put leaves either the old entry or
  the new one, never a torn file.
* **Reads verify content.**  Each entry records the SHA-256 of the
  canonical envelope text it holds; a corrupted payload (bit rot,
  truncation, a foreign file under the key) is *quarantined* — moved
  aside, counted, and reported as a miss so the run re-executes —
  never served.
* **Eviction is size-capped LRU.**  ``limit_bytes`` bounds the object
  directory; :meth:`RunStore.compact` drops least-recently-served
  entries (access bumps the file mtime) until the cap holds.  An
  eviction can only ever unlink a complete file, and readers load an
  entry in a single read, so a concurrent reader either gets the full
  verified entry or a clean miss — never a partial one.
* **Stats** (hits / misses / puts / evictions / quarantined) make the
  cache's behaviour observable to sweeps, the grid scheduler and the
  CLI.

Because every engine mode is bit-deterministic (the fast/reference
parity contracts of PRs 1–6), a warm read is byte-identical to a cold
execution — determinism is what makes this cache sound.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass

from repro.runtime.envelope import ResultEnvelope

#: layout version written into every store entry
STORE_SCHEMA = 1


@dataclass
class StoreStats:
    """Counters of one :class:`RunStore` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    quarantined: int = 0
    poisoned: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "poisoned": self.poisoned,
        }

    def describe(self) -> str:
        text = (
            f"hits={self.hits} misses={self.misses} puts={self.puts} "
            f"evictions={self.evictions} quarantined={self.quarantined}"
        )
        if self.poisoned:
            text += f" poisoned={self.poisoned}"
        return text


def canonical_envelope_text(envelope: ResultEnvelope) -> str:
    """The byte-exact serialized form a store entry holds and verifies.

    ``sort_keys`` makes the text a pure function of the envelope's
    content (never of dict insertion order), so equal results always
    produce equal bytes — the property the warm-vs-cold byte-identity
    checks and the digest verification both rest on.
    """
    return json.dumps(envelope.to_dict(), indent=2, sort_keys=True)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One verified store object (the envelope plus its exact bytes)."""

    key: str
    envelope: ResultEnvelope
    #: the canonical text the digest was verified against — byte-equal
    #: to what a cold execution would serialize
    text: str


class RunStore:
    """Content-addressed envelope store keyed by run fingerprints.

    ``root`` is created lazily; entries live under ``objects/<k2>/``
    (two-hex-digit fan-out) and quarantined corruption under
    ``quarantine/``.  ``limit_bytes`` (optional) enables the LRU
    compaction pass after every put.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        limit_bytes: int | None = None,
    ) -> None:
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive (or None for unbounded)")
        self.root = pathlib.Path(root)
        self.limit_bytes = limit_bytes
        self.stats = StoreStats()

    # -- layout --------------------------------------------------------

    @property
    def objects_dir(self) -> pathlib.Path:
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / "quarantine"

    def path_for(self, key: str) -> pathlib.Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def keys(self) -> list[str]:
        """Every stored fingerprint, sorted (deterministic listing)."""
        return sorted(p.stem for p in self.objects_dir.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def total_bytes(self) -> int:
        """Current size of the object directory (entry files only)."""
        total = 0
        for path in self.objects_dir.glob("*/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue  # evicted between glob and stat
        return total

    # -- reads ---------------------------------------------------------

    def get_entry(self, key: str) -> StoreEntry | None:
        """Load and verify one entry; ``None`` on miss or quarantine.

        The entry file is consumed in a single read, so a concurrent
        eviction (an ``unlink``) can never expose a partial payload —
        the read either sees the complete atomic write or fails
        cleanly as a miss.  Verification failures (unparseable file,
        wrong schema, wrong key, digest mismatch, unreadable envelope)
        quarantine the file and report a miss, so a corrupt entry is
        never served and the run transparently re-executes.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except (FileNotFoundError, NotADirectoryError):
            self.stats.misses += 1
            return None
        try:
            record = json.loads(raw)
            if not isinstance(record, dict):
                raise ValueError("store entry is not a JSON object")
            if record.get("schema") != STORE_SCHEMA:
                raise ValueError(f"store entry schema {record.get('schema')!r}")
            if record.get("key") != key:
                raise ValueError("store entry key does not match its address")
            text = record["envelope"]
            if not isinstance(text, str) or _sha256(text) != record.get("digest"):
                raise ValueError("store entry digest mismatch")
            envelope = ResultEnvelope.from_dict(json.loads(text))
        except (KeyError, ValueError, TypeError) as exc:
            self._quarantine(path, reason=str(exc))
            self.stats.misses += 1
            return None
        self._touch(path)
        self.stats.hits += 1
        return StoreEntry(key=key, envelope=envelope, text=text)

    def get(self, key: str) -> ResultEnvelope | None:
        """The verified envelope under ``key``, or ``None`` on a miss."""
        entry = self.get_entry(key)
        return entry.envelope if entry is not None else None

    # -- writes --------------------------------------------------------

    def put(self, key: str, envelope: ResultEnvelope) -> pathlib.Path:
        """Store an envelope under its fingerprint (atomic), then compact."""
        from repro.reporting.export import write_json_atomic

        text = canonical_envelope_text(envelope)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json_atomic(
            path,
            {
                "schema": STORE_SCHEMA,
                "key": key,
                "digest": _sha256(text),
                "envelope": text,
            },
        )
        self.stats.puts += 1
        self._clear_poison(key)
        if self.limit_bytes is not None:
            self.compact()
        return path

    # -- poison sidecars -----------------------------------------------

    def poison_path(self, key: str) -> pathlib.Path:
        return self.quarantine_dir / f"poison_{key}.json"

    def record_poison(self, key: str, record: dict) -> pathlib.Path:
        """Record a supervised cell's failure provenance under its key.

        A poisoned cell has *no* result to store; the sidecar is the
        accountable stub — the per-attempt failure kinds, messages and
        the last traceback — a later run (or the service layer) reads
        to decide whether to re-attempt.  A successful :meth:`put` of
        the same key removes the sidecar: healing is automatic.
        """
        from repro.reporting.export import write_json_atomic

        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        path = self.poison_path(key)
        write_json_atomic(path, record)
        self.stats.poisoned += 1
        return path

    def poison(self, key: str) -> dict | None:
        """The recorded poison stub for ``key``, or ``None``."""
        try:
            record = json.loads(self.poison_path(key).read_text())
        except (OSError, ValueError):  # repro-lint: disable=REPRO014 -- an unreadable sidecar means no active quarantine; the read path must stay total
            return None
        return record if isinstance(record, dict) else None

    def poisoned_keys(self) -> list[str]:
        """Every fingerprint with an active poison sidecar, sorted."""
        prefix = "poison_"
        return sorted(
            p.stem[len(prefix):]
            for p in self.quarantine_dir.glob(f"{prefix}*.json")
        )

    def _clear_poison(self, key: str) -> None:
        """A stored result heals the cell; drop any stale poison stub."""
        self.poison_path(key).unlink(missing_ok=True)

    # -- maintenance ---------------------------------------------------

    def compact(self, limit_bytes: int | None = None) -> int:
        """Evict least-recently-served entries past the size cap.

        Returns the number of entries evicted.  Ordering is by access
        time (mtime, bumped on every verified read) with the file name
        as a deterministic tie-break.  Only whole files are unlinked;
        an in-progress reader that already opened the file keeps its
        complete view (POSIX unlink semantics).
        """
        limit = self.limit_bytes if limit_bytes is None else limit_bytes
        if limit is None:
            return 0
        entries: list[tuple[int, str, pathlib.Path, int]] = []
        for path in self.objects_dir.glob("*/*.json"):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime_ns, path.name, path, st.st_size))
        total = sum(size for _, _, _, size in entries)
        evicted = 0
        for _, _, path, size in sorted(entries):
            if total <= limit:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.stats.evictions += evicted
        return evicted

    # -- internals -----------------------------------------------------

    def _touch(self, path: pathlib.Path) -> None:
        """Bump the LRU clock; racing an eviction is a silent no-op."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        """Move a failed entry aside so it is never served again.

        The move is an ``os.replace`` into ``quarantine/`` (same
        filesystem, atomic); the reason is recorded as a sidecar note
        for post-mortems.  A racing eviction may have removed the file
        already — then there is nothing left to quarantine.
        """
        from repro.reporting.export import write_json_atomic

        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            return
        self.stats.quarantined += 1
        write_json_atomic(
            self.quarantine_dir / f"{path.stem}.reason.json", {"reason": reason}
        )


def as_store(
    store: "RunStore | str | os.PathLike[str] | None",
    limit_bytes: int | None = None,
) -> RunStore | None:
    """Coerce a store argument (path or instance) to a :class:`RunStore`."""
    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store, limit_bytes=limit_bytes)
