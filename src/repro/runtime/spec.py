"""Typed run specifications and the unified config fingerprint.

A :class:`RunSpec` names one benchmark run completely: which
benchmark, which library machine, how many processes, and the full
engine configuration (which carries the engine mode and any fault
plan).  Its fingerprint — and the sweep-level
:func:`sweep_fingerprint` the journal pins — hashes the engine mode
and the fault-plan seed *explicitly* on top of the flattened config,
so resuming a journal under changed ``--mode``/``--backend`` or a
different ``--faults`` seed is rejected instead of silently mixing
results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Union

if TYPE_CHECKING:
    from repro.beff.benchmark import BeffResult
    from repro.beff.measurement import MeasurementConfig
    from repro.beffio.benchmark import BeffIOConfig, BeffIOResult

    #: either benchmark's engine configuration
    BenchmarkConfig = Union[MeasurementConfig, BeffIOConfig]
else:  # the config classes import lazily (they live above this layer)
    BenchmarkConfig = Any

#: the benchmarks the runtime can drive
BENCHMARKS = ("b_eff", "b_eff_io")


def engine_mode_of(config: "BenchmarkConfig") -> str:
    """The engine selector of either config.

    For b_eff the DES backend splits by loop engine —
    ``"des-fast"`` (orbit fast-forward, bit-identical by construction)
    vs ``"des-reference"`` — with fault-active configs pinned to
    ``"des-reference"`` because faults force the reference loops at
    run time.  The analytic backend stays ``"analytic"``.
    """
    from repro.beff.measurement import MeasurementConfig
    from repro.beffio.benchmark import BeffIOConfig

    if isinstance(config, MeasurementConfig):
        if config.backend != "des":
            return config.backend
        mode = config.mode if not config.faults else "reference"
        return f"des-{mode}"
    if isinstance(config, BeffIOConfig):
        return config.mode
    raise TypeError(f"unknown benchmark config {type(config).__name__}")


def fault_seed_of(config: "BenchmarkConfig") -> int | None:
    """The fault-plan seed, or None for undisturbed configs."""
    faults = getattr(config, "faults", None)
    return faults.seed if faults is not None else None


def _digest(payload: dict[str, Any]) -> str:
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def _config_dict(config: "BenchmarkConfig") -> dict[str, Any]:
    """The config flattened for hashing.

    ``dataclasses.asdict`` recurses into a nested scenario, so a
    grammar-driven run is content-addressed by its full scenario
    definition; the ``scenario`` key is dropped when None so every
    pre-scenario fingerprint (store entries, journal manifests) stays
    byte-identical.
    """
    d = dataclasses.asdict(config)
    if d.get("scenario") is None:
        d.pop("scenario", None)
    return d


#: sentinel occupying the ``nprocs`` axis in a sweep-level fingerprint
#: ("every partition of this sweep"); real cells always carry an int
SWEEP_AXIS = "*"


def cell_fingerprint(
    benchmark: str, machine: str, nprocs: "int | str", config: "BenchmarkConfig"
) -> str:
    """The one digest scheme for a single benchmark run (a *cell*).

    :meth:`RunSpec.fingerprint`, :func:`sweep_fingerprint`, the sweep
    journal and the :class:`~repro.runtime.store.RunStore` all
    delegate here, so a journal partition, a store entry and a grid
    cell that name the same run share the same key.

    ``dataclasses.asdict`` recurses into a nested
    :class:`~repro.faults.plan.FaultPlan`, so two configs differing
    only in their fault schedule get different fingerprints; the
    engine mode and fault seed are additionally hashed as explicit
    top-level fields (the resume-safety contract, independent of the
    config dataclasses' field layout).
    """
    return _digest(
        {
            "benchmark": benchmark,
            "machine": machine,
            "nprocs": nprocs,
            "engine_mode": engine_mode_of(config),
            "fault_seed": fault_seed_of(config),
            "config": _config_dict(config),
        }
    )


def sweep_fingerprint(benchmark: str, machine: str, config: "BenchmarkConfig") -> str:
    """Stable hash pinning what a sweep journal recorded.

    Delegates to :func:`cell_fingerprint` with the partition axis
    erased (:data:`SWEEP_AXIS`), so the sweep digest and every cell
    digest of that sweep are the same scheme — journal manifests,
    store keys and resume-rejection all share it.  Journals written
    under the pre-store layout are still resumable through
    :func:`legacy_sweep_fingerprint`.
    """
    return cell_fingerprint(benchmark, machine, SWEEP_AXIS, config)


def legacy_sweep_fingerprint(
    benchmark: str, machine: str, config: "BenchmarkConfig"
) -> str:
    """The pre-store sweep digest (no partition axis in the payload).

    Kept only so schema-1 journals written before the unified keying
    scheme resume instead of being rejected; new manifests always pin
    :func:`sweep_fingerprint`.
    """
    return _digest(
        {
            "benchmark": benchmark,
            "machine": machine,
            "engine_mode": engine_mode_of(config),
            "fault_seed": fault_seed_of(config),
            "config": _config_dict(config),
        }
    )


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified benchmark run.

    ``machine`` is a registry key (specs hold environment-factory
    closures, so only the key is picklable and journal-able);
    ``config`` defaults to the benchmark's standard configuration.
    """

    benchmark: str
    machine: str
    nprocs: int
    config: "BenchmarkConfig"

    def __post_init__(self) -> None:
        from repro.beff.measurement import MeasurementConfig
        from repro.beffio.benchmark import BeffIOConfig

        if self.benchmark not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {self.benchmark!r} (known: {BENCHMARKS})"
            )
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        want = MeasurementConfig if self.benchmark == "b_eff" else BeffIOConfig
        if not isinstance(self.config, want):
            raise TypeError(
                f"{self.benchmark} runs take a {want.__name__}, "
                f"got {type(self.config).__name__}"
            )

    @property
    def engine_mode(self) -> str:
        return engine_mode_of(self.config)

    @property
    def fault_seed(self) -> int | None:
        return fault_seed_of(self.config)

    def fingerprint(self) -> str:
        """Stable hash of the complete run specification.

        This is the content address of the run's result: the sweep
        journal, the :class:`~repro.runtime.store.RunStore` and the
        grid scheduler all key by it (via :func:`cell_fingerprint`).
        """
        return cell_fingerprint(self.benchmark, self.machine, self.nprocs, self.config)

    def run(self) -> "BeffResult | BeffIOResult":
        """Execute the run and return the benchmark's result object."""
        from repro.machines import get_machine
        from repro.runtime.sweep import adapter_for

        return adapter_for(self.benchmark).run(
            get_machine(self.machine), self.nprocs, self.config
        )

    def envelope(self) -> "Any":
        """Execute the run and wrap the result in a ResultEnvelope."""
        from repro.runtime.envelope import envelope_for

        return envelope_for(self.run(), machine=self.machine)


def run_spec(
    benchmark: str,
    machine: str,
    nprocs: int,
    config: "BenchmarkConfig | None" = None,
) -> RunSpec:
    """Build a :class:`RunSpec`, defaulting the engine configuration."""
    if config is None:
        from repro.beff.measurement import MeasurementConfig
        from repro.beffio.benchmark import BeffIOConfig

        config = MeasurementConfig() if benchmark == "b_eff" else BeffIOConfig()
    return RunSpec(benchmark=benchmark, machine=machine, nprocs=nprocs, config=config)
