"""Declarative reduction trees: benchmark formulas as data.

Both benchmarks aggregate keyed leaf measurements through a fixed
stack of reductions:

* b_eff (paper Sec. 4)::

      logavg over kinds
        logavg over patterns
          arithmetic mean over the 21 sizes
            max over methods
              max over repetitions

* b_eff_io (paper Sec. 5.1)::

      weighted mean over access methods (25 % / 25 % / 50 %)
        weighted mean over pattern types (scatter type double-weighted)

A :class:`Formula` spells such a stack out as a tuple of
:class:`Reduce` steps — outermost first, one step per key axis — and
:func:`evaluate` folds keyed leaves through it.  The fold preserves
leaf order inside every group and reuses the exact primitives of
:mod:`repro.util.averages`, so results are bit-identical to the
hand-rolled aggregation loops this layer replaced.

:func:`evaluate_partial` is the single implementation of best-effort
aggregation over an incomplete leaf set (resilient/faulted runs): a
missing *averaged* component makes the dependent aggregates ``nan``,
while surviving sub-aggregates keep the exact values a complete run
would have produced.  The two benchmark ``analysis`` modules both
delegate here instead of duplicating that logic.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.util import logavg, weighted_average

#: a key path through the formula's axes, outermost axis first
Key = tuple[Any, ...]


# ---------------------------------------------------------------------------
# primitive reducers
# ---------------------------------------------------------------------------


def max_over(values: Iterable[float], ignore_nan: bool = False) -> float:
    """Maximum of ``values``; with ``ignore_nan`` drop NaNs first.

    ``ignore_nan=True`` is the sweep rule: an invalid partition (NaN)
    is excluded from the system maximum instead of poisoning it; if
    *every* value is NaN the result is NaN.
    """
    vals = list(values)
    if ignore_nan:
        finite = [v for v in vals if not math.isnan(v)]
        if not finite:
            if not vals:
                raise ValueError("max_over of empty sequence")
            return math.nan
        return max(finite)
    if not vals:
        raise ValueError("max_over of empty sequence")
    return max(vals)


def arith_mean(values: Sequence[float], count: int | None = None) -> float:
    """Arithmetic mean; ``count`` pins the expected (and divisor) length.

    The b_eff per-pattern average divides by the *scheduled* number of
    sizes, so a short group must be rejected, never silently averaged
    over fewer values.
    """
    if count is not None and len(values) != count:
        raise ValueError(f"have {len(values)} values, expected {count}")
    if not values:
        raise ValueError("arith_mean of empty sequence")
    return sum(values) / (count if count is not None else len(values))


def log_avg(values: Iterable[float]) -> float:
    """Logarithmic average (geometric mean); see :func:`repro.util.logavg`."""
    return logavg(values)


def weighted_avg(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; see :func:`repro.util.weighted_average`."""
    return weighted_average(values, weights)


# ---------------------------------------------------------------------------
# formulas as data
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reduce:
    """One reduction step: how one key axis collapses into its parent.

    ``op``
        ``"max"`` | ``"mean"`` | ``"logavg"`` | ``"weighted"``.
    ``over``
        the axis name this step reduces (documentation, table lookup,
        error messages).
    ``weights`` / ``default_weight``
        per-child-key weights for ``op="weighted"``.
    ``count``
        exact child count an ``op="mean"`` group must have (the 21
        message sizes); doubles as the divisor.
    ``require``
        child keys that must all be present, in canonical order (the
        b_eff kind step requires both ``ring`` and ``random``); groups
        are re-ordered to this sequence before reducing.
    ``partial``
        behaviour under :func:`evaluate_partial` for steps *above* the
        component level: ``"strict"`` turns a group with a missing or
        NaN expected child into NaN (the b_eff_io method values);
        ``"loose"`` reduces whatever survived (the per-kind logavg
        partials of b_eff).
    """

    op: str
    over: str
    weights: Mapping[Any, float] | None = None
    default_weight: float = 1.0
    count: int | None = None
    require: tuple[Any, ...] | None = None
    partial: str = "strict"

    def __post_init__(self) -> None:
        if self.op not in ("max", "mean", "logavg", "weighted"):
            raise ValueError(f"unknown reduction op {self.op!r}")
        if self.partial not in ("strict", "loose"):
            raise ValueError(f"unknown partial policy {self.partial!r}")

    def weight_of(self, child_key: Any) -> float:
        if self.weights is None:
            return self.default_weight
        return float(self.weights.get(child_key, self.default_weight))


@dataclass(frozen=True)
class Formula:
    """A whole reduction tree: one :class:`Reduce` per key axis.

    ``steps[0]`` is the outermost reduction (it produces the single
    number); leaves carry one key element per step, outermost first.
    """

    name: str
    steps: tuple[Reduce, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a formula needs at least one reduction step")
        axes = [s.over for s in self.steps]
        if len(set(axes)) != len(axes):
            raise ValueError(f"duplicate axis names in {axes}")

    @property
    def axes(self) -> tuple[str, ...]:
        return tuple(s.over for s in self.steps)

    def step_index(self, axis: str) -> int:
        for i, step in enumerate(self.steps):
            if step.over == axis:
                return i
        raise KeyError(f"formula {self.name!r} has no axis {axis!r}")


@dataclass(frozen=True)
class Evaluation:
    """The folded value plus every intermediate table.

    ``tables[axis]`` maps each key *prefix* (the axes outside
    ``axis``) to the value produced when ``axis`` was reduced —
    e.g. the b_eff per-pattern averages live in ``tables["size"]``
    keyed by ``(kind, pattern)``.
    """

    value: float
    tables: Mapping[str, Mapping[Key, float]]
    #: expected components that produced no complete value (partial
    #: evaluations only; always empty for :func:`evaluate`)
    missing: tuple[Key, ...] = ()
    #: the surviving component values of a partial evaluation, keyed
    #: by component key in leaf order (empty for :func:`evaluate`,
    #: whose ``tables`` already hold every level)
    components: Mapping[Key, float] = field(default_factory=dict)

    def table(self, axis: str) -> Mapping[Key, float]:
        return self.tables[axis]


def _group(rows: Sequence[tuple[Key, float]]) -> dict[Key, list[tuple[Any, float]]]:
    """Group rows by key prefix, preserving row order inside groups."""
    groups: dict[Key, list[tuple[Any, float]]] = {}
    for key, value in rows:
        groups.setdefault(key[:-1], []).append((key[-1], value))
    return groups


def _apply(step: Reduce, prefix: Key, items: list[tuple[Any, float]]) -> float:
    """Reduce one ordered group of (child key, value) pairs."""
    if step.require is not None:
        have = dict(items)
        absent = [k for k in step.require if k not in have]
        if absent:
            raise ValueError(
                f"{step.over} group {prefix!r} is missing required "
                f"children {absent} for {step.op}"
            )
        items = [(k, have[k]) for k in step.require]
    values = [v for _, v in items]
    if step.op == "max":
        return max_over(values)
    if step.op == "mean":
        if step.count is not None and len(values) != step.count:
            raise ValueError(
                f"{step.over} group {prefix!r} has {len(values)} values, "
                f"expected {step.count}"
            )
        return arith_mean(values, count=step.count)
    if step.op == "logavg":
        return log_avg(values)
    return weighted_avg(values, [step.weight_of(k) for k, _ in items])


def evaluate(formula: Formula, leaves: Iterable[tuple[Key, float]]) -> Evaluation:
    """Fold keyed leaves through the formula (complete-run semantics).

    Every structural defect — a short ``count`` group, a missing
    ``require`` child, an empty axis — raises :class:`ValueError`;
    nothing is silently absorbed.  Group order follows leaf order, so
    float folds reproduce the legacy aggregation loops bit-exactly.
    """
    rows: list[tuple[Key, float]] = list(leaves)
    depth = len(formula.steps)
    for key, _ in rows:
        if len(key) != depth:
            raise ValueError(
                f"leaf key {key!r} has {len(key)} axes, formula "
                f"{formula.name!r} has {depth}"
            )
    if not rows:
        raise ValueError(f"no leaves to evaluate for formula {formula.name!r}")
    tables: dict[str, dict[Key, float]] = {}
    for step in reversed(formula.steps):
        groups = _group(rows)
        reduced = {
            prefix: _apply(step, prefix, items) for prefix, items in groups.items()
        }
        tables[step.over] = reduced
        rows = list(reduced.items())
    return Evaluation(value=tables[formula.steps[0].over][()], tables=tables)


# ---------------------------------------------------------------------------
# partial (best-effort) evaluation — the one home of degraded aggregation
# ---------------------------------------------------------------------------


def evaluate_partial(
    formula: Formula,
    leaves: Iterable[tuple[Key, float]],
    expected: Sequence[Key],
) -> Evaluation:
    """Best-effort fold over an incomplete leaf set.

    ``expected`` lists every *component* key the schedule planned —
    all of the same length L, naming prefixes after the first L axes
    (b_eff: ``(kind, pattern)``; b_eff_io: ``(method, type)``).  Axes
    inside a component (L..end) reduce tolerantly: a group that cannot
    complete (short ``count``, nothing measured) marks its component
    missing instead of raising.  Axes above the component level follow
    each step's ``partial`` policy, and the final value is NaN
    whenever any expected component is missing — every benchmark
    formula averages its components, so one hole makes the single
    number incomputable while the surviving sub-aggregates stay exact.

    Components present in the leaves but absent from ``expected`` are
    dropped (an unscheduled measurement never enters an official
    aggregate).
    """
    expected = list(expected)
    if not expected:
        raise ValueError("evaluate_partial needs at least one expected component")
    level = len(expected[0])
    if any(len(k) != level for k in expected):
        raise ValueError(f"expected component keys differ in length: {expected!r}")
    if not 0 < level <= len(formula.steps):
        raise ValueError(
            f"component keys of length {level} do not fit formula "
            f"{formula.name!r} with {len(formula.steps)} axes"
        )
    expected_set = set(expected)

    # -- inside components: tolerant reduction, failures mark the component
    rows: list[tuple[Key, float]] = list(leaves)
    incomplete: set[Key] = set()
    for step in reversed(formula.steps[level:]):
        groups = _group(rows)
        reduced: dict[Key, float] = {}
        for prefix, items in groups.items():
            try:
                reduced[prefix] = _apply(step, prefix, items)
            except ValueError:
                incomplete.add(prefix[:level])
        rows = list(reduced.items())

    components = {
        key: value
        for key, value in rows
        if key in expected_set and key not in incomplete
    }
    missing = tuple(k for k in expected if k not in components)

    # -- above components: per-step partial policy
    tables: dict[str, dict[Key, float]] = {}
    rows = list(components.items())
    for i in range(level - 1, -1, -1):
        step = formula.steps[i]
        groups = _group(rows)
        reduced = {}
        prefixes = list(dict.fromkeys(k[: i] for k in expected))
        for prefix in prefixes:
            if step.require is not None:
                wanted = [prefix + (child,) for child in step.require]
            else:
                wanted = list(
                    dict.fromkeys(k[: i + 1] for k in expected if k[:i] == prefix)
                )
            items = groups.get(prefix, [])
            have = {prefix + (child,): v for child, v in items}
            if step.partial == "strict":
                complete = all(
                    w in have and not math.isnan(have[w]) for w in wanted
                ) and bool(wanted)
                if complete:
                    reduced[prefix] = _apply(step, prefix, items)
                else:
                    reduced[prefix] = math.nan
            else:  # loose: reduce what survived
                alive = [(c, v) for c, v in items if not math.isnan(v)]
                reduced[prefix] = (
                    _apply(step, prefix, alive) if alive else math.nan
                )
        tables[step.over] = reduced
        rows = list(reduced.items())

    top = tables[formula.steps[0].over].get((), math.nan)
    value = math.nan if missing else top
    return Evaluation(
        value=value, tables=tables, missing=missing, components=components
    )
