"""Supervised cell execution: deadlines, heartbeats, seeded backoff,
poison quarantine.

The grid scheduler and the sweep orchestrator retry failing cells, but
three machine realities defeat plain retries:

* a **hung** worker produces neither a result nor an exception — an
  unsupervised pool waits on it forever;
* a worker that is *running* but past any useful wall-clock budget
  starves the rest of the campaign;
* a **deterministically** failing cell burns its retries and then
  aborts the whole grid with one exception, throwing away every
  healthy cell's work.

This module runs each attempt of a cell in its own killable worker
process and supervises it from the parent:

* **Deadlines** — a wall-clock budget per attempt
  (:attr:`SupervisionPolicy.deadline_s`); an overrunning worker is
  killed and the attempt counted as ``deadline``.
* **Heartbeats** — the worker pings its pipe every
  :attr:`~SupervisionPolicy.heartbeat_interval_s`; silence past
  :attr:`~SupervisionPolicy.heartbeat_timeout_s` means the worker is
  wedged before real work started (or its interpreter died without
  closing the pipe) and it is killed as ``heartbeat-lost``.
* **Seeded exponential backoff with jitter** — the delay before
  attempt *k* of a cell is :func:`backoff_delay`, derived with
  SplitMix64 from the cell *fingerprint* and the attempt index.  Retry
  timing is therefore a pure function of the run's identity: a
  re-executed campaign backs off identically, so "reproducible
  protocol" (Hunold & Carpen-Amarie) extends to the failure path.
* **Poison quarantine** — after
  :attr:`~SupervisionPolicy.max_failures` attempts the cell is
  recorded as a :class:`PoisonRecord` (kind, message and traceback of
  every attempt) and the campaign *continues*.  The caller degrades
  the grid's validity instead of aborting it; one poisoned cell no
  longer costs 27 healthy ones.

Attempt failures are classified as ``crash`` (worker exited without a
result), ``deadline``, ``heartbeat-lost``, ``error`` (worker raised)
or ``corrupt-return`` (the payload does not parse as a result
envelope), so the quarantine stub says *how* a cell died, not only
that it did.
"""

from __future__ import annotations

import heapq
import threading
import time
import traceback
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _connection_wait
from typing import Any

__all__ = [
    "AttemptFailure",
    "FAILURE_KINDS",
    "PoisonRecord",
    "SupervisedRun",
    "SupervisedTask",
    "SupervisionPolicy",
    "backoff_delay",
    "supervise",
]

#: every way one attempt can fail, as recorded in poison provenance
FAILURE_KINDS = ("crash", "deadline", "heartbeat-lost", "error", "corrupt-return")

_MASK64 = (1 << 64) - 1


def _mix64(seed: int, seq: int) -> int:
    """SplitMix64 avalanche of (seed, seq) — same mix as the engine's
    tie-shuffle keys, reimplemented here so the supervisor stays
    import-light (workers re-import this module on every attempt)."""
    z = (seq + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def backoff_delay(
    fingerprint: str, attempt: int, base_s: float, cap_s: float = 60.0
) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of a cell.

    Exponential (``base * 2**(attempt-1)``, capped at ``cap_s``) with
    deterministic jitter in ``[0.5, 1.0)`` of the nominal delay.  The
    jitter stream is SplitMix64 keyed by the cell *fingerprint* and the
    attempt index — two cells retrying simultaneously de-synchronize
    (no thundering herd on a shared resource), yet every re-execution
    of the same campaign backs off with the exact same timing.
    """
    if base_s <= 0.0:
        return 0.0
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    nominal = min(cap_s, base_s * (2.0 ** (attempt - 1)))
    seed = int(fingerprint[:16] or "0", 16)
    unit = _mix64(seed, attempt) / 2.0**64
    return nominal * (0.5 + 0.5 * unit)


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard to push a cell before giving up on it.

    ``deadline_s``
        wall-clock budget of one *attempt*; ``None`` disables the
        deadline (crash/heartbeat detection still applies).
    ``heartbeat_interval_s`` / ``heartbeat_timeout_s``
        workers ping every ``interval``; no ping for ``timeout``
        seconds kills the worker.  ``None`` timeout disables the
        check.  The timeout must comfortably exceed the interval.
    ``max_failures``
        total attempts a cell gets before it is poisoned (≥ 1).
    ``backoff_base_s`` / ``backoff_cap_s``
        parameters of :func:`backoff_delay`; base 0 retries
        immediately.
    """

    deadline_s: float | None = None
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float | None = None
    max_failures: int = 3
    backoff_base_s: float = 0.0
    backoff_cap_s: float = 60.0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.heartbeat_timeout_s is not None:
            if self.heartbeat_timeout_s <= 0:
                raise ValueError("heartbeat_timeout_s must be positive (or None)")
            if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
                raise ValueError(
                    "heartbeat_timeout_s must exceed heartbeat_interval_s"
                )
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s <= 0:
            raise ValueError("backoff parameters must be non-negative / positive")


@dataclass(frozen=True)
class SupervisedTask:
    """One cell to execute under supervision.

    ``key`` addresses results and poison records (callers use the cell
    fingerprint); the remaining fields are the picklable cell identity
    the worker re-resolves in-process.
    """

    key: str
    benchmark: str
    machine: str
    nprocs: int
    config: Any


@dataclass(frozen=True)
class AttemptFailure:
    """Provenance of one failed attempt."""

    kind: str
    message: str
    worker_traceback: str = ""
    elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "worker_traceback": self.worker_traceback,
            "elapsed_s": self.elapsed_s,
        }

    def to_export_dict(self) -> dict[str, Any]:
        """Serialization for *exported result trees*: content only.

        ``elapsed_s`` is wall-clock-derived — fine in the journal's
        local poison stubs, but a result export must be a pure
        function of the run's inputs, so the timing is dropped here.
        """
        return {
            "kind": self.kind,
            "message": self.message,
            "worker_traceback": self.worker_traceback,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "AttemptFailure":
        return cls(
            kind=d["kind"],
            message=d.get("message", ""),
            worker_traceback=d.get("worker_traceback", ""),
            elapsed_s=float(d.get("elapsed_s", 0.0)),
        )


@dataclass(frozen=True)
class PoisonRecord:
    """A cell that exhausted every attempt: its full failure history.

    This is what lands in the journal stub and the store quarantine
    sidecar instead of a result — enough provenance (per-attempt kind,
    message, last traceback) to diagnose the cell offline while the
    rest of the grid completes.
    """

    key: str
    benchmark: str
    machine: str
    nprocs: int
    attempts: tuple[AttemptFailure, ...]

    @property
    def last(self) -> AttemptFailure:
        return self.attempts[-1]

    def describe(self) -> str:
        kinds = ",".join(a.kind for a in self.attempts)
        return (
            f"{self.benchmark} on {self.machine!r} at nprocs={self.nprocs}: "
            f"poisoned after {len(self.attempts)} attempt(s) [{kinds}] — "
            f"{self.last.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "poisoned": True,
            "key": self.key,
            "benchmark": self.benchmark,
            "machine": self.machine,
            "nprocs": self.nprocs,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    def to_export_dict(self) -> dict[str, Any]:
        """Deterministic form for exported result trees.

        Same shape as :meth:`to_dict` minus per-attempt wall timings,
        so two exports of the same degraded outcome are byte-identical.
        """
        return {
            "poisoned": True,
            "key": self.key,
            "benchmark": self.benchmark,
            "machine": self.machine,
            "nprocs": self.nprocs,
            "attempts": [a.to_export_dict() for a in self.attempts],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "PoisonRecord":
        return cls(
            key=d["key"],
            benchmark=d["benchmark"],
            machine=d["machine"],
            nprocs=int(d["nprocs"]),
            attempts=tuple(AttemptFailure.from_dict(a) for a in d.get("attempts", [])),
        )


@dataclass(frozen=True)
class SupervisedRun:
    """What a supervised campaign produced: payloads and poisons."""

    #: task key -> envelope payload dict (validated to parse)
    results: dict[str, dict[str, Any]] = field(default_factory=dict)
    poisoned: tuple[PoisonRecord, ...] = ()
    #: attempts actually launched (observability / overhead tests)
    attempts: int = 0


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _supervised_entry(
    conn: Connection,
    benchmark: str,
    machine: str,
    nprocs: int,
    config: Any,
    heartbeat_interval_s: float,
) -> None:
    """Worker body of one attempt: heartbeat thread + the cell itself.

    The chaos checkpoint runs *before* the heartbeat thread starts, so
    an injected hang is silent from the very first beat — exercising
    heartbeat-loss detection rather than only the deadline.  (A daemon
    thread would keep beating through a pure-Python hang: the GIL
    still timeslices it.)
    """
    from repro.runtime import chaos

    # the beat thread and the worker body share one pipe: every send
    # takes this lock so a beat can never interleave a large payload
    send_lock = threading.Lock()
    stop = threading.Event()
    try:
        chaos.on_cell(chaos.cell_key(benchmark, machine, nprocs))

        def beat() -> None:
            while not stop.wait(heartbeat_interval_s):
                try:
                    with send_lock:
                        conn.send(("beat",))
                except (OSError, ValueError):  # repro-lint: disable=REPRO014 -- pipe gone means the supervisor already recorded this attempt; the beat thread just stops
                    return

        threading.Thread(target=beat, daemon=True).start()

        from repro.machines import get_machine
        from repro.runtime.envelope import envelope_for
        from repro.runtime.sweep import adapter_for

        result = adapter_for(benchmark).run(get_machine(machine), nprocs, config)
        payload = chaos.corrupt_payload(
            envelope_for(result, machine=machine).to_dict()
        )
        stop.set()
        with send_lock:
            conn.send(("ok", payload))
    except BaseException as exc:  # repro-lint: disable=REPRO005 -- the failure is shipped to the supervising parent, which records it as an AttemptFailure
        stop.set()
        try:
            with send_lock:
                conn.send(
                    ("err", type(exc).__name__, str(exc), traceback.format_exc())
                )
        except (OSError, ValueError):  # repro-lint: disable=REPRO014 -- pipe gone: the supervisor sees EOF and records a crash failure instead
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def _now() -> float:
    """The supervisor's wall clock.

    Supervision is *about* real time (deadlines, heartbeat silence),
    so this is the one place in the runtime that legitimately reads
    the host clock; none of it feeds a result value.
    """
    return time.monotonic()  # repro-lint: disable=REPRO002 -- deadlines/heartbeats measure real wall time by definition; never enters a result


class _Worker:
    """Parent-side state of one in-flight attempt."""

    __slots__ = ("task", "attempt", "process", "conn", "started", "last_beat")

    def __init__(
        self, task: SupervisedTask, attempt: int, process: Any, conn: Connection
    ) -> None:
        self.task = task
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = _now()
        self.last_beat = self.started


def _validate_payload(payload: Any) -> str | None:
    """``None`` when the payload parses as a result envelope, else why not."""
    from repro.runtime.envelope import ResultEnvelope, SchemaVersionError

    if not isinstance(payload, dict):
        return f"worker returned {type(payload).__name__}, not an envelope dict"
    try:
        ResultEnvelope.from_dict(payload)
    except (SchemaVersionError, KeyError, TypeError, ValueError) as exc:
        return f"returned payload does not parse as an envelope: {exc}"
    return None


def supervise(
    tasks: Sequence[SupervisedTask],
    policy: SupervisionPolicy,
    jobs: int = 1,
) -> SupervisedRun:
    """Run every task to completion or quarantine; always terminates.

    Up to ``jobs`` attempts run concurrently, each in its own process.
    The wall-clock bound is structural: every attempt either returns,
    raises, or is killed at its deadline/heartbeat threshold, and each
    cell gets at most ``policy.max_failures`` attempts — so the whole
    campaign finishes within roughly
    ``ceil(cells / jobs) * max_failures * (deadline + backoff_cap)``
    regardless of what the workers do.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    seen: set[str] = set()
    queue: deque[tuple[SupervisedTask, int]] = deque()
    for task in tasks:
        if task.key in seen:
            raise ValueError(f"duplicate supervised task key {task.key!r}")
        seen.add(task.key)
        queue.append((task, 1))

    ctx = get_context()
    #: (ready_at, tie, task, attempt) — retries waiting out their backoff
    delayed: list[tuple[float, int, SupervisedTask, int]] = []
    tie = 0
    running: list[_Worker] = []
    results: dict[str, dict[str, Any]] = {}
    history: dict[str, list[AttemptFailure]] = {}
    poisons: list[PoisonRecord] = []
    launched = 0

    def launch(task: SupervisedTask, attempt: int) -> None:
        nonlocal launched
        recv_end, send_end = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_supervised_entry,
            args=(
                send_end,
                task.benchmark,
                task.machine,
                task.nprocs,
                task.config,
                policy.heartbeat_interval_s,
            ),
            daemon=True,
        )
        process.start()
        send_end.close()
        running.append(_Worker(task, attempt, process, recv_end))
        launched += 1

    def reap(worker: _Worker, kill: bool = False) -> None:
        running.remove(worker)
        if kill and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
        worker.process.join(timeout=5.0)
        worker.conn.close()
        worker.process.close()

    def failed(worker: _Worker, failure: AttemptFailure, kill: bool = False) -> None:
        nonlocal tie
        reap(worker, kill=kill)
        attempts = history.setdefault(worker.task.key, [])
        attempts.append(failure)
        if len(attempts) >= policy.max_failures:
            poisons.append(
                PoisonRecord(
                    key=worker.task.key,
                    benchmark=worker.task.benchmark,
                    machine=worker.task.machine,
                    nprocs=worker.task.nprocs,
                    attempts=tuple(attempts),
                )
            )
            return
        delay = backoff_delay(
            worker.task.key,
            len(attempts),
            policy.backoff_base_s,
            policy.backoff_cap_s,
        )
        tie += 1
        heapq.heappush(
            delayed, (_now() + delay, tie, worker.task, worker.attempt + 1)
        )

    def succeeded(worker: _Worker, payload: dict[str, Any]) -> None:
        reap(worker)
        results[worker.task.key] = payload

    while queue or delayed or running:
        now = _now()
        while delayed and delayed[0][0] <= now:
            _, _, task, attempt = heapq.heappop(delayed)
            queue.append((task, attempt))
        while queue and len(running) < jobs:
            task, attempt = queue.popleft()
            launch(task, attempt)
        if not running:
            if delayed:
                time.sleep(max(0.0, delayed[0][0] - _now()))
            continue

        # sleep until the earliest supervision event can possibly fire
        deadlines: list[float] = []
        for w in running:
            if policy.deadline_s is not None:
                deadlines.append(w.started + policy.deadline_s)
            if policy.heartbeat_timeout_s is not None:
                deadlines.append(w.last_beat + policy.heartbeat_timeout_s)
        if delayed and len(running) < jobs:
            deadlines.append(delayed[0][0])
        timeout = max(0.0, min(deadlines) - _now()) if deadlines else None
        waitables: list[Any] = [w.conn for w in running]
        waitables += [w.process.sentinel for w in running]
        _connection_wait(waitables, timeout)

        now = _now()
        for worker in list(running):
            resolved = False
            eof = False
            try:
                while worker.conn.poll():
                    message = worker.conn.recv()
                    if message[0] == "beat":
                        worker.last_beat = now
                    elif message[0] == "ok":
                        payload = message[1]
                        problem = _validate_payload(payload)
                        if problem is None:
                            succeeded(worker, payload)
                        else:
                            failed(
                                worker,
                                AttemptFailure(
                                    kind="corrupt-return",
                                    message=problem,
                                    elapsed_s=now - worker.started,
                                ),
                                kill=True,
                            )
                        resolved = True
                        break
                    else:  # ("err", type-name, message, traceback)
                        failed(
                            worker,
                            AttemptFailure(
                                kind="error",
                                message=f"{message[1]}: {message[2]}",
                                worker_traceback=message[3],
                                elapsed_s=now - worker.started,
                            ),
                            kill=True,
                        )
                        resolved = True
                        break
            except (EOFError, OSError):
                eof = True
            if resolved:
                continue
            if eof or not worker.process.is_alive():
                worker.process.join(timeout=5.0)
                code = worker.process.exitcode
                failed(
                    worker,
                    AttemptFailure(
                        kind="crash",
                        message=(
                            f"worker exited with code {code} before "
                            "returning a result"
                        ),
                        elapsed_s=now - worker.started,
                    ),
                )
                continue
            if policy.deadline_s is not None and now - worker.started > policy.deadline_s:
                failed(
                    worker,
                    AttemptFailure(
                        kind="deadline",
                        message=(
                            f"attempt exceeded its {policy.deadline_s:g}s "
                            "wall-clock deadline"
                        ),
                        elapsed_s=now - worker.started,
                    ),
                    kill=True,
                )
                continue
            if (
                policy.heartbeat_timeout_s is not None
                and now - worker.last_beat > policy.heartbeat_timeout_s
            ):
                failed(
                    worker,
                    AttemptFailure(
                        kind="heartbeat-lost",
                        # the message lands in exported result trees, so it
                        # must not embed the measured (wall-clock) silence;
                        # elapsed_s carries the timing for local diagnostics
                        message=(
                            "heartbeat silence exceeded the "
                            f"{policy.heartbeat_timeout_s:g}s threshold"
                        ),
                        elapsed_s=now - worker.started,
                    ),
                    kill=True,
                )

    poisons.sort(key=lambda p: (p.benchmark, p.machine, p.nprocs))
    return SupervisedRun(
        results=results, poisoned=tuple(poisons), attempts=launched
    )
