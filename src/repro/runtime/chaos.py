"""Deterministic, env-gated chaos adversaries for supervision tests.

Long benchmark campaigns die of machine realities — workers crash,
hang, return garbage, disks fill — and a supervision layer is only
trustworthy if those realities can be *rehearsed* on demand.  This
module injects them deterministically:

``REPRO_CHAOS_CRASH=N[,M...]``
    hard-kill the worker (``os._exit``) on the N-th (M-th, ...)
    executed cell — the SIGKILL'd-runner reality.  Only enable when
    cells run in worker processes; a serial in-process run would kill
    the parent.
``REPRO_CHAOS_HANG=N[,M...]``
    freeze on the N-th executed cell: the worker stops responding
    (no heartbeats, no result) and sleeps forever — the hung-node
    reality that stalls an unsupervised campaign indefinitely.
``REPRO_CHAOS_POISON=b_eff:t3e:4``
    raise :class:`ChaosError` on *every* attempt of the matching
    cell(s) (comma-separated ``benchmark:machine:nprocs`` keys) — the
    reproducible-failure reality that must end in quarantine, not an
    aborted grid.
``REPRO_CHAOS_CORRUPT=N[,M...]``
    mangle the N-th returned result payload so it no longer parses as
    a valid envelope — the corrupted-IPC / bitrot-in-flight reality.
``REPRO_CHAOS_ENOSPC=N[,M...]``
    make the N-th :func:`~repro.reporting.export.write_json_atomic`
    call fail with ``ENOSPC`` mid-write — the disk-full reality the
    atomic-write temp-file cleanup contract is about.

Counting is shared across every process of a campaign through a
lock-protected counter file under ``REPRO_CHAOS_DIR`` (required for
the ordinal adversaries), so "the N-th cell" means the N-th cell the
whole campaign executes, surviving worker restarts.  The *number* of
injected faults is therefore exact and reproducible; with serial
dispatch the faulted cell is deterministic too.  All checks are
no-ops (one dict lookup) when the environment is clean, so production
runs pay nothing.

This module must stay a leaf (stdlib imports only): the atomic-write
hook in ``reporting.export`` imports it, and everything imports that.
"""

from __future__ import annotations

import errno
import os
import pathlib
import time

ENV_DIR = "REPRO_CHAOS_DIR"
ENV_CRASH = "REPRO_CHAOS_CRASH"
ENV_HANG = "REPRO_CHAOS_HANG"
ENV_POISON = "REPRO_CHAOS_POISON"
ENV_CORRUPT = "REPRO_CHAOS_CORRUPT"
ENV_ENOSPC = "REPRO_CHAOS_ENOSPC"

#: every adversary variable (for docs and tests)
ENV_VARS = (ENV_CRASH, ENV_HANG, ENV_POISON, ENV_CORRUPT, ENV_ENOSPC)

#: exit status of a chaos-crashed worker (distinctive in post-mortems)
CRASH_EXIT_CODE = 117

#: marker planted in a corrupted payload (asserted by the chaos suite:
#: a corrupt return must never be served as a result)
CORRUPT_MARKER = "chaos-corrupted-return"


class ChaosError(RuntimeError):
    """The failure a poison adversary injects into every attempt."""


def active() -> bool:
    """Is any chaos adversary armed in this environment?"""
    return any(os.environ.get(var) for var in ENV_VARS)


def _ordinals(var: str) -> frozenset[int]:
    """The set of 1-based ordinals an adversary is armed for."""
    raw = os.environ.get(var, "")
    if not raw:
        return frozenset()
    try:
        return frozenset(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise ValueError(f"{var} must be comma-separated integers, got {raw!r}") from None


#: per-process fallback counters (used only when ``REPRO_CHAOS_DIR`` is
#: unset; fine for single-process adversaries like ENOSPC)
_LOCAL_COUNTS: dict[str, int] = {}


def _next(counter: str) -> int:
    """Increment and return the campaign-wide 1-based counter.

    With ``REPRO_CHAOS_DIR`` set the count lives in a lock-protected
    file shared by every process of the campaign (workers inherit the
    environment), so it survives worker crashes and restarts; without
    it the count is process-local.
    """
    root = os.environ.get(ENV_DIR)
    if not root:
        _LOCAL_COUNTS[counter] = _LOCAL_COUNTS.get(counter, 0) + 1
        return _LOCAL_COUNTS[counter]
    import fcntl

    path = pathlib.Path(root) / f"{counter}.count"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+") as fh:  # repro-lint: disable=REPRO008 -- flocked fault-injection counter, not a result; the lock is the atomicity mechanism
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        fh.seek(0)
        text = fh.read().strip()
        value = int(text) + 1 if text else 1
        fh.seek(0)
        fh.truncate()
        fh.write(str(value))
        fh.flush()
        os.fsync(fh.fileno())
    return value


def cell_key(benchmark: str, machine: str, nprocs: int) -> str:
    """The human-addressable cell key poison adversaries match on."""
    return f"{benchmark}:{machine}:{nprocs}"


def on_cell(key: str) -> None:
    """Adversary checkpoint at the start of one cell execution.

    Called by every worker entry (supervised or pooled) with the
    cell's :func:`cell_key`.  May raise :class:`ChaosError` (poison),
    hard-exit the process (crash), or never return (hang).
    """
    if not active():
        return
    poison = os.environ.get(ENV_POISON, "")
    if poison and key in {part.strip() for part in poison.split(",")}:
        raise ChaosError(f"chaos poison armed for cell {key}")
    if not (os.environ.get(ENV_CRASH) or os.environ.get(ENV_HANG)):
        return
    n = _next("cells")
    if n in _ordinals(ENV_CRASH):
        os._exit(CRASH_EXIT_CODE)
    if n in _ordinals(ENV_HANG):
        # freeze: no result, no heartbeat, no exit — exactly what a
        # wedged node looks like to the supervisor
        while True:
            time.sleep(3600.0)


def corrupt_payload(payload: dict) -> dict:
    """Maybe replace a worker's returned payload with garbage.

    The mangled payload drops the envelope schema, so the parent-side
    validation rejects it — the attempt fails accountably instead of a
    silently-wrong number entering the journal.
    """
    if not os.environ.get(ENV_CORRUPT):
        return payload
    if _next("returns") in _ordinals(ENV_CORRUPT):
        return {CORRUPT_MARKER: True}
    return payload


def check_write() -> None:
    """Adversary checkpoint inside the atomic JSON writer.

    Raises ``OSError(ENOSPC)`` on armed write ordinals, after the temp
    file exists but before it is moved into place — the worst moment a
    full disk can strike an atomic write.
    """
    if not os.environ.get(ENV_ENOSPC):
        return
    if _next("writes") in _ordinals(ENV_ENOSPC):
        raise OSError(errno.ENOSPC, "chaos: injected ENOSPC on atomic write")
