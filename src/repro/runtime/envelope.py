"""Versioned result envelopes: one record shape for both benchmarks.

A :class:`ResultEnvelope` is the canonical machine-readable form of a
benchmark result: the flat legacy value fields, the
:class:`~repro.faults.validity.RunValidity`, a provenance block
(machine, engine mode, fault seed) and deterministic timings (sums of
*simulated* seconds, so envelopes — and hence journals and golden
files — stay bit-identical run to run).  ``reporting.export`` and the
sweep journal both serialize through this module.

The flat dict layout of schema 2 is preserved verbatim (downstream
tooling reads ``payload["b_eff"]`` etc.); schema 3 adds the
``provenance`` and ``timings`` blocks.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.faults.validity import VALID, RunValidity

if TYPE_CHECKING:
    from repro.beff.benchmark import BeffResult
    from repro.beffio.benchmark import BeffIOResult

#: schema version written into every envelope (and hence every export)
ENVELOPE_SCHEMA = 3


class SchemaVersionError(ValueError):
    """A payload was written under a different envelope schema."""

    def __init__(self, found: object, expected: int = ENVELOPE_SCHEMA) -> None:
        super().__init__(
            f"result payload has schema {found!r}, this build reads schema "
            f"{expected}; re-export the result with a matching version"
        )
        self.found = found
        self.expected = expected


@dataclass(frozen=True)
class ResultEnvelope:
    """A benchmark result ready for export or journaling.

    ``values`` holds the benchmark-specific flat fields (aggregates
    plus raw measurement tables) exactly as schema 2 spelled them;
    ``provenance`` names what produced them (machine, engine mode,
    fault seed, process count); ``timings`` are simulated-time sums —
    deterministic by construction, so round trips are bit-identical.
    """

    benchmark: str
    values: Mapping[str, Any]
    validity: RunValidity = VALID
    provenance: Mapping[str, Any] = field(default_factory=dict)
    timings: Mapping[str, float] = field(default_factory=dict)
    schema: int = ENVELOPE_SCHEMA

    def to_dict(self) -> dict:
        """The flat JSON payload (legacy keys + provenance + timings)."""
        return {
            "schema": self.schema,
            "benchmark": self.benchmark,
            "machine": self.provenance.get("machine"),
            **dict(self.values),
            "validity": self.validity.to_dict(),
            "provenance": dict(self.provenance),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ResultEnvelope":
        """Rebuild an envelope from :meth:`to_dict` output.

        Raises :class:`SchemaVersionError` for any other schema —
        silently reinterpreting an old payload is how resumed sweeps
        mix incompatible results.
        """
        if d.get("schema") != ENVELOPE_SCHEMA:
            raise SchemaVersionError(d.get("schema"))
        values = {
            k: v
            for k, v in d.items()
            if k not in ("schema", "benchmark", "machine", "validity",
                         "provenance", "timings")
        }
        return cls(
            benchmark=d["benchmark"],
            values=values,
            validity=RunValidity.from_dict(d["validity"]) if "validity" in d else VALID,
            provenance=dict(d.get("provenance", {})),
            timings=dict(d.get("timings", {})),
        )


# ---------------------------------------------------------------------------
# building envelopes from result objects
# ---------------------------------------------------------------------------


def _beff_values(result: "BeffResult") -> dict:
    return {
        "nprocs": result.nprocs,
        "memory_per_proc": result.memory_per_proc,
        "lmax": result.lmax,
        "backend": result.backend,
        "sizes": list(result.sizes),
        "b_eff": result.b_eff,
        "b_eff_per_proc": result.b_eff_per_proc,
        "b_eff_at_lmax": result.b_eff_at_lmax,
        "b_eff_at_lmax_per_proc": result.b_eff_at_lmax_per_proc,
        "ring_only_at_lmax": result.ring_only_at_lmax,
        "logavg_ring": result.logavg_ring,
        "logavg_random": result.logavg_random,
        "per_pattern": dict(result.per_pattern),
        "records": [asdict(r) for r in result.records],
    }


def _beffio_values(result: "BeffIOResult") -> dict:
    return {
        "nprocs": result.nprocs,
        "T": result.T,
        "mpart": result.mpart,
        "segment_size": result.segment_size,
        "b_eff_io": result.b_eff_io,
        "method_values": dict(result.method_values),
        "type_results": [
            {
                "method": t.method,
                "pattern_type": t.pattern_type,
                "nbytes": t.nbytes,
                "time": t.time,
                "reps": t.reps,
                "bandwidth": t.bandwidth,
            }
            for t in result.type_results
        ],
        "pattern_runs": [
            {**asdict(r), "bandwidth": r.bandwidth} for r in result.pattern_runs
        ],
    }


def envelope_for(
    result: "BeffResult | BeffIOResult", machine: str | None = None
) -> ResultEnvelope:
    """Wrap either benchmark's result object in an envelope."""
    from repro.beff.benchmark import BeffResult
    from repro.beffio.benchmark import BeffIOResult

    if isinstance(result, BeffResult):
        return ResultEnvelope(
            benchmark="b_eff",
            values=_beff_values(result),
            validity=result.validity,
            provenance={
                "machine": machine,
                "nprocs": result.nprocs,
                "engine_mode": result.engine_mode,
                "fault_seed": result.fault_seed,
            },
            timings={"measured_s": sum(r.time for r in result.records)},
        )
    if isinstance(result, BeffIOResult):
        return ResultEnvelope(
            benchmark="b_eff_io",
            values=_beffio_values(result),
            validity=result.validity,
            provenance={
                "machine": machine,
                "nprocs": result.nprocs,
                "engine_mode": result.engine_mode,
                "fault_seed": result.fault_seed,
            },
            timings={"measured_s": sum(t.time for t in result.type_results)},
        )
    raise TypeError(f"cannot export {type(result).__name__}")


# ---------------------------------------------------------------------------
# rebuilding result objects from envelopes
# ---------------------------------------------------------------------------


def result_from_envelope(env: ResultEnvelope) -> "BeffResult | BeffIOResult":
    """Rebuild the benchmark result object an envelope was made from.

    Every float survives the JSON round trip bit-exactly (``repr``-
    based serialization), so resumed sweeps and re-exports reproduce
    the original run bit-identically.
    """
    from repro.beff.benchmark import BeffResult
    from repro.beff.measurement import MeasurementRecord
    from repro.beffio.analysis import TypeResult
    from repro.beffio.benchmark import BeffIOResult, PatternRun

    d = dict(env.values)
    prov = env.provenance
    if env.benchmark == "b_eff":
        records = [MeasurementRecord(**r) for r in d["records"]]
        return BeffResult(
            nprocs=d["nprocs"],
            memory_per_proc=d["memory_per_proc"],
            lmax=d["lmax"],
            sizes=list(d["sizes"]),
            backend=d["backend"],
            records=records,
            b_eff=d["b_eff"],
            b_eff_at_lmax=d["b_eff_at_lmax"],
            ring_only_at_lmax=d["ring_only_at_lmax"],
            per_pattern=dict(d["per_pattern"]),
            logavg_ring=d["logavg_ring"],
            logavg_random=d["logavg_random"],
            validity=env.validity,
            fault_seed=prov.get("fault_seed"),
            # pre-FF envelopes recorded the backend as the engine mode
            engine_mode=prov.get("engine_mode", d["backend"]),
        )
    if env.benchmark == "b_eff_io":
        type_results = [
            TypeResult(
                method=t["method"],
                pattern_type=t["pattern_type"],
                nbytes=t["nbytes"],
                time=t["time"],
                reps=t["reps"],
            )
            for t in d["type_results"]
        ]
        pattern_runs = []
        for r in d["pattern_runs"]:
            fields = dict(r)
            fields.pop("bandwidth", None)  # derived property, not a field
            pattern_runs.append(PatternRun(**fields))
        return BeffIOResult(
            nprocs=d["nprocs"],
            T=d["T"],
            mpart=d["mpart"],
            segment_size=d["segment_size"],
            pattern_runs=pattern_runs,
            type_results=type_results,
            method_values=dict(d["method_values"]),
            b_eff_io=d["b_eff_io"],
            validity=env.validity,
            engine_mode=prov.get("engine_mode", "fast"),
            fault_seed=prov.get("fault_seed"),
        )
    raise ValueError(f"unknown benchmark {env.benchmark!r}")
