"""The paper's aggregation formulas, spelled as reduction trees.

These are the only copies of the b_eff and b_eff_io aggregation
structure in the codebase; ``repro.beff.analysis`` and
``repro.beffio.analysis`` evaluate these trees instead of hand-rolling
the folds.  Axes are ordered outermost first and leaves carry one key
element per axis:

* b_eff leaves: ``(kind, pattern, size, method, repetition)`` →
  bandwidth;
* b_eff_io leaves: ``(method, type)`` → pattern-type bandwidth.
"""

from __future__ import annotations

from repro.runtime.reduce import Formula, Reduce

#: b_eff_io access methods in canonical (schedule and fold) order
ACCESS_METHODS: tuple[str, ...] = ("write", "rewrite", "read")

#: 25 % initial write + 25 % rewrite + 50 % read (paper Sec. 5.1)
METHOD_WEIGHTS: dict[str, float] = {"write": 1.0, "rewrite": 1.0, "read": 2.0}

#: the scattering pattern type (type 0) counts twice in a method value
SCATTER_TYPE_WEIGHT: float = 2.0

#: b_eff pattern kinds in canonical order (each weighted equally)
BEFF_KINDS: tuple[str, ...] = ("ring", "random")


def beff_formula(num_sizes: int) -> Formula:
    """b_eff (paper Sec. 4): logavg(kinds) ∘ logavg(patterns) ∘
    mean(21 sizes) ∘ max(methods) ∘ max(repetitions).

    The pattern step is ``loose`` under partial evaluation: the
    per-kind logavgs stay best-effort over surviving patterns even
    when the top-level number is already lost.
    """
    return Formula(
        "b_eff",
        (
            Reduce("logavg", over="kind", require=BEFF_KINDS),
            Reduce("logavg", over="pattern", partial="loose"),
            Reduce("mean", over="size", count=num_sizes),
            Reduce("max", over="method"),
            Reduce("max", over="repetition"),
        ),
    )


def beff_at_lmax_formula() -> Formula:
    """The Table 1 companion columns: same two-step logavg, evaluated
    only at the maximum message size (the size axis is filtered away
    before evaluation).  Strict under partial evaluation — a pattern
    with no L_max measurement voids its kind's column."""
    return Formula(
        "b_eff_at_lmax",
        (
            Reduce("logavg", over="kind", require=BEFF_KINDS),
            Reduce("logavg", over="pattern"),
            Reduce("max", over="method"),
            Reduce("max", over="repetition"),
        ),
    )


def beffio_formula() -> Formula:
    """b_eff_io for one partition (paper Sec. 5.1): 1/1/2-weighted
    mean over access methods of the type averages with the scattering
    type double-weighted."""
    return Formula(
        "b_eff_io",
        (
            Reduce(
                "weighted",
                over="method",
                weights=METHOD_WEIGHTS,
                require=ACCESS_METHODS,
            ),
            Reduce(
                "weighted",
                over="type",
                weights={0: SCATTER_TYPE_WEIGHT},
                default_weight=1.0,
            ),
        ),
    )


def system_formula() -> Formula:
    """The system-level value: maximum over partitions (invalid —
    NaN — partitions are dropped by the sweep before this step)."""
    return Formula("system_b_eff_io", (Reduce("max", over="partition"),))
