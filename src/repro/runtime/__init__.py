"""The shared benchmark runtime ("run-spine").

b_eff and b_eff_io are two instances of the same idea — time-driven
measurement followed by a fixed aggregation formula producing a single
number — and this package is the one spine both hang on:

* :mod:`repro.runtime.reduce` — declarative reduction trees:
  composable reducers with partial/degraded aggregation handled once;
* :mod:`repro.runtime.formulas` — the paper's aggregation formulas
  expressed as data over those reducers;
* :mod:`repro.runtime.spec` — the typed :class:`RunSpec` (machine,
  nprocs, engine mode, fault plan, config fingerprint) that names one
  benchmark run, and the unified sweep fingerprint;
* :mod:`repro.runtime.envelope` — the versioned
  :class:`ResultEnvelope` (values + validity + provenance + timings)
  every export and journal record round-trips through;
* :mod:`repro.runtime.sweep` — the benchmark-agnostic sweep
  orchestrator: one journal, one retry policy, one worker-error path
  for both benchmarks;
* :mod:`repro.runtime.store` — the persistent content-addressed
  :class:`RunStore` (fingerprint → verified envelope bytes) that makes
  repeated sweeps free;
* :mod:`repro.runtime.scheduler` — the machine-zoo grid executor:
  expansion, in-flight dedupe, store integration and dynamic
  longest-expected-first dispatch.

The per-benchmark entry points (``repro.beff.*``, ``repro.beffio.*``)
remain the public API; they are thin shims over this package.
"""

from repro.runtime.envelope import (
    ENVELOPE_SCHEMA,
    ResultEnvelope,
    SchemaVersionError,
    envelope_for,
    result_from_envelope,
)
from repro.runtime.reduce import (
    Evaluation,
    Formula,
    Reduce,
    arith_mean,
    evaluate,
    evaluate_partial,
    log_avg,
    max_over,
    weighted_avg,
)
from repro.runtime.scheduler import (
    CostModel,
    GridCell,
    GridOutcome,
    GridScheduler,
    GridWorkerError,
    SchedulePlan,
    expand_grid,
    grid_validity,
    plan_schedule,
    run_grid,
)
from repro.runtime.spec import (
    RunSpec,
    cell_fingerprint,
    legacy_sweep_fingerprint,
    run_spec,
    sweep_fingerprint,
)
from repro.runtime.store import (
    RunStore,
    StoreEntry,
    StoreStats,
    canonical_envelope_text,
)
from repro.runtime.supervisor import (
    AttemptFailure,
    PoisonRecord,
    SupervisedRun,
    SupervisedTask,
    SupervisionPolicy,
    backoff_delay,
    supervise,
)
from repro.runtime.sweep import (
    BenchmarkAdapter,
    JournalMismatchError,
    SweepJournal,
    SweepOutcome,
    SweepWorkerError,
    adapter_for,
    run_sweep,
)

__all__ = [
    "ENVELOPE_SCHEMA",
    "ResultEnvelope",
    "SchemaVersionError",
    "envelope_for",
    "result_from_envelope",
    "Evaluation",
    "Formula",
    "Reduce",
    "arith_mean",
    "evaluate",
    "evaluate_partial",
    "log_avg",
    "max_over",
    "weighted_avg",
    "RunSpec",
    "run_spec",
    "cell_fingerprint",
    "legacy_sweep_fingerprint",
    "sweep_fingerprint",
    "RunStore",
    "StoreEntry",
    "StoreStats",
    "canonical_envelope_text",
    "CostModel",
    "GridCell",
    "GridOutcome",
    "GridScheduler",
    "GridWorkerError",
    "SchedulePlan",
    "expand_grid",
    "grid_validity",
    "plan_schedule",
    "run_grid",
    "AttemptFailure",
    "PoisonRecord",
    "SupervisedRun",
    "SupervisedTask",
    "SupervisionPolicy",
    "backoff_delay",
    "supervise",
    "BenchmarkAdapter",
    "JournalMismatchError",
    "SweepJournal",
    "SweepOutcome",
    "SweepWorkerError",
    "adapter_for",
    "run_sweep",
]
