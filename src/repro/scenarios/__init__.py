"""Declarative benchmark scenarios: the grammar and its instances.

See :mod:`repro.scenarios.grammar` for the primitives.  The paper's
two fixed tables are the pinned instances ``paper-beff`` and
``paper-table2``; everything else in the registry is a what-if
variation.  :func:`get_scenario` resolves names for the CLI and the
grid scheduler.
"""

from __future__ import annotations

from repro.scenarios.examples import ALIGNED_STREAMS, OCTET_BLOCKS, PAIRS_VS_ALL
from repro.scenarios.grammar import (
    CommPatternSpec,
    CommScenario,
    ExplicitPlacement,
    ExplicitRings,
    IOPhase,
    IORow,
    IOScenario,
    NaturalPlacement,
    PaperRings,
    RandomPlacement,
    Scenario,
    ScenarioError,
    Size,
    StandardRings,
    scenario_from_dict,
)
from repro.scenarios.paper_beff import PAPER_BEFF
from repro.scenarios.paper_table2 import PAPER_TABLE2

#: every named scenario, paper instances first
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (PAPER_BEFF, PAPER_TABLE2, PAIRS_VS_ALL, OCTET_BLOCKS, ALIGNED_STREAMS)
}


def get_scenario(name: str) -> Scenario:
    """The registered scenario, or a listing error on unknown names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


__all__ = [
    "ALIGNED_STREAMS",
    "OCTET_BLOCKS",
    "PAIRS_VS_ALL",
    "PAPER_BEFF",
    "PAPER_TABLE2",
    "SCENARIOS",
    "CommPatternSpec",
    "CommScenario",
    "ExplicitPlacement",
    "ExplicitRings",
    "IOPhase",
    "IORow",
    "IOScenario",
    "NaturalPlacement",
    "PaperRings",
    "RandomPlacement",
    "Scenario",
    "ScenarioError",
    "Size",
    "StandardRings",
    "get_scenario",
    "scenario_from_dict",
]
