"""The declarative scenario grammar both benchmarks consume.

A *scenario* is a typed, serializable description of a benchmark
workload — the generalization FBench argues for: instead of two fixed
tables (the 36 b_eff communication patterns, the Table 2 I/O rows),
the tables become *instances* of a small grammar of composable
primitives, and what-if variations are new instances rather than new
code.

Two scenario families exist, one per benchmark:

* :class:`CommScenario` — a list of :class:`CommPatternSpec`, each a
  *ring partition* primitive (how the ranks split into rings) plus a
  *placement* primitive (how ring slots map to world ranks).  It
  compiles to the :class:`~repro.beff.patterns.CommPattern` objects
  the b_eff schedulers, analytic plans and orbit fast-forward already
  execute.
* :class:`IOScenario` — a list of :class:`IOPhase` (one per pattern
  type), each a ladder of :class:`IORow` chunk accesses with
  time-unit weights, compiling to the
  :class:`~repro.beffio.patterns.IOPattern` rows the b_eff_io
  scheduler executes.  The scenario also owns its *reduction tree*:
  per-type weights feeding :mod:`repro.runtime.formulas`-style
  :class:`~repro.runtime.reduce.Formula` objects, so new scenario
  families define their own aggregation without touching analysis
  code.

Scenarios validate (unique names and numbers, weights summing as
declared, both pattern kinds present), serialize to plain JSON-able
dicts (:meth:`to_dict` / :func:`scenario_from_dict`), and hash into a
stable :meth:`fingerprint` — the hook through which a scenario-driven
:class:`~repro.runtime.spec.RunSpec` gets its own content address in
the result store and the grid scheduler.

Every size in the grammar is a :class:`Size` expression so machine-
dependent chunk sizes (the M_PART rule) resolve per machine at
compile time, exactly like the paper's table.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Union

from repro.beff.rings import NUM_RING_PATTERNS, ring_pattern_sizes
from repro.runtime.formulas import ACCESS_METHODS, METHOD_WEIGHTS, beff_formula
from repro.runtime.reduce import Formula, Reduce

if TYPE_CHECKING:
    from repro.beff.patterns import CommPattern
    from repro.beffio.patterns import IOPattern
    from repro.sim.randomness import RandomStreams

#: serialization schema of scenario dicts (bumped on layout changes)
SCENARIO_SCHEMA = 1


class ScenarioError(ValueError):
    """A scenario failed validation or compilation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


# ---------------------------------------------------------------------------
# ring-partition primitives (the b_eff side)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PaperRings:
    """The paper's ring_numbers.c rule for ring pattern 1..6."""

    pattern: int
    rule: str = "paper"

    def __post_init__(self) -> None:
        _require(self.rule == "paper", f"PaperRings rule must be 'paper', got {self.rule!r}")
        _require(
            1 <= self.pattern <= NUM_RING_PATTERNS,
            f"paper ring pattern must be 1..{NUM_RING_PATTERNS}, got {self.pattern}",
        )

    def sizes(self, nprocs: int) -> list[int]:
        return ring_pattern_sizes(nprocs, self.pattern)


@dataclass(frozen=True)
class StandardRings:
    """k = round(n / standard) nearly-equal rings, none below ``min_ring``."""

    standard: int
    min_ring: int = 3
    rule: str = "standard"

    def __post_init__(self) -> None:
        _require(self.rule == "standard", f"StandardRings rule must be 'standard', got {self.rule!r}")
        _require(self.standard >= 2, "standard ring size must be >= 2")
        _require(self.min_ring >= 2, "min_ring must be >= 2 (a ring needs two members)")

    def sizes(self, nprocs: int) -> list[int]:
        k = max(1, round(nprocs / self.standard))
        while k > 1 and nprocs // k < self.min_ring:
            k -= 1
        base, rem = divmod(nprocs, k)
        return [base + 1] * rem + [base] * (k - rem)


@dataclass(frozen=True)
class ExplicitRings:
    """Literal ring sizes; they must sum to the compile-time nprocs."""

    ring_sizes: tuple[int, ...]
    rule: str = "explicit"

    def __post_init__(self) -> None:
        _require(self.rule == "explicit", f"ExplicitRings rule must be 'explicit', got {self.rule!r}")
        _require(bool(self.ring_sizes), "ExplicitRings needs at least one ring")
        _require(
            all(s >= 2 for s in self.ring_sizes),
            f"every ring needs >= 2 members, got {self.ring_sizes}",
        )

    def sizes(self, nprocs: int) -> list[int]:
        _require(
            sum(self.ring_sizes) == nprocs,
            f"explicit ring sizes sum to {sum(self.ring_sizes)}, "
            f"but the pattern compiles for {nprocs} processes",
        )
        return list(self.ring_sizes)


RingPartition = Union[PaperRings, StandardRings, ExplicitRings]

_PARTITION_RULES: dict[str, type] = {
    "paper": PaperRings,
    "standard": StandardRings,
    "explicit": ExplicitRings,
}


# ---------------------------------------------------------------------------
# placement primitives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NaturalPlacement:
    """Ranks in natural order: ring neighbors are topology neighbors."""

    order: str = "natural"

    def __post_init__(self) -> None:
        _require(self.order == "natural", f"NaturalPlacement order must be 'natural', got {self.order!r}")

    def permute(self, nprocs: int, streams: "RandomStreams") -> list[int]:
        return list(range(nprocs))


@dataclass(frozen=True)
class RandomPlacement:
    """A seed-deterministic permutation drawn from a named stream.

    ``stream`` is the :class:`~repro.sim.randomness.RandomStreams`
    stream name; the paper's random patterns use
    ``beff.random-pattern-<p>``, and any other name gives an
    independent — but equally reproducible — placement.
    """

    stream: str
    order: str = "random"

    def __post_init__(self) -> None:
        _require(self.order == "random", f"RandomPlacement order must be 'random', got {self.order!r}")
        _require(bool(self.stream), "RandomPlacement needs a stream name")

    def permute(self, nprocs: int, streams: "RandomStreams") -> list[int]:
        return streams.permutation(self.stream, nprocs)


@dataclass(frozen=True)
class ExplicitPlacement:
    """A literal permutation of the world ranks (placement ablations)."""

    permutation: tuple[int, ...]
    order: str = "explicit"

    def __post_init__(self) -> None:
        _require(self.order == "explicit", f"ExplicitPlacement order must be 'explicit', got {self.order!r}")

    def permute(self, nprocs: int, streams: "RandomStreams") -> list[int]:
        _require(
            sorted(self.permutation) == list(range(nprocs)),
            f"explicit placement must permute range({nprocs})",
        )
        return list(self.permutation)


Placement = Union[NaturalPlacement, RandomPlacement, ExplicitPlacement]

_PLACEMENT_ORDERS: dict[str, type] = {
    "natural": NaturalPlacement,
    "random": RandomPlacement,
    "explicit": ExplicitPlacement,
}


# ---------------------------------------------------------------------------
# communication scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CommPatternSpec:
    """One b_eff pattern: a ring partition under a placement."""

    name: str
    partition: RingPartition
    placement: Placement = field(default_factory=NaturalPlacement)

    def __post_init__(self) -> None:
        _require(bool(self.name), "pattern needs a name")

    @property
    def kind(self) -> str:
        """The aggregation kind: natural placement measures ring
        locality, any permuted placement measures placement
        sensitivity (the paper's 'random' family)."""
        return "ring" if isinstance(self.placement, NaturalPlacement) else "random"

    def compile(self, nprocs: int, streams: "RandomStreams") -> "CommPattern":
        from repro.beff.patterns import CommPattern

        sizes = self.partition.sizes(nprocs)
        _require(
            sum(sizes) == nprocs,
            f"pattern {self.name!r}: ring sizes {sizes} do not cover "
            f"{nprocs} processes",
        )
        perm = self.placement.permute(nprocs, streams)
        rings: list[tuple[int, ...]] = []
        start = 0
        for size in sizes:
            rings.append(tuple(perm[i] for i in range(start, start + size)))
            start += size
        return CommPattern(name=self.name, kind=self.kind, rings=tuple(rings))


@dataclass(frozen=True)
class CommScenario:
    """A full b_eff workload: the pattern list the benchmark averages.

    The b_eff formula logavgs the ``ring`` and ``random`` kinds with
    equal weight, so a valid scenario must contain at least one
    pattern of each kind (the per-kind logavgs are otherwise
    undefined).
    """

    name: str
    patterns: tuple[CommPatternSpec, ...]
    description: str = ""
    schema: int = SCENARIO_SCHEMA

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ----------------------------------------------------------

    def validate(self, nprocs: int | None = None) -> None:
        """Structural validation; with ``nprocs`` also compile-time rules."""
        _require(bool(self.name), "scenario needs a name")
        _require(self.schema == SCENARIO_SCHEMA, f"unknown scenario schema {self.schema!r}")
        _require(bool(self.patterns), "scenario needs at least one pattern")
        names = [p.name for p in self.patterns]
        _require(
            len(set(names)) == len(names),
            f"duplicate pattern names in scenario {self.name!r}",
        )
        kinds = {p.kind for p in self.patterns}
        _require(
            kinds >= {"ring", "random"},
            f"scenario {self.name!r} needs both a natural-placement (ring) "
            f"and a permuted-placement (random) pattern for the b_eff "
            f"two-step logavg; got kinds {sorted(kinds)}",
        )
        if nprocs is not None:
            for p in self.patterns:
                sizes = p.partition.sizes(nprocs)
                _require(
                    sum(sizes) == nprocs and all(s >= 2 for s in sizes),
                    f"pattern {p.name!r} partitions {nprocs} ranks as {sizes}",
                )

    # -- compilation ---------------------------------------------------------

    def compile(
        self, nprocs: int, streams: "RandomStreams | None" = None
    ) -> "list[CommPattern]":
        """The scenario as executable :class:`CommPattern` objects.

        Compilation re-checks everything validation can only prove for
        a concrete process count (partition coverage, permutation
        domains, no duplicate ranks — the latter via the
        :class:`CommPattern` constructor itself).
        """
        from repro.sim.randomness import RandomStreams

        self.validate(nprocs)
        streams = streams or RandomStreams()
        return [p.compile(nprocs, streams) for p in self.patterns]

    def formula(self, num_sizes: int) -> Formula:
        """The b_eff reduction tree (fixed: the paper's two-step logavg)."""
        return beff_formula(num_sizes)

    # -- identity ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "grammar": "comm",
            "name": self.name,
            "description": self.description,
            "patterns": [
                {
                    "name": p.name,
                    "partition": _primitive_dict(p.partition),
                    "placement": _primitive_dict(p.placement),
                }
                for p in self.patterns
            ],
        }

    def fingerprint(self) -> str:
        return _fingerprint(self.to_dict())


# ---------------------------------------------------------------------------
# I/O scenario primitives (the b_eff_io side)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Size:
    """A chunk-size expression resolved at compile time.

    ``base`` bytes, or the machine's M_PART when ``mpart`` is set,
    plus ``plus`` bytes (the table's non-wellformed ``+8`` family and
    type 0's odd memory-chunk paddings).
    """

    base: int = 0
    mpart: bool = False
    plus: int = 0

    def __post_init__(self) -> None:
        _require(self.base >= 0, "size base must be >= 0")
        _require(self.plus >= 0, "size padding must be >= 0")
        _require(
            self.mpart or self.base > 0 or self.plus > 0,
            "a fixed size must be positive",
        )
        _require(not (self.mpart and self.base), "M_PART sizes take no base bytes")

    def resolve(self, mpart: int) -> int:
        return (mpart if self.mpart else self.base) + self.plus


@dataclass(frozen=True)
class IORow:
    """One chunk access of a phase: (l, L, U, wellformed) generalized.

    ``memory`` is the contiguous memory chunk per call (the table's
    L); ``None`` means one memory chunk per disk chunk (``L = l``,
    the per-chunk pattern types).  ``fill_segment`` marks the
    size-driven fill rows of the segmented types.
    """

    disk: Size
    memory: Size | None = None
    U: int = 0
    wellformed: bool = True
    fill_segment: bool = False

    def __post_init__(self) -> None:
        _require(self.U >= 0, "time units must be >= 0")
        _require(not (self.fill_segment and self.U), "fill rows are size-driven: U must be 0")


@dataclass(frozen=True)
class IOPhase:
    """All rows of one pattern type, scheduled in order."""

    pattern_type: int
    rows: tuple[IORow, ...]

    def __post_init__(self) -> None:
        _require(0 <= self.pattern_type <= 5, f"bad pattern type {self.pattern_type}")
        _require(bool(self.rows), f"phase type {self.pattern_type} needs rows")


@dataclass(frozen=True)
class IOScenario:
    """A full b_eff_io workload plus its own reduction tree.

    ``sum_u`` is the declared time-unit total: the scheduled time of a
    row is ``T/3 * U / sum_u``, and validation requires the rows to
    actually sum to it (the grammar's "weights sum as declared" rule).
    ``type_weights`` feeds the scenario's aggregation formula — the
    paper's instance double-weights the scattering type 0.
    """

    name: str
    phases: tuple[IOPhase, ...]
    #: phases scheduled *on top of* ``sum_u`` (the paper's Sec. 6
    #: random-access outlook): their rows extend the run by
    #: ``T/3 * U / sum_u`` each without entering the declared total
    extensions: tuple[IOPhase, ...] = ()
    sum_u: int = 64
    #: per-pattern-type weight pairs for the method average (types not
    #: listed weigh 1.0); the paper doubles the scattering type
    type_weights: tuple[tuple[int, float], ...] = ((0, 2.0),)
    #: first pattern number (the paper extension starts at 43)
    number_base: int = 0
    description: str = ""
    schema: int = SCENARIO_SCHEMA

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ----------------------------------------------------------

    def validate(self, memory_per_proc: int | None = None) -> None:
        _require(bool(self.name), "scenario needs a name")
        _require(self.schema == SCENARIO_SCHEMA, f"unknown scenario schema {self.schema!r}")
        _require(bool(self.phases), "scenario needs at least one phase")
        _require(self.sum_u >= 1, "sum_u must be >= 1")
        _require(self.number_base >= 0, "number_base must be >= 0")
        total = sum(row.U for phase in self.phases for row in phase.rows)
        _require(
            total == self.sum_u,
            f"scenario {self.name!r} declares sum_u={self.sum_u} but its "
            f"rows sum to {total}",
        )
        types = [p.pattern_type for p in self.phases]
        _require(
            len(set(types)) == len(types) or types == sorted(types),
            f"scenario {self.name!r}: out-of-order repeated phase types {types}",
        )
        core = set(types)
        _require(
            all(p.pattern_type not in core for p in self.extensions),
            f"scenario {self.name!r}: extension phases reuse core pattern types",
        )
        for t, w in self.type_weights:
            _require(0 <= t <= 5, f"type weight names bad pattern type {t}")
            _require(w > 0, f"type weight for type {t} must be positive")
        if memory_per_proc is not None:
            for p in self.compile(memory_per_proc):
                _require(p.l >= 1 and p.L >= p.l, f"pattern {p.number}: bad sizes l={p.l} L={p.L}")

    def pattern_types(self) -> tuple[int, ...]:
        """The distinct core pattern types, in first-appearance order."""
        return tuple(dict.fromkeys(p.pattern_type for p in self.phases))

    def extension_types(self) -> tuple[int, ...]:
        """The distinct extension pattern types, in appearance order."""
        return tuple(dict.fromkeys(p.pattern_type for p in self.extensions))

    @property
    def num_core_rows(self) -> int:
        """Compiled rows belonging to the core phases (the extension
        rows follow them, numbered sequentially)."""
        return sum(len(p.rows) for p in self.phases)

    # -- compilation ---------------------------------------------------------

    def compile(self, memory_per_proc: int) -> "list[IOPattern]":
        """The scenario as executable Table-2-style :class:`IOPattern` rows."""
        from repro.beffio.patterns import IOPattern, mpart_for

        mpart = mpart_for(memory_per_proc)
        out: list[IOPattern] = []
        number = self.number_base
        for phase in self.phases + self.extensions:
            for row in phase.rows:
                l = row.disk.resolve(mpart)
                memory = row.memory if row.memory is not None else row.disk
                out.append(
                    IOPattern(
                        number=number,
                        pattern_type=phase.pattern_type,
                        l=l,
                        L=memory.resolve(mpart),
                        U=row.U,
                        wellformed=row.wellformed,
                        fill_segment=row.fill_segment,
                    )
                )
                number += 1
        return out

    def formula(self) -> Formula:
        """The partition reduction tree: the paper's 1/1/2 method
        weighting over this scenario's per-type weights."""
        return Formula(
            "b_eff_io",
            (
                Reduce(
                    "weighted",
                    over="method",
                    weights=dict(METHOD_WEIGHTS),
                    require=ACCESS_METHODS,
                ),
                Reduce(
                    "weighted",
                    over="type",
                    weights=dict(self.type_weights),
                    default_weight=1.0,
                ),
            ),
        )

    # -- identity ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "grammar": "io",
            "name": self.name,
            "description": self.description,
            "sum_u": self.sum_u,
            "number_base": self.number_base,
            "type_weights": [[t, w] for t, w in self.type_weights],
            "phases": [_phase_dict(phase) for phase in self.phases],
            "extensions": [_phase_dict(phase) for phase in self.extensions],
        }

    def fingerprint(self) -> str:
        return _fingerprint(self.to_dict())


Scenario = Union[CommScenario, IOScenario]


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def _primitive_dict(obj: Any) -> dict[str, Any]:
    """A tagged union member as its field dict (tag field included)."""
    import dataclasses

    return dataclasses.asdict(obj)


def _size_dict(s: Size | None) -> dict[str, Any] | None:
    if s is None:
        return None
    return {"base": s.base, "mpart": s.mpart, "plus": s.plus}


def _phase_dict(phase: IOPhase) -> dict[str, Any]:
    return {
        "pattern_type": phase.pattern_type,
        "rows": [
            {
                "disk": _size_dict(row.disk),
                "memory": _size_dict(row.memory),
                "U": row.U,
                "wellformed": row.wellformed,
                "fill_segment": row.fill_segment,
            }
            for row in phase.rows
        ],
    }


def _fingerprint(payload: dict[str, Any]) -> str:
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def _partition_from_dict(d: dict[str, Any]) -> RingPartition:
    rule = d.get("rule")
    cls = _PARTITION_RULES.get(str(rule))
    if cls is None:
        raise ScenarioError(f"unknown ring-partition rule {rule!r}")
    fields = dict(d)
    if "ring_sizes" in fields:
        fields["ring_sizes"] = tuple(fields["ring_sizes"])
    out: RingPartition = cls(**fields)
    return out


def _placement_from_dict(d: dict[str, Any]) -> Placement:
    order = d.get("order")
    cls = _PLACEMENT_ORDERS.get(str(order))
    if cls is None:
        raise ScenarioError(f"unknown placement order {order!r}")
    fields = dict(d)
    if "permutation" in fields:
        fields["permutation"] = tuple(fields["permutation"])
    out: Placement = cls(**fields)
    return out


def _size_from_dict(d: dict[str, Any] | None) -> Size | None:
    if d is None:
        return None
    return Size(base=int(d["base"]), mpart=bool(d["mpart"]), plus=int(d["plus"]))


def scenario_from_dict(d: dict[str, Any]) -> Scenario:
    """Rebuild a scenario from :meth:`to_dict` output (JSON-safe).

    The round trip is exact: ``scenario_from_dict(s.to_dict())`` is
    equal to ``s`` and shares its fingerprint.
    """
    if not isinstance(d, dict):
        raise ScenarioError(f"scenario payload must be a dict, got {type(d).__name__}")
    if d.get("schema") != SCENARIO_SCHEMA:
        raise ScenarioError(
            f"scenario payload has schema {d.get('schema')!r}; this build "
            f"reads schema {SCENARIO_SCHEMA}"
        )
    grammar = d.get("grammar")
    try:
        if grammar == "comm":
            return CommScenario(
                name=d["name"],
                description=d.get("description", ""),
                patterns=tuple(
                    CommPatternSpec(
                        name=p["name"],
                        partition=_partition_from_dict(p["partition"]),
                        placement=_placement_from_dict(p["placement"]),
                    )
                    for p in d["patterns"]
                ),
            )
        if grammar == "io":
            return IOScenario(
                name=d["name"],
                description=d.get("description", ""),
                sum_u=int(d["sum_u"]),
                number_base=int(d.get("number_base", 0)),
                type_weights=tuple(
                    (int(t), float(w)) for t, w in d.get("type_weights", [[0, 2.0]])
                ),
                phases=tuple(_phase_from_dict(p) for p in d["phases"]),
                extensions=tuple(
                    _phase_from_dict(p) for p in d.get("extensions", [])
                ),
            )
    except (KeyError, TypeError) as exc:
        raise ScenarioError(f"malformed scenario payload: {exc!r}") from exc
    raise ScenarioError(f"unknown scenario grammar {grammar!r} (known: comm, io)")


def _require_size(s: Size | None) -> Size:
    if s is None:
        raise ScenarioError("row is missing its disk chunk size")
    return s


def _phase_from_dict(phase: dict[str, Any]) -> IOPhase:
    return IOPhase(
        pattern_type=int(phase["pattern_type"]),
        rows=tuple(
            IORow(
                disk=_require_size(_size_from_dict(row["disk"])),
                memory=_size_from_dict(row.get("memory")),
                U=int(row["U"]),
                wellformed=bool(row["wellformed"]),
                fill_segment=bool(row.get("fill_segment", False)),
            )
            for row in phase["rows"]
        ),
    )
