"""The paper's b_eff pattern table as a pinned grammar instance.

Twelve patterns: the six ring patterns of ring_numbers.c under
natural placement, and the same six partitions under the
seed-deterministic random placements (streams
``beff.random-pattern-1`` .. ``-6``).  Golden parity tests pin this
instance bit-identical to the legacy ``repro.beff.patterns`` tables
for every process count.
"""

from __future__ import annotations

from repro.beff.rings import NUM_RING_PATTERNS
from repro.scenarios.grammar import (
    CommPatternSpec,
    CommScenario,
    NaturalPlacement,
    PaperRings,
    RandomPlacement,
)

PAPER_BEFF = CommScenario(
    name="paper-beff",
    description=(
        "The 2001 paper's averaged pattern set: six ring patterns in "
        "natural rank order plus the same partitions under random "
        "placement (paper Sec. 4)."
    ),
    patterns=tuple(
        CommPatternSpec(
            name=f"ring-{p}",
            partition=PaperRings(p),
            placement=NaturalPlacement(),
        )
        for p in range(1, NUM_RING_PATTERNS + 1)
    )
    + tuple(
        CommPatternSpec(
            name=f"random-{p}",
            partition=PaperRings(p),
            placement=RandomPlacement(stream=f"beff.random-pattern-{p}"),
        )
        for p in range(1, NUM_RING_PATTERNS + 1)
    ),
)
