"""What-if scenario instances beyond the paper's pinned tables.

These are small demonstrations of the grammar — the kind of variation
FBench argues a benchmark should make cheap.  They are registered so
``repro scenarios show`` and ``repro sweep-grid --scenario`` can run
them, and the docs walk through ``pairs-vs-all`` on the dragonfly
machine.
"""

from __future__ import annotations

from repro.scenarios.grammar import (
    CommPatternSpec,
    CommScenario,
    ExplicitRings,
    IOPhase,
    IORow,
    IOScenario,
    NaturalPlacement,
    PaperRings,
    RandomPlacement,
    Size,
    StandardRings,
)
from repro.util import KB, MB

#: nearest-neighbor pairs vs one machine-spanning ring, natural and
#: permuted: the sharpest probe of how much a topology's bisection
#: costs once messages leave the local group
PAIRS_VS_ALL = CommScenario(
    name="pairs-vs-all",
    description=(
        "Rings of two (pure neighbor exchange) against the single "
        "all-rank ring, each under natural and random placement — a "
        "4-pattern locality probe for hierarchical topologies."
    ),
    patterns=(
        CommPatternSpec(
            name="pairs",
            partition=StandardRings(standard=2, min_ring=2),
            placement=NaturalPlacement(),
        ),
        CommPatternSpec(
            name="all-ranks",
            partition=PaperRings(6),
            placement=NaturalPlacement(),
        ),
        CommPatternSpec(
            name="pairs-permuted",
            partition=StandardRings(standard=2, min_ring=2),
            placement=RandomPlacement(stream="examples.pairs-permuted"),
        ),
        CommPatternSpec(
            name="all-ranks-permuted",
            partition=PaperRings(6),
            placement=RandomPlacement(stream="examples.all-ranks-permuted"),
        ),
    ),
)

#: an eight-rank instance with hand-placed rings (placement ablation)
OCTET_BLOCKS = CommScenario(
    name="octet-blocks",
    description=(
        "A fixed 8-rank instance: two explicit quads in natural order "
        "and the same quads with ranks interleaved across the halves "
        "— compiles only at nprocs=8."
    ),
    patterns=(
        CommPatternSpec(
            name="quads",
            partition=ExplicitRings((4, 4)),
            placement=NaturalPlacement(),
        ),
        CommPatternSpec(
            name="quads-interleaved",
            partition=ExplicitRings((4, 4)),
            placement=RandomPlacement(stream="examples.octet-interleave"),
        ),
    ),
)

#: a wellformed-only I/O ladder, equal type weights: strips Table 2
#: down to the question "what does the PFS do on aligned big blocks?"
ALIGNED_STREAMS = IOScenario(
    name="aligned-streams",
    description=(
        "Wellformed-only scatter and separate-file ladders with equal "
        "type weights — isolates aligned-access bandwidth from the "
        "non-wellformed penalty and the scatter double-weight."
    ),
    sum_u=16,
    type_weights=(),
    phases=(
        IOPhase(
            pattern_type=0,
            rows=(
                IORow(disk=Size(mpart=True), U=4),
                IORow(disk=Size(base=MB), memory=Size(base=2 * MB), U=2),
                IORow(disk=Size(base=32 * KB), memory=Size(base=MB), U=2),
            ),
        ),
        IOPhase(
            pattern_type=2,
            rows=(
                IORow(disk=Size(mpart=True), U=4),
                IORow(disk=Size(base=MB), U=2),
                IORow(disk=Size(base=32 * KB), U=2),
            ),
        ),
    ),
)
