"""The paper's Table 2 I/O pattern list as a pinned grammar instance.

43 rows over the five pattern types — 36 with scheduled time, time
units summing to 64 — plus the Sec. 6 random-access outlook (pattern
type 5) as an *extension* phase: its rows are scheduled on top of the
declared total, exactly like the legacy ``extension_patterns``.
Golden parity tests pin this instance bit-identical to the legacy
``repro.beffio.patterns`` tables for every machine memory size.
"""

from __future__ import annotations

from repro.scenarios.grammar import IOPhase, IORow, IOScenario, Size
from repro.util import KB, MB

_MB = Size(base=MB)
_MPART = Size(mpart=True)

#: the scatter type's ladder: memory chunks of L bytes scattered
#: to/from disk chunks of l bytes in one call (paper Table 2, type 0)
_TYPE0 = IOPhase(
    pattern_type=0,
    rows=(
        IORow(disk=_MB, U=0),
        IORow(disk=_MPART, U=4),
        IORow(disk=_MB, memory=Size(base=2 * MB), U=4),
        IORow(disk=_MB, U=4),
        IORow(disk=Size(base=32 * KB), memory=_MB, U=2),
        IORow(disk=Size(base=KB), memory=_MB, U=2),
        IORow(disk=Size(base=32 * KB, plus=8), memory=Size(base=MB, plus=256),
              U=2, wellformed=False),
        IORow(disk=Size(base=KB, plus=8), memory=Size(base=MB, plus=8 * KB),
              U=2, wellformed=False),
        IORow(disk=Size(base=MB, plus=8), U=2, wellformed=False),
    ),
)


def _per_chunk_rows(u_mpart: int, u_1mb: int, u_1mb8: int) -> tuple[IORow, ...]:
    """The (l, L=l) ladder shared by the per-chunk pattern types."""
    return (
        IORow(disk=_MB, U=0),
        IORow(disk=_MPART, U=u_mpart),
        IORow(disk=_MB, U=u_1mb),
        IORow(disk=Size(base=32 * KB), U=1),
        IORow(disk=Size(base=KB), U=1),
        IORow(disk=Size(base=32 * KB, plus=8), U=1, wellformed=False),
        IORow(disk=Size(base=KB, plus=8), U=1, wellformed=False),
        IORow(disk=Size(base=MB, plus=8), U=u_1mb8, wellformed=False),
    )


_FILL = IORow(disk=_MB, U=0, fill_segment=True)

#: types 2/3/4 (and the type-5 extension) share one U assignment
_NONCOLL_ROWS = _per_chunk_rows(u_mpart=2, u_1mb=2, u_1mb8=2)

PAPER_TABLE2 = IOScenario(
    name="paper-table2",
    description=(
        "The 2001 paper's Table 2: scatter, shared-pointer, separate-"
        "file and segmented-file ladders (sum U = 64), with the Sec. 6 "
        "random-access patterns as an optional extension."
    ),
    sum_u=64,
    type_weights=((0, 2.0),),
    phases=(
        _TYPE0,
        IOPhase(pattern_type=1, rows=_per_chunk_rows(u_mpart=4, u_1mb=2, u_1mb8=2)),
        IOPhase(pattern_type=2, rows=_NONCOLL_ROWS),
        IOPhase(pattern_type=3, rows=_NONCOLL_ROWS),
        IOPhase(pattern_type=3, rows=(_FILL,)),
        IOPhase(pattern_type=4, rows=_NONCOLL_ROWS),
        IOPhase(pattern_type=4, rows=(_FILL,)),
    ),
    extensions=(IOPhase(pattern_type=5, rows=_NONCOLL_ROWS),),
)
