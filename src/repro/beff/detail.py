"""The non-averaged detail patterns of b_eff (paper Sec. 4).

"Only for the detailed analysis of the communication behavior, the
following additional patterns are measured: a worst case cycle, a
best and a worst bi-section, the communication of a two dimensional
Cartesian partitioning in the both directions separately and
together, the same for a three dimensional Cartesian partitioning,
and a simple ping-pong between the first two MPI processes."

All detail patterns run at L_max with the nonblocking method and
report aggregate bandwidth (ping-pong reports the classical
one-direction bandwidth).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.beff.methods import TAG_LEFTWARD, TAG_RIGHTWARD
from repro.beff.sizes import lmax_for
from repro.mpi.cart import CartComm, dims_create
from repro.mpi.comm import World
from repro.net.model import Fabric


@dataclass(frozen=True)
class DetailRecord:
    name: str
    size: int
    time: float
    bandwidth: float  # aggregate bytes/s (ping-pong: per-direction)


DETAIL_TAG = 200


def _exchange(comm, partners: list[tuple[int, int]], nbytes: int):
    """Nonblocking exchange with each (send_to, recv_from) pair.

    One fixed tag suffices: every pair exchanges exactly one
    equal-sized message per direction per iteration and matching is
    per-source FIFO.
    """
    reqs = []
    for dst, src in partners:
        reqs.append(comm.irecv(src, DETAIL_TAG))
        reqs.append(comm.isend(dst, nbytes, DETAIL_TAG))
    yield from comm.waitall(reqs)


def _interleaved_cycle(n: int) -> list[int]:
    """A deliberately bad ring order: hop across the machine each step."""
    half = n // 2
    order = []
    for i in range(half):
        order.append(i)
        order.append(i + half)
    if n % 2:
        order.append(n - 1)
    return order


def run_detail(
    fabric_factory: Callable[[], Fabric],
    memory_per_proc: int,
    iterations: int = 2,
    int_bits: int = 64,
) -> dict[str, DetailRecord]:
    """Measure all detail patterns; returns records keyed by name."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    fabric = fabric_factory()
    world = World(fabric)
    n = world.nprocs
    if n < 2:
        raise ValueError("detail patterns need at least 2 processes")
    size = lmax_for(memory_per_proc, int_bits)
    results: dict[str, DetailRecord] = {}

    cycle_order = _interleaved_cycle(n)
    cart2 = dims_create(n, 2)
    cart3 = dims_create(n, 3)

    def measure(comm, name, partners_of, participants=None, total_messages=None):
        """Generic measured loop; partners_of(rank) -> [(dst, src), ...]."""
        partners = partners_of(comm.rank)
        active = participants is None or comm.rank in participants
        yield from comm.barrier()
        t0 = comm.wtime()
        for _ in range(iterations):
            if active and partners:
                yield from _exchange(comm, partners, size)
        local = comm.wtime() - t0
        elapsed = yield from comm.allreduce(8, local, max)
        if comm.rank == 0:
            msgs = total_messages
            if msgs is None:
                msgs = 0
                for r in range(n):
                    if participants is None or r in participants:
                        msgs += len(partners_of(r))
            bandwidth = size * msgs * iterations / elapsed
            results[name] = DetailRecord(name, size, elapsed, bandwidth)

    def program(comm):
        # ping-pong between the first two processes ----------------------
        yield from comm.barrier()
        t0 = comm.wtime()
        for _ in range(iterations):
            if comm.rank == 0:
                yield from comm.send(1, size, TAG_LEFTWARD)
                yield from comm.recv(1, TAG_RIGHTWARD)
            elif comm.rank == 1:
                yield from comm.recv(0, TAG_LEFTWARD)
                yield from comm.send(0, size, TAG_RIGHTWARD)
        local = comm.wtime() - t0
        elapsed = yield from comm.allreduce(8, local, max)
        if comm.rank == 0:
            # classical ping-pong: one message of L per half round trip
            results["ping-pong"] = DetailRecord(
                "ping-pong", size, elapsed, size / (elapsed / (2 * iterations))
            )

        # bisections -------------------------------------------------------
        half = n // 2
        bisection = set(range(2 * half))

        def paired(rank):  # worst: across the machine
            if rank < half:
                return [(rank + half, rank + half)]
            if rank < 2 * half:
                return [(rank - half, rank - half)]
            return []

        def neighbor(rank):  # best: adjacent pairs
            if rank >= 2 * half:
                return []
            partner = rank + 1 if rank % 2 == 0 else rank - 1
            return [(partner, partner)]

        yield from measure(comm, "bisection-far", paired, participants=bisection)
        yield from measure(comm, "bisection-near", neighbor, participants=bisection)

        # worst-case cycle ---------------------------------------------------
        position = {rank: i for i, rank in enumerate(cycle_order)}

        def cycle_partners(rank):
            i = position[rank]
            right = cycle_order[(i + 1) % n]
            left = cycle_order[(i - 1) % n]
            return [(right, left)]

        yield from measure(comm, "worst-cycle", cycle_partners)

        # Cartesian partitions ----------------------------------------------
        for label, dims in (("cart2d", cart2), ("cart3d", cart3)):
            cart = CartComm(comm.world.comm_world, dims)

            def dim_partners(dim):
                def partners(rank):
                    src, dst = cart.shift(rank, dim)
                    if src is None or dst is None or dst == rank:
                        return []
                    return [(dst, src)]

                return partners

            live_dims = [d for d, extent in enumerate(dims) if extent > 1]
            for dim in live_dims:
                yield from measure(comm, f"{label}-dim{dim}", dim_partners(dim))

            def all_dims(rank):
                out = []
                for dim in live_dims:
                    src, dst = cart.shift(rank, dim)
                    if src is not None and dst is not None and dst != rank:
                        out.append((dst, src))
                return out

            yield from measure(comm, f"{label}-all", all_dims)

    world.run(program)
    return results
