"""Measurement control: repetitions, looplength adaptation, records.

The paper's time-driven control: the loop length starts at 300 for
the shortest message and is adapted from the previous loop's measured
execution time so that every loop runs for 2.5-5 ms (minimum loop
length 1).  Our virtual clock is deterministic, so by default we cap
the loop length at a small value and run a single repetition — the
computed bandwidth is bit-identical to the full schedule — but
``paper_fidelity()`` restores the original constants for anyone who
wants to watch the control loop itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.beff.methods import METHODS
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:
    from repro.scenarios.grammar import CommScenario


@dataclass(frozen=True)
class MeasurementConfig:
    methods: tuple[str, ...] = METHODS
    repetitions: int = 1  # paper: 3
    initial_looplength: int = 300
    max_looplength: int = 2  # paper: 300 (simulation is deterministic)
    loop_time_min: float = 2.5e-3
    loop_time_max: float = 5e-3
    backend: str = "des"  # "des" | "analytic"
    #: DES engine mode: ``"fast"`` enables the steady-state orbit
    #: fast-forward for the timed repetition loops (bit-identical to
    #: the reference loops — see :mod:`repro.beff.fastforward`);
    #: ``"reference"`` always simulates every repetition.  Fault-active
    #: runs force the reference loops regardless of this setting.
    mode: str = "fast"
    #: fault plan injected into the simulated machine (DES backend
    #: only); None/empty leaves every number bit-identical
    faults: FaultPlan | None = None
    #: per-pattern simulated-seconds budget; a pattern exceeding it is
    #: abandoned (skip-and-flag), never allowed to stall the run
    pattern_budget: float | None = None
    #: hard cap on simulation events (never-hang guard under faults)
    event_budget: int | None = None
    #: declarative workload override (:mod:`repro.scenarios`): None
    #: runs the paper's pinned pattern table; a
    #: :class:`~repro.scenarios.grammar.CommScenario` compiles its own
    #: pattern set and hashes into the run's store fingerprint
    scenario: "CommScenario | None" = None

    def __post_init__(self) -> None:
        if self.scenario is not None:
            from repro.scenarios.grammar import CommScenario

            if not isinstance(self.scenario, CommScenario):
                raise TypeError(
                    f"b_eff scenarios must be CommScenario, "
                    f"got {type(self.scenario).__name__}"
                )
        if not self.methods:
            raise ValueError("need at least one communication method")
        for m in self.methods:
            if m not in METHODS:
                raise ValueError(f"unknown method {m!r}")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.initial_looplength < 1 or self.max_looplength < 1:
            raise ValueError("loop lengths must be >= 1")
        if not (0 < self.loop_time_min < self.loop_time_max):
            raise ValueError("need 0 < loop_time_min < loop_time_max")
        if self.backend not in ("des", "analytic"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.mode not in ("fast", "reference"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.faults and self.backend != "des":
            raise ValueError("fault injection requires the des backend")
        if self.pattern_budget is not None and self.pattern_budget <= 0:
            raise ValueError("pattern_budget must be positive when given")
        if self.event_budget is not None and self.event_budget < 1:
            raise ValueError("event_budget must be >= 1 when given")

    @property
    def loop_time_target(self) -> float:
        return 0.5 * (self.loop_time_min + self.loop_time_max)

    def next_looplength(self, previous_iteration_time: float | None) -> int:
        """Loop length for the next measurement given the last
        per-iteration time (None before the first measurement)."""
        if previous_iteration_time is None or previous_iteration_time <= 0:
            desired = self.initial_looplength
        else:
            desired = int(round(self.loop_time_target / previous_iteration_time))
        return max(1, min(desired, self.initial_looplength, self.max_looplength))


def paper_fidelity() -> MeasurementConfig:
    """The original constants: 3 repetitions, loop length up to 300."""
    return MeasurementConfig(repetitions=3, max_looplength=300)


@dataclass(frozen=True)
class MeasurementRecord:
    """One (pattern, size, method, repetition) measurement."""

    pattern: str
    kind: str  # "ring" | "random"
    size: int
    method: str
    repetition: int
    looplength: int
    time: float  # max over processes, for `looplength` iterations
    bandwidth: float  # bytes/s: size * messages * looplength / time
