"""The effective bandwidth benchmark (b_eff), paper Sec. 4.

Public entry points:

* :func:`~repro.beff.benchmark.run_beff` — run the full benchmark on a
  machine and return a :class:`~repro.beff.benchmark.BeffResult`
  (b_eff, b_eff at L_max, ring-only variants, per-pattern records).
* :func:`~repro.beff.sizes.message_sizes` — the 21-value message-size
  ladder with the L_max rule.
* :func:`~repro.beff.rings.ring_pattern_sizes` — the six ring-pattern
  partitions (the ring_numbers.c rules).
* :mod:`~repro.beff.detail` — the non-averaged detail patterns
  (ping-pong, bisections, worst-case cycle, Cartesian 2-D/3-D).

Two execution backends measure a communication round:
``backend="des"`` runs the full event simulation (messages, matching,
protocols), ``backend="analytic"`` prices each round with a one-shot
max-min allocation — orders of magnitude faster for large rank
counts, exact for the symmetric patterns b_eff uses (the difference
is itself an ablation, see benchmarks/test_bench_ablations.py).
"""

from repro.beff.sizes import message_sizes, lmax_for
from repro.beff.rings import ring_pattern_sizes, ring_partition
from repro.beff.patterns import CommPattern, make_patterns, ring_patterns, random_patterns
from repro.beff.measurement import MeasurementConfig
from repro.beff.benchmark import BeffResult, run_beff
from repro.beff.analysis import aggregate, balance_factor
from repro.beff.detail import DetailRecord, run_detail
from repro.beff.sweep import BeffSweepResult, run_sweep

__all__ = [
    "BeffSweepResult",
    "run_sweep",
    "message_sizes",
    "lmax_for",
    "ring_pattern_sizes",
    "ring_partition",
    "CommPattern",
    "make_patterns",
    "ring_patterns",
    "random_patterns",
    "MeasurementConfig",
    "BeffResult",
    "run_beff",
    "aggregate",
    "balance_factor",
    "DetailRecord",
    "run_detail",
]
