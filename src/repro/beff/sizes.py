"""The 21-value message-size ladder (paper Sec. 4).

L = 1 B, 2 B, 4 B, ..., 4 kB           (13 fixed sizes, powers of two)
    4kB*a^1, ..., 4kB*a^8 = L_max      (8 geometric steps)

with L_max = (memory per processor) / 128, additionally capped at
128 MB on systems whose C ``int`` is narrower than 64 bits (the
original implementation's index arithmetic).  The two sub-ladders are
what makes the paper's "equidistant on the abscissa" averaging
meaningful: 12 log-spaced intervals below 4 kB, 8 above.
"""

from __future__ import annotations

from functools import lru_cache

from repro.util import KB, MB

#: number of message sizes in the ladder
NUM_SIZES = 21
#: boundary between the fixed and geometric sub-ladders
FIXED_TOP = 4 * KB
#: L_max cap for systems with 32-bit int
LMAX_CAP_32BIT = 128 * MB


def lmax_for(memory_per_proc: int, int_bits: int = 64) -> int:
    """L_max = memory/128, capped at 128 MB when ``int_bits`` < 64."""
    if memory_per_proc < 128 * FIXED_TOP:
        raise ValueError(
            f"memory per processor too small ({memory_per_proc} B): "
            f"L_max would fall below the 4 kB fixed ladder"
        )
    lmax = memory_per_proc // 128
    if int_bits < 64:
        lmax = min(lmax, LMAX_CAP_32BIT)
    return lmax


@lru_cache(maxsize=None)
def _message_sizes(memory_per_proc: int, int_bits: int) -> tuple[int, ...]:
    lmax = lmax_for(memory_per_proc, int_bits)
    fixed = [1 << i for i in range(13)]  # 1 B .. 4 kB
    a = (lmax / FIXED_TOP) ** (1.0 / 8.0)
    variable = [int(round(FIXED_TOP * a**k)) for k in range(1, 9)]
    variable[-1] = lmax  # guard against float rounding at the top
    sizes = tuple(fixed + variable)
    assert len(sizes) == NUM_SIZES
    return sizes


def message_sizes(memory_per_proc: int, int_bits: int = 64) -> list[int]:
    """The 21 message sizes for a processor with ``memory_per_proc`` bytes.

    Memoised internally (sweeps and repetition schedules ask for the
    same ladder thousands of times); returns a fresh list so callers
    may mutate their copy.
    """
    return list(_message_sizes(memory_per_proc, int_bits))
