"""The three communication methods of b_eff (paper Sec. 4).

Every pattern is measured with each method and the maximum bandwidth
wins, making the result independent of which MPI primitive a vendor
optimized:

* ``sendrecv`` — two sequential ``MPI_Sendrecv`` calls (leftward then
  rightward); in rings of exactly two processes the two messages may
  be (and are) sent in parallel;
* ``nonblocking`` — ``MPI_Irecv``/``MPI_Isend``/``MPI_Waitall``, all
  four transfers in flight at once;
* ``alltoallv`` — one ``MPI_Alltoallv`` over the world with non-zero
  counts only for the two ring neighbors; its (p-1)-step pairwise
  exchange pays latency for every zero-byte slot, which is why it
  loses on sparse ring patterns.
"""

from __future__ import annotations

from repro.beff.patterns import CommPattern

METHODS = ("sendrecv", "nonblocking", "alltoallv")

#: user-space tags for the two message directions
TAG_LEFTWARD = 101
TAG_RIGHTWARD = 102


def step_sendrecv(comm, pattern: CommPattern, nbytes: int):
    """One iteration of the Sendrecv method for ``comm.rank``."""
    left, right = pattern.neighbors(comm.rank)
    if pattern.ring_size_of(comm.rank) == 2:
        # both messages may go in parallel (paper Sec. 4)
        reqs = [
            comm.isend(left, nbytes, TAG_LEFTWARD),
            comm.isend(right, nbytes, TAG_RIGHTWARD),
            comm.irecv(right, TAG_LEFTWARD),
            comm.irecv(left, TAG_RIGHTWARD),
        ]
        yield from comm.waitall(reqs)
    else:
        # leftward: send to left, receive from right — then rightward
        yield from comm.sendrecv(left, nbytes, right, TAG_LEFTWARD)
        yield from comm.sendrecv(right, nbytes, left, TAG_RIGHTWARD)


def step_nonblocking(comm, pattern: CommPattern, nbytes: int):
    """One iteration of the nonblocking method for ``comm.rank``."""
    left, right = pattern.neighbors(comm.rank)
    reqs = [
        comm.irecv(right, TAG_LEFTWARD),
        comm.irecv(left, TAG_RIGHTWARD),
        comm.isend(left, nbytes, TAG_LEFTWARD),
        comm.isend(right, nbytes, TAG_RIGHTWARD),
    ]
    yield from comm.waitall(reqs)


def step_alltoallv(comm, pattern: CommPattern, nbytes: int):
    """One iteration of the Alltoallv method for ``comm.rank``."""
    left, right = pattern.neighbors(comm.rank)
    sizes = [0] * comm.size
    sizes[left] += nbytes
    sizes[right] += nbytes
    yield from comm.alltoallv(sizes)


STEP_FUNCTIONS = {
    "sendrecv": step_sendrecv,
    "nonblocking": step_nonblocking,
    "alltoallv": step_alltoallv,
}


def step(method: str, comm, pattern: CommPattern, nbytes: int):
    """Dispatch one iteration of ``method``."""
    try:
        fn = STEP_FUNCTIONS[method]
    except KeyError:
        raise ValueError(f"unknown communication method {method!r}") from None
    yield from fn(comm, pattern, nbytes)
