"""Multi-partition b_eff runs (Table 1's rows, sweepable).

The paper's Table 1 reports b_eff at several partition sizes of each
machine; this module drives those rows through the benchmark-agnostic
:mod:`repro.runtime.sweep` orchestrator, so b_eff sweeps get the same
crash-safe journaling, ``--resume`` bit-identity, retry policy and
parallel partitions as b_eff_io.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.beff.benchmark import BeffResult
from repro.beff.measurement import MeasurementConfig
from repro.faults.validity import VALID, RunValidity
from repro.runtime import sweep as _runtime
from repro.runtime.supervisor import PoisonRecord, SupervisionPolicy
from repro.runtime.sweep import (
    CRASH_AFTER_ENV,
    SweepJournal,
    SweepWorkerError,
)

if TYPE_CHECKING:
    from repro.machines.spec import MachineSpec

__all__ = [
    "CRASH_AFTER_ENV",
    "MachineLike",
    "BeffSweepResult",
    "SweepWorkerError",
    "run_sweep",
]

#: a machine registry key, or a resolved spec
MachineLike = Union[str, "MachineSpec"]


@dataclass(frozen=True)
class BeffSweepResult:
    """All partition sizes of one machine plus the best b_eff."""

    machine: str
    results: tuple[BeffResult, ...]
    best_b_eff: float
    best_partition: int
    #: worst-case partition validity (an invalid partition is excluded
    #: from the maximum but demotes the sweep)
    validity: RunValidity = VALID
    #: partitions simulated in this call vs served from the result store
    fresh: int = 0
    cached: int = 0
    #: partitions quarantined by a supervised run (see
    #: :class:`~repro.runtime.supervisor.PoisonRecord`)
    poisoned: tuple[PoisonRecord, ...] = ()

    def partition_values(self) -> dict[int, float]:
        return {r.nprocs: r.b_eff for r in self.results}


def run_sweep(
    spec: MachineLike,
    partitions: Iterable[int],
    config: MeasurementConfig | None = None,
    jobs: int = 1,
    journal: str | os.PathLike[str] | SweepJournal | None = None,
    resume: bool = False,
    retries: int = 0,
    backoff: float = 0.0,
    store: "object | str | os.PathLike[str] | None" = None,
    supervision: SupervisionPolicy | None = None,
) -> BeffSweepResult:
    """Run b_eff over several partition sizes of one machine.

    Same contract as :func:`repro.beffio.sweep.run_sweep`: ``jobs >
    1`` fans partitions over worker processes bit-identically,
    ``journal``/``resume`` give kill-and-resume bit-identity,
    ``retries``/``backoff`` bound re-attempts before
    :class:`SweepWorkerError`, ``store`` (a
    :class:`~repro.runtime.store.RunStore` or path) serves previously
    simulated partitions byte-identically from the result cache, and
    ``supervision`` runs the partitions under the supervised executor
    (deadlines, heartbeats, poison quarantine instead of aborting).
    """
    outcome = _runtime.run_sweep(
        "b_eff",
        spec,
        partitions,
        config=config,
        jobs=jobs,
        journal=journal,
        resume=resume,
        retries=retries,
        backoff=backoff,
        store=store,
        supervision=supervision,
    )
    return BeffSweepResult(
        machine=outcome.machine,
        results=outcome.results,
        best_b_eff=outcome.system_value,
        best_partition=outcome.best_partition,
        validity=outcome.validity,
        fresh=outcome.fresh,
        cached=outcome.cached,
        poisoned=outcome.poisoned,
    )
