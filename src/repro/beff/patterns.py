"""Communication patterns: rings with natural and random placement.

A :class:`CommPattern` is a set of rings over world ranks.  Ring
patterns use ranks in natural order (so ring neighbors are usually
topology neighbors); random patterns apply the same ring-size
partition to a randomly permuted rank list — the paper's way of
measuring how sensitive the network is to process placement.

Every process sends two messages per iteration: one to its left ring
neighbor, one to its right (2n messages per iteration in total).

The pattern *table* itself lives in the scenario layer: the factory
functions here are thin shims compiling the pinned
:data:`repro.scenarios.paper_beff.PAPER_BEFF` grammar instance, which
golden parity tests prove bit-identical to the historic hard-coded
tables.  (The scenario layer imports :class:`CommPattern` from this
module, so the shims import the instance lazily.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.randomness import RandomStreams


@dataclass(frozen=True)
class CommPattern:
    """One b_eff pattern: named rings of world ranks."""

    name: str
    kind: str  # "ring" | "random"
    rings: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.kind not in ("ring", "random"):
            raise ValueError(f"bad pattern kind {self.kind!r}")
        seen: set[int] = set()
        for ring in self.rings:
            if len(ring) < 2:
                raise ValueError(f"ring of size {len(ring)} in pattern {self.name}")
            for rank in ring:
                if rank in seen:
                    raise ValueError(f"rank {rank} appears twice in pattern {self.name}")
                seen.add(rank)

    @property
    def nprocs(self) -> int:
        return sum(len(r) for r in self.rings)

    @property
    def messages_per_iteration(self) -> int:
        """Total messages per loop iteration: 2 per process."""
        return 2 * self.nprocs

    def neighbors(self, rank: int) -> tuple[int, int]:
        """(left, right) ring neighbors of a world rank."""
        for ring in self.rings:
            if rank in ring:
                i = ring.index(rank)
                return ring[(i - 1) % len(ring)], ring[(i + 1) % len(ring)]
        raise KeyError(f"rank {rank} not in pattern {self.name}")

    def ring_size_of(self, rank: int) -> int:
        for ring in self.rings:
            if rank in ring:
                return len(ring)
        raise KeyError(f"rank {rank} not in pattern {self.name}")


def ring_patterns(n: int) -> list[CommPattern]:
    """The six ring patterns with natural rank order."""
    return [p for p in make_patterns(n) if p.kind == "ring"]


def random_patterns(n: int, streams: RandomStreams | None = None) -> list[CommPattern]:
    """The six random patterns: same partitions, permuted placement."""
    return [p for p in make_patterns(n, streams) if p.kind == "random"]


def make_patterns(n: int, streams: RandomStreams | None = None) -> list[CommPattern]:
    """All twelve averaged patterns: six ring + six random."""
    from repro.scenarios.paper_beff import PAPER_BEFF

    return PAPER_BEFF.compile(n, streams or RandomStreams())
