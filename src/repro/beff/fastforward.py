"""Steady-state orbit fast-forward for b_eff's timed repetition loops.

A b_eff measurement repeats one communication round ``looplength``
times (300 at paper fidelity) between a barrier and a clock read.  On
a noiseless simulator the ring patterns — and the random patterns
under the internally synchronizing ``alltoallv`` method — settle into
an exactly periodic orbit after a few repetitions: every further
repetition is the previous one translated in time by a constant
``d``.  This module detects that orbit *exactly* and replays the
remaining repetitions analytically, preserving bit-identical loop
times.

Exactness argument
------------------
Unlike b_eff_io there is no filesystem: between repetitions the only
persistent simulator state is the virtual clock.  A *synchronous
quiescent cut* is a repetition boundary where (a) every rank reports
the identical boundary float ``t`` (all ranks at loop-top) and (b) no
network flows are in flight.  The full future evolution from such a
cut is a function of ``t`` alone, and the event cascade is built from
float additions on ``t``.  Within one binade ``[2^p, 2^(p+1))`` every
float is a multiple of the grid unit ``2^(p-53)``, so the difference
``d`` of two same-binade boundaries is exactly on the grid and
rounding to the uniform grid commutes with exact grid translations:
if three consecutive cuts form an exact arithmetic progression, every
float of the next repetition's cascade is the previous one's plus
``d``, re-rounded identically — as long as no tracked time leaves the
binade.  Skipping ``k`` repetitions is therefore: wake every rank at
``t + k*d`` computed on the integer grid (``SleepUntil`` lands the
float verbatim) with the repetition counter advanced by ``k``.  Skips
are capped :data:`MARGIN` repetitions short of the binade edge and
land at least one repetition before the loop's end, so the final
repetition always runs live.

Anything aperiodic — the random patterns under ``sendrecv`` and
``nonblocking``, whose rank-local staggering never exactly repeats —
simply fails the arithmetic-progression check forever and the loop
runs live, trivially bit-identical.

Engine statistics (``FlowNetwork.bytes_completed``, allocation
counters, per-link byte totals) are *not* advanced across a skip:
they feed no measurement, only inspection helpers.  Fault-active runs
never construct a session at all — mid-run capacity transitions break
the periodicity proof's premises, so they force the reference loops,
exactly as b_eff_io does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.orbit import advance, grid_delta, steps_in_binade

if TYPE_CHECKING:
    from repro.net.model import Fabric

#: consecutive synchronous quiescent cuts proving the orbit
WINDOW = 3
#: minimum repetitions a skip must cover to be worth arming
MIN_SKIP = 3
#: repetitions of safety margin kept below the binade edge
MARGIN = 2

#: loop-key type: (pattern name, size, method, repetition index)
LoopKey = tuple[str, int, str, int]


@dataclass
class _Cut:
    """One repetition boundary: per-rank loop-top clock reads."""

    rep: int
    t: list[float]
    count: int = 0
    sync: bool = False


@dataclass
class _Plan:
    """An armed skip awaiting engagement by every rank."""

    from_rep: int
    landing_rep: int
    skipped: int
    target: float
    pred: float
    engaged: int = 0


class FastForwardSession:
    """Per-run fast-forward context shared by every rank.

    One :class:`CountedLoopFF` exists per timed loop; ranks reach the
    loops in the same (pattern, size, method, repetition) order, so
    the schedule tuple is the rendezvous key.  ``reps_skipped`` /
    ``loops_armed`` are observability counters for the perf harness
    and the bit-identity tests.
    """

    def __init__(self, fabric: "Fabric", nranks: int) -> None:
        self.fabric = fabric
        self.n = nranks
        self.loops: dict[LoopKey, CountedLoopFF] = {}
        self.loops_armed = 0
        self.reps_skipped = 0

    def loop_for(self, key: LoopKey, looplength: int) -> "CountedLoopFF":
        ff = self.loops.get(key)
        if ff is None:
            ff = self.loops[key] = CountedLoopFF(self, key, looplength)
        return ff


class CountedLoopFF:
    """Orbit detector and skip coordinator for one timed loop.

    One instance is shared by all ranks of the loop (the simulated
    ranks are coroutines of one process, so plain attribute state is
    the rendezvous).  The termination model is a fixed repetition
    count — b_eff's loops have no clock-based exit.
    """

    def __init__(
        self, session: FastForwardSession, key: LoopKey, looplength: int
    ) -> None:
        self.session = session
        self.key = key
        self.n = session.n
        self.looplength = looplength
        self._records: list[_Cut] = []
        self._cur: _Cut | None = None
        self.plan: _Plan | None = None
        self._finished = 0

    # -- per-repetition reporting (called from the timed loop) -----------

    def boundary(self, rank: int, rep: int, t: float) -> tuple[float, int] | None:
        """Rank ``rank`` finished repetition ``rep`` (1-based) at ``t``.

        Returns None to keep simulating, or ``(wake_time, landing_rep)``:
        the rank must ``yield SleepUntil(wake_time)`` and resume its
        loop as if ``landing_rep`` repetitions had completed.
        """
        cur = self._cur
        if cur is None or cur.rep != rep:
            cur = self._cur = _Cut(rep=rep, t=[0.0] * self.n)
        cur.t[rank] = t
        cur.count += 1
        if cur.count == self.n:
            self._complete_cut(cur)
        plan = self.plan
        if plan is None or rep != plan.from_rep:
            return None
        # Engagement: the rank's live boundary must land exactly on the
        # arithmetic progression the arming proof extrapolated.  A
        # mismatch means the periodicity guards are wrong — stop hard
        # rather than desynchronize ranks.
        if t != plan.pred:
            raise RuntimeError(
                "b_eff fast-forward: verified steady state diverged; "
                "this is a bug in the periodicity guards"
            )
        plan.engaged += 1
        if plan.engaged == self.n:
            self._apply(plan)
        return (plan.target, plan.landing_rep)

    def finish(self) -> None:
        """A rank's loop ended; drop the shared state once all have."""
        self._finished += 1
        if self._finished == self.n:
            self.session.loops.pop(self.key, None)

    # -- cut bookkeeping --------------------------------------------------

    def _complete_cut(self, cur: _Cut) -> None:
        if self.plan is not None:
            # keep the in-flight record: the remaining ranks still
            # verify their predicted boundary against it; _apply clears
            return
        self._cur = None
        t0 = cur.t[0]
        cur.sync = all(t == t0 for t in cur.t)
        self._records.append(cur)
        if len(self._records) > WINDOW:
            self._records.pop(0)
        self._try_arm()

    def _try_arm(self) -> bool:
        """Arm a skip when the last three cuts prove the orbit."""
        recs = self._records
        if len(recs) < WINDOW:
            return False
        last = recs[-1].rep
        if [r.rep for r in recs] != [last - 2, last - 1, last]:
            return False
        if not all(r.sync for r in recs):
            return False
        track = grid_delta(recs[0].t[0], recs[1].t[0], recs[2].t[0])
        if track is None:
            return False
        d, e = track
        t2 = recs[2].t[0]
        # land at most one repetition before the loop's end (the final
        # repetition always runs live) and MARGIN repetitions inside
        # the binade, so every intra-repetition float stays on the grid
        landing = min(
            self.looplength - 1, last + steps_in_binade(t2, d, e) - MARGIN
        )
        skipped = landing - last - 1  # repetition last+1 runs live as proof
        if skipped < MIN_SKIP:
            return False
        self.plan = _Plan(
            from_rep=last + 1,
            landing_rep=landing,
            skipped=skipped,
            target=advance(t2, d, e, landing - last),
            pred=advance(t2, d, e, 1),
        )
        return True

    # -- state application --------------------------------------------------

    def _quiescent(self) -> bool:
        return self.session.fabric.flows.active_flows == 0

    def _apply(self, plan: _Plan) -> None:
        if not self._quiescent():  # pragma: no cover - guarded by arming
            raise RuntimeError("b_eff fast-forward: skip from non-quiescent state")
        session = self.session
        session.loops_armed += 1
        session.reps_skipped += plan.skipped
        self._records.clear()
        self._cur = None
        self.plan = None
