"""The full b_eff benchmark: schedule, execution, result object.

``run_beff`` measures all 12 patterns x 21 sizes x methods x
repetitions on a machine, using either the event-driven backend (the
rank programs literally execute the loops through the simulated MPI)
or the analytic round model, and aggregates per the paper's formula.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.beff import analysis
from repro.beff.analytic import RoundModel
from repro.beff.fastforward import FastForwardSession
from repro.beff.measurement import MeasurementConfig, MeasurementRecord
from repro.beff.methods import step
from repro.beff.patterns import CommPattern, make_patterns
from repro.beff.sizes import NUM_SIZES, lmax_for, message_sizes
from repro.faults.inject import FaultInjector
from repro.faults.validity import VALID, RunValidity
from repro.mpi.comm import World
from repro.net.model import Fabric
from repro.sim.engine import DeadlockError, EventBudgetError
from repro.sim.process import SleepUntil
from repro.sim.randomness import RandomStreams
from repro.util import MB


@dataclass
class BeffResult:
    """Everything Table 1 reports for one (machine, nprocs) entry."""

    nprocs: int
    memory_per_proc: int
    lmax: int
    sizes: list[int]
    backend: str
    records: list[MeasurementRecord]
    b_eff: float  # bytes/s, aggregate
    b_eff_at_lmax: float
    ring_only_at_lmax: float
    per_pattern: dict[str, float]
    logavg_ring: float
    logavg_random: float
    #: trustworthiness of the aggregates (resilient runs may skip or
    #: flag patterns); ``valid`` for an undisturbed complete run
    validity: RunValidity = VALID
    #: seed of the injected fault plan (None for undisturbed runs)
    fault_seed: int | None = None
    #: which engine produced the numbers: ``"analytic"``,
    #: ``"des-fast"`` (orbit fast-forward armed — bit-identical to
    #: reference by construction) or ``"des-reference"``
    engine_mode: str = "des-reference"
    #: fast-forward observability (zero for analytic/reference runs):
    #: how many timed loops proved an orbit and how many repetitions
    #: were replayed analytically instead of simulated
    ff_loops_armed: int = 0
    ff_reps_skipped: int = 0

    @property
    def b_eff_per_proc(self) -> float:
        return self.b_eff / self.nprocs

    @property
    def b_eff_at_lmax_per_proc(self) -> float:
        return self.b_eff_at_lmax / self.nprocs

    @property
    def ring_only_at_lmax_per_proc(self) -> float:
        return self.ring_only_at_lmax / self.nprocs

    def memory_transfer_time(self) -> float:
        """Seconds to communicate the total memory once at b_eff.

        The paper's Sec. 2.2 comparison: 3.2 s on the 512-PE T3E,
        13.6 s on a 24-PE SR 8000.
        """
        return self.nprocs * self.memory_per_proc / self.b_eff

    def summary_row(self) -> dict:
        """Table 1's columns (bandwidths in MB/s)."""
        return {
            "procs": self.nprocs,
            "b_eff": self.b_eff / MB,
            "b_eff/proc": self.b_eff_per_proc / MB,
            "Lmax": self.lmax,
            "b_eff@Lmax": self.b_eff_at_lmax / MB,
            "b_eff/proc@Lmax": self.b_eff_at_lmax_per_proc / MB,
            "b_eff/proc@Lmax rings": self.ring_only_at_lmax_per_proc / MB,
        }


def run_beff(
    fabric_factory: Callable[[], Fabric],
    memory_per_proc: int,
    config: MeasurementConfig | None = None,
    streams: RandomStreams | None = None,
    int_bits: int = 64,
) -> BeffResult:
    """Run the effective bandwidth benchmark.

    ``fabric_factory`` builds a fresh :class:`Fabric` (with its own
    simulator); the number of MPI processes is the fabric topology's
    process count.  ``memory_per_proc`` drives the L_max rule.
    """
    config = config or MeasurementConfig()
    streams = streams or RandomStreams()
    fabric = fabric_factory()
    nprocs = fabric.topology.nprocs
    sizes = message_sizes(memory_per_proc, int_bits)
    lmax = lmax_for(memory_per_proc, int_bits)
    if config.scenario is not None:
        patterns = config.scenario.compile(nprocs, streams)
    else:
        patterns = make_patterns(nprocs, streams)

    ff: FastForwardSession | None = None
    if config.backend == "analytic":
        records = _run_analytic(fabric, patterns, sizes, config)
        skipped: tuple[str, ...] = ()
        flagged: tuple[str, ...] = ()
        failure = ""
        engine_mode = "analytic"
    else:
        # fault-active runs force the reference loops — the injected
        # capacity transitions break the orbit proof's premises
        if config.mode == "fast" and not config.faults:
            ff = FastForwardSession(fabric, nprocs)
        records, skipped, flagged, failure = _run_des(
            fabric, patterns, sizes, config, ff
        )
        engine_mode = "des-fast" if ff is not None else "des-reference"

    if skipped or flagged or failure:
        expected = {p.name: p.kind for p in patterns}
        agg, validity = analysis.aggregate_partial(
            records, NUM_SIZES, lmax, expected,
            skipped=skipped, flagged=flagged, failure=failure,
        )
    else:
        # undisturbed path: the exact seed aggregation, bit-identical
        agg = analysis.aggregate(records, NUM_SIZES, lmax)
        validity = VALID
    return BeffResult(
        nprocs=nprocs,
        memory_per_proc=memory_per_proc,
        lmax=lmax,
        sizes=sizes,
        backend=config.backend,
        records=records,
        b_eff=agg["b_eff"],
        b_eff_at_lmax=agg["b_eff_at_lmax"],
        ring_only_at_lmax=agg["ring_only_at_lmax"],
        per_pattern=agg["per_pattern"],
        logavg_ring=agg["logavg_ring"],
        logavg_random=agg["logavg_random"],
        validity=validity,
        fault_seed=config.faults.seed if config.faults else None,
        engine_mode=engine_mode,
        ff_loops_armed=ff.loops_armed if ff is not None else 0,
        ff_reps_skipped=ff.reps_skipped if ff is not None else 0,
    )


def _run_des(
    fabric: Fabric,
    patterns: list[CommPattern],
    sizes: list[int],
    config: MeasurementConfig,
    ff: FastForwardSession | None = None,
) -> tuple[list[MeasurementRecord], tuple[str, ...], tuple[str, ...], str]:
    """Run the event-driven backend.

    ``ff`` is the orbit fast-forward session for the timed repetition
    loops: detect an exactly periodic steady state and replay the
    remaining repetitions analytically (bit-identical loop times —
    see :mod:`repro.beff.fastforward`).  None simulates every
    repetition (the reference loops).
    """
    world = World(fabric)
    records: list[MeasurementRecord] = []
    skipped: list[str] = []
    flagged: list[str] = []
    failure = ""

    if config.faults:
        injector = FaultInjector(config.faults)
        injector.attach(fabric.sim, fabric=fabric)

    budget = config.pattern_budget

    def program(comm):
        prev_iteration_time: float | None = None
        for pattern in patterns:
            pattern_time = 0.0
            for size_index, size in enumerate(sizes):
                looplength = config.next_looplength(prev_iteration_time)
                for method in config.methods:
                    for rep in range(config.repetitions):
                        yield from comm.barrier()
                        t0 = comm.wtime()
                        if ff is None:
                            for _ in range(looplength):
                                yield from step(method, comm, pattern, size)
                        else:
                            loop = ff.loop_for(
                                (pattern.name, size, method, rep), looplength
                            )
                            reps = 0
                            while reps < looplength:
                                yield from step(method, comm, pattern, size)
                                reps += 1
                                if reps == looplength:
                                    break
                                skip = loop.boundary(comm.rank, reps, comm.wtime())
                                if skip is not None:
                                    target, landing = skip
                                    yield SleepUntil(target)
                                    reps = landing
                            loop.finish()
                        local = comm.wtime() - t0
                        elapsed = yield from comm.allreduce(8, local, max)
                        if elapsed <= 0:
                            raise RuntimeError(
                                f"zero-time measurement: {pattern.name} L={size} {method}"
                            )
                        prev_iteration_time = elapsed / looplength
                        if budget is not None:
                            pattern_time += elapsed
                        if comm.rank == 0:
                            bandwidth = (
                                size
                                * pattern.messages_per_iteration
                                * looplength
                                / elapsed
                            )
                            records.append(
                                MeasurementRecord(
                                    pattern=pattern.name,
                                    kind=pattern.kind,
                                    size=size,
                                    method=method,
                                    repetition=rep,
                                    looplength=looplength,
                                    time=elapsed,
                                    bandwidth=bandwidth,
                                )
                            )
                # ``pattern_time`` sums allreduced maxima, so it is
                # identical on every rank and the skip decision is
                # collective without extra messages (the clean-path
                # schedule is untouched).
                if budget is not None and pattern_time > budget:
                    if comm.rank == 0:
                        if size_index + 1 < len(sizes):
                            skipped.append(pattern.name)
                        else:
                            flagged.append(pattern.name)
                    break

    try:
        world.run(program, max_events=config.event_budget)
    except (DeadlockError, EventBudgetError) as exc:
        if not (config.faults or config.event_budget):
            raise
        failure = f"{type(exc).__name__}: {exc}"
    return records, tuple(skipped), tuple(flagged), failure


def _run_analytic(
    fabric: Fabric,
    patterns: list[CommPattern],
    sizes: list[int],
    config: MeasurementConfig,
) -> list[MeasurementRecord]:
    model = RoundModel(fabric)
    records: list[MeasurementRecord] = []
    # Same (pattern, size, method, repetition) schedule as the DES
    # backend; RoundModel memoises per (pattern, size, method), so the
    # repeated measurements (the model is noiseless — they are
    # identical by construction) cost one allocation, not R.
    for pattern in patterns:
        for size in sizes:
            for method in config.methods:
                for rep in range(config.repetitions):
                    elapsed = model.round_time(pattern, size, method)
                    if elapsed <= 0:
                        raise RuntimeError(
                            f"zero-time round: {pattern.name} L={size} {method}"
                        )
                    records.append(
                        MeasurementRecord(
                            pattern=pattern.name,
                            kind=pattern.kind,
                            size=size,
                            method=method,
                            repetition=rep,
                            looplength=1,
                            time=elapsed,
                            bandwidth=size * pattern.messages_per_iteration / elapsed,
                        )
                    )
    return records
