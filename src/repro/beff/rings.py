"""Ring-size computation for the six ring patterns (paper Sec. 4).

This ports the rules of ring_numbers.c [19]:

1. rings of 2, the last ring may be 3 (odd process counts);
2. standard ring size 4; <=7 processes form a single ring; remainders
   distribute as nearly-equal sizes (1*3, 1*5, 2*5 in the paper's
   notation);
3. standard ring size 8, remainders spread over sizes 7..9;
4. standard ring size min(max(16, n/4), n);
5. standard ring size min(max(32, n/2), n);
6. one ring containing all processes.

For patterns 2-6 the partition is "k = round(n / standard) rings of
nearly equal size" — reproducing the published example lists (e.g.
3*7 ... 4*9 for pattern 3).
"""

from __future__ import annotations

NUM_RING_PATTERNS = 6


def _even_partition(n: int, k: int) -> list[int]:
    """k nearly-equal positive parts of n, larger parts first."""
    base, rem = divmod(n, k)
    return [base + 1] * rem + [base] * (k - rem)


def ring_pattern_sizes(n: int, pattern: int) -> list[int]:
    """Ring sizes of ring pattern ``pattern`` (1-based, 1..6) for n processes."""
    if n < 2:
        raise ValueError("b_eff ring patterns need at least 2 processes")
    if not (1 <= pattern <= NUM_RING_PATTERNS):
        raise ValueError(f"ring pattern must be 1..{NUM_RING_PATTERNS}, got {pattern}")
    if pattern == 1:
        # rings of 2; an odd process count makes the last ring 3
        k = n // 2
        sizes = [2] * k
        if n % 2:
            sizes[-1] = 3
        return sizes
    if pattern == 6:
        return [n]
    standard = {
        2: 4,
        3: 8,
        4: min(max(16, n // 4), n),
        5: min(max(32, n // 2), n),
    }[pattern]
    if pattern == 2 and n <= 7:
        return [n]
    k = max(1, round(n / standard))
    # never create a ring smaller than 3 for the larger standards
    while k > 1 and n // k < 3:
        k -= 1
    return _even_partition(n, k)


def ring_partition(n: int, pattern: int) -> list[list[int]]:
    """Rings as consecutive index blocks [0..n) for the given pattern."""
    sizes = ring_pattern_sizes(n, pattern)
    rings = []
    start = 0
    for size in sizes:
        rings.append(list(range(start, start + size)))
        start += size
    assert start == n
    return rings
