"""Analytic round model: price b_eff rounds without running the DES.

For large rank counts (Table 1 goes to 512 processors) the full event
simulation of every (pattern, size, method) loop is expensive.  The
patterns b_eff averages are *synchronized rounds*: all messages start
together and — being equal-sized — mostly finish together, so a
one-shot max-min allocation prices a round almost exactly.  The DES
backend remains the reference; ``benchmarks/test_bench_ablations.py``
quantifies the (small) difference.

Per-message time = startup latency (+ rendezvous handshake above the
eager threshold) + L / rate, with rates from progressive filling over
the concurrent messages of the phase, honoring per-message caps
(shared-memory copy limit, protocol limit) by iterated fixing.

Rates are *size-independent*: progressive filling sees only routes,
capacities and per-message caps, never the byte count.  Each phase is
therefore priced through a memoised :class:`_PhasePlan` — routes
resolved, CSR incidence built and the capped max-min solved exactly
once per (pattern, method[, stride]), with every message size then
evaluated as a vectorized ``max(latency + L / rate)`` pass.  The
allocation itself runs on :class:`repro.sim.kernel.RouteIncidence`
with ``tie_counts="live"`` — bit-identical to
:func:`repro.sim.fluid.maxmin_allocate`, which :func:`_capped_maxmin`
below retains as the reference oracle (the property tests pin the
plan path against it).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.beff.patterns import CommPattern
from repro.net.model import Fabric
from repro.sim.fluid import maxmin_allocate
from repro.sim.kernel import FloatArray, RouteIncidence
from repro.topology.base import Route


def _capped_maxmin(
    capacities: dict[int, float],
    routes: list[tuple[int, ...]],
    caps: list[float | None],
) -> list[float]:
    """Max-min rates where flow i may not exceed ``caps[i]``.

    Iterated fixing: allocate, clamp violators to their cap, charge
    their usage to the links, repeat on the rest — the standard way to
    fold per-flow rate limits into progressive filling.
    """
    n = len(routes)
    rates: list[float | None] = [None] * n
    residual = dict(capacities)
    active = list(range(n))
    while active:
        alloc = maxmin_allocate(residual, [routes[i] for i in active])
        violators = [
            (idx, i)
            for idx, i in enumerate(active)
            if caps[i] is not None and alloc[idx] > caps[i]
        ]
        if not violators:
            for idx, i in enumerate(active):
                rates[i] = alloc[idx]
            break
        for _idx, i in violators:
            rates[i] = caps[i]
            for link_id in routes[i]:
                residual[link_id] = max(1e-12, residual[link_id] - caps[i])
        fixed = {i for _idx, i in violators}
        active = [i for i in active if i not in fixed]
    return [r if r is not None else 0.0 for r in rates]


def _capped_maxmin_inc(
    incidence: RouteIncidence,
    capacities: FloatArray,
    caps: list[float | None],
) -> list[float]:
    """:func:`_capped_maxmin` evaluated on a prebuilt incidence.

    Bit-identical by construction: the kernel's ``active`` mask
    reproduces calling the oracle on the active sub-list, the violator
    scan compares the same floats in the same ascending-flow order,
    and the residual clamp applies the identical
    ``max(1e-12, residual - cap)`` per route entry in route order.
    """
    n = incidence.n_flows
    rates = [0.0] * n
    residual = capacities.astype(np.float64, copy=True)
    active = np.ones(n, dtype=bool)
    fptr, fcols = incidence.flow_ptr, incidence.flow_cols
    while bool(active.any()):
        alloc = incidence.solve(residual, active=active, tie_counts="live")
        live = np.nonzero(active)[0].tolist()
        violators = [i for i in live if caps[i] is not None and alloc[i] > caps[i]]
        if not violators:
            for i in live:
                rates[i] = float(alloc[i])
            break
        for i in violators:
            cap = caps[i]
            assert cap is not None
            rates[i] = cap
            for col in fcols[fptr[i]:fptr[i + 1]].tolist():
                residual[col] = max(1e-12, float(residual[col]) - cap)
        active[violators] = False
    return rates


class _PhasePlan:
    """Size-independent pricing plan for one concurrent message phase.

    Built once per memoised phase from ``(src, dst, multiplicity)``
    message structure: routes resolved, per-message latencies for both
    protocol regimes precomputed, and the capped max-min solved on the
    CSR incidence.  :meth:`time_for` then prices any message size with
    one vectorized pass — every float operation identical to
    :meth:`RoundModel.phase_time` on the expanded message list.
    """

    __slots__ = (
        "fabric",
        "rates",
        "lat_eager",
        "lat_rdv",
        "mults",
        "mult_groups",
        "zero_msgs",
        "n_priced",
    )

    def __init__(
        self, model: "RoundModel", messages: list[tuple[int, int, int]]
    ) -> None:
        self.fabric = model.fabric
        routes: list[tuple[int, ...]] = []
        caps: list[float | None] = []
        lat_e: list[float] = []
        lat_r: list[float] = []
        mults: list[int] = []
        #: messages with no links (self/intra): (lat_eager, lat_rdv, mult)
        self.zero_msgs: list[tuple[float, float, int]] = []
        for src, dst, mult in messages:
            route = model._route(src, dst)
            le = self.fabric.startup_latency(route)
            lr = le + self.fabric.rendezvous_delay(route)
            if not route.links:
                self.zero_msgs.append((le, lr, mult))
                continue
            routes.append(route.links)
            caps.append(self.fabric.rate_cap_for(route))
            lat_e.append(le)
            lat_r.append(lr)
            mults.append(mult)
        self.n_priced = len(routes)
        if self.n_priced:
            incidence = RouteIncidence(routes)
            cap_arr = np.asarray(
                [model._capacities[link] for link in incidence.link_ids],
                dtype=np.float64,
            )
            self.rates = np.asarray(
                _capped_maxmin_inc(incidence, cap_arr, caps), dtype=np.float64
            )
            self.lat_eager = np.asarray(lat_e, dtype=np.float64)
            self.lat_rdv = np.asarray(lat_r, dtype=np.float64)
            self.mults = np.asarray(mults, dtype=np.int64)
            # eagerness depends on the per-message byte count
            # (multiplicity x L), so group messages by multiplicity —
            # one is_eager call per distinct value per size
            self.mult_groups = {
                int(m): self.mults == m for m in np.unique(self.mults)
            }

    def time_for(self, nbytes: int) -> float:
        """Phase time for per-neighbor message size ``nbytes`` (>= 1)."""
        zero_latency = 0.0
        for le, lr, mult in self.zero_msgs:
            lat = le if self.fabric.is_eager(mult * nbytes) else lr
            zero_latency = max(zero_latency, lat)
        if not self.n_priced:
            return zero_latency
        eager = np.empty(self.n_priced, dtype=bool)
        for mult, group in self.mult_groups.items():
            eager[group] = self.fabric.is_eager(mult * nbytes)
        lat = np.where(eager, self.lat_eager, self.lat_rdv)
        longest = float(np.max(lat + (self.mults * nbytes) / self.rates))
        return max(longest, zero_latency)


class RoundModel:
    """Prices message phases on one fabric.

    All pattern-derived structure is memoised: routes per rank pair,
    the ring message lists and alltoallv stride table per pattern, and
    the final :meth:`round_time` per (pattern, size, method).
    Repetition loops and parameter sweeps therefore pay for each
    distinct allocation once (``CommPattern`` is a frozen dataclass,
    so patterns hash by value and equal patterns share cache lines).
    """

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.topology = fabric.topology
        self._capacities = {
            link_id: fabric.flows.link(link_id).capacity
            for link_id in range(fabric.flows.num_links)
        }
        self._route_cache: dict[tuple[int, int], Route] = {}
        self._round_cache: dict[tuple[CommPattern, int, str], float] = {}
        self._ring_messages_cache: dict[CommPattern, tuple[list, list, list]] = {}
        #: pattern -> (stride -> [(src, dst, messages-per-neighbor)])
        self._stride_cache: dict[CommPattern, dict[int, list[tuple[int, int, int]]]] = {}
        #: (pattern, method[, phase/stride]) -> solved phase plan
        self._plan_cache: dict[tuple, _PhasePlan] = {}

    def _route(self, src: int, dst: int) -> Route:
        key = (src, dst)
        r = self._route_cache.get(key)
        if r is None:
            r = self._route_cache[key] = self.topology.route(src, dst)
        return r

    def _message_latency(self, route: Route, nbytes: int) -> float:
        latency = self.fabric.startup_latency(route)
        if not self.fabric.is_eager(nbytes):
            latency += self.fabric.rendezvous_delay(route)
        return latency

    def phase_time(self, messages: list[tuple[int, int, int]]) -> float:
        """Time for a phase of concurrent (src, dst, nbytes) messages."""
        if not messages:
            return 0.0
        routes = []
        caps = []
        metas = []
        zero_latency = 0.0
        for src, dst, nbytes in messages:
            route = self._route(src, dst)
            latency = self._message_latency(route, nbytes)
            if nbytes == 0 or not route.links:
                zero_latency = max(zero_latency, latency)
                continue
            routes.append(route.links)
            caps.append(self.fabric.rate_cap_for(route))
            metas.append((latency, nbytes))
        if not routes:
            return zero_latency
        rates = _capped_maxmin(self._capacities, routes, caps)
        longest = max(
            latency + nbytes / rate
            for (latency, nbytes), rate in zip(metas, rates)
        )
        return max(longest, zero_latency)

    # -- the three methods ---------------------------------------------------

    def _ring_messages(self, pattern: CommPattern) -> tuple[list, list, list]:
        """(leftward, rightward, two_ring_pairs) message lists."""
        cached = self._ring_messages_cache.get(pattern)
        if cached is not None:
            return cached
        leftward, rightward, pairs = [], [], []
        for ring in pattern.rings:
            k = len(ring)
            for i, rank in enumerate(ring):
                left = ring[(i - 1) % k]
                right = ring[(i + 1) % k]
                if k == 2:
                    pairs.append((rank, left))
                    pairs.append((rank, right))
                else:
                    leftward.append((rank, left))
                    rightward.append((rank, right))
        self._ring_messages_cache[pattern] = (leftward, rightward, pairs)
        return leftward, rightward, pairs

    def round_time(self, pattern: CommPattern, nbytes: int, method: str) -> float:
        key = (pattern, nbytes, method)
        cached = self._round_cache.get(key)
        if cached is None:
            cached = self._round_cache[key] = self._round_time(pattern, nbytes, method)
        return cached

    def _plan(
        self, key: tuple, messages: list[tuple[int, int, int]]
    ) -> _PhasePlan:
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self._plan_cache[key] = _PhasePlan(self, messages)
        return plan

    def _round_time(self, pattern: CommPattern, nbytes: int, method: str) -> float:
        if method == "nonblocking":
            left, right, pairs = self._ring_messages(pattern)
            plan = self._plan(
                (pattern, "nonblocking"),
                [(s, d, 1) for s, d in left + right + pairs],
            )
            return plan.time_for(nbytes)
        if method == "sendrecv":
            left, right, pairs = self._ring_messages(pattern)
            # phase 1: leftward messages; 2-rings send both in parallel
            plan1 = self._plan(
                (pattern, "sendrecv", 1), [(s, d, 1) for s, d in left + pairs]
            )
            plan2 = self._plan(
                (pattern, "sendrecv", 2), [(s, d, 1) for s, d in right]
            )
            return plan1.time_for(nbytes) + plan2.time_for(nbytes)
        if method == "alltoallv":
            return self._alltoallv_time(pattern, nbytes)
        raise ValueError(f"unknown method {method!r}")

    def _alltoallv_strides(
        self, pattern: CommPattern
    ) -> dict[int, list[tuple[int, int, int]]]:
        """stride -> [(src, dst, neighbor multiplicity)]; size-independent."""
        cached = self._stride_cache.get(pattern)
        if cached is not None:
            return cached
        n = pattern.nprocs
        by_stride: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
        counts: dict[tuple[int, int], int] = defaultdict(int)
        for ring in pattern.rings:
            k = len(ring)
            for i, rank in enumerate(ring):
                counts[(rank, ring[(i - 1) % k])] += 1
                counts[(rank, ring[(i + 1) % k])] += 1
        for (src, dst), mult in counts.items():
            stride = (dst - src) % n
            if stride == 0:
                continue  # self message: local copy, negligible here
            by_stride[stride].append((src, dst, mult))
        self._stride_cache[pattern] = by_stride
        return by_stride

    def _alltoallv_time(self, pattern: CommPattern, nbytes: int) -> float:
        """Pairwise exchange: n-1 steps; data only at neighbor strides."""
        n = pattern.nprocs
        by_stride = self._alltoallv_strides(pattern)
        # every step pays at least one sendrecv latency; steps whose
        # stride carries data additionally pay the transfer
        empty_route = self._route(0, 1 % n) if n > 1 else None
        base_latency = (
            self._message_latency(empty_route, 0) if empty_route is not None else 0.0
        )
        # one solved plan per data-carrying stride; the n-1 step loop
        # stays sequential (the sum's accumulation order is part of
        # the bit-identity contract)
        step_times = {
            step: self._plan((pattern, "alltoallv", step), msgs).time_for(nbytes)
            for step, msgs in by_stride.items()
        }
        total = 0.0
        for step in range(1, n):
            phase = step_times.get(step)
            if phase is not None:
                total += max(phase, base_latency)
            else:
                total += base_latency
        return total
