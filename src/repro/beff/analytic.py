"""Analytic round model: price b_eff rounds without running the DES.

For large rank counts (Table 1 goes to 512 processors) the full event
simulation of every (pattern, size, method) loop is expensive.  The
patterns b_eff averages are *synchronized rounds*: all messages start
together and — being equal-sized — mostly finish together, so a
one-shot max-min allocation prices a round almost exactly.  The DES
backend remains the reference; ``benchmarks/test_bench_ablations.py``
quantifies the (small) difference.

Per-message time = startup latency (+ rendezvous handshake above the
eager threshold) + L / rate, with rates from progressive filling over
the concurrent messages of the phase, honoring per-message caps
(shared-memory copy limit, protocol limit) by iterated fixing.
"""

from __future__ import annotations

from collections import defaultdict

from repro.beff.patterns import CommPattern
from repro.net.model import Fabric
from repro.sim.fluid import maxmin_allocate
from repro.topology.base import Route


def _capped_maxmin(
    capacities: dict[int, float],
    routes: list[tuple[int, ...]],
    caps: list[float | None],
) -> list[float]:
    """Max-min rates where flow i may not exceed ``caps[i]``.

    Iterated fixing: allocate, clamp violators to their cap, charge
    their usage to the links, repeat on the rest — the standard way to
    fold per-flow rate limits into progressive filling.
    """
    n = len(routes)
    rates: list[float | None] = [None] * n
    residual = dict(capacities)
    active = list(range(n))
    while active:
        alloc = maxmin_allocate(residual, [routes[i] for i in active])
        violators = [
            (idx, i)
            for idx, i in enumerate(active)
            if caps[i] is not None and alloc[idx] > caps[i]
        ]
        if not violators:
            for idx, i in enumerate(active):
                rates[i] = alloc[idx]
            break
        for _idx, i in violators:
            rates[i] = caps[i]
            for link_id in routes[i]:
                residual[link_id] = max(1e-12, residual[link_id] - caps[i])
        fixed = {i for _idx, i in violators}
        active = [i for i in active if i not in fixed]
    return [r if r is not None else 0.0 for r in rates]


class RoundModel:
    """Prices message phases on one fabric.

    All pattern-derived structure is memoised: routes per rank pair,
    the ring message lists and alltoallv stride table per pattern, and
    the final :meth:`round_time` per (pattern, size, method).
    Repetition loops and parameter sweeps therefore pay for each
    distinct allocation once (``CommPattern`` is a frozen dataclass,
    so patterns hash by value and equal patterns share cache lines).
    """

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.topology = fabric.topology
        self._capacities = {
            link_id: fabric.flows.link(link_id).capacity
            for link_id in range(fabric.flows.num_links)
        }
        self._route_cache: dict[tuple[int, int], Route] = {}
        self._round_cache: dict[tuple[CommPattern, int, str], float] = {}
        self._ring_messages_cache: dict[CommPattern, tuple[list, list, list]] = {}
        #: pattern -> (stride -> [(src, dst, messages-per-neighbor)])
        self._stride_cache: dict[CommPattern, dict[int, list[tuple[int, int, int]]]] = {}

    def _route(self, src: int, dst: int) -> Route:
        key = (src, dst)
        r = self._route_cache.get(key)
        if r is None:
            r = self._route_cache[key] = self.topology.route(src, dst)
        return r

    def _message_latency(self, route: Route, nbytes: int) -> float:
        latency = self.fabric.startup_latency(route)
        if not self.fabric.is_eager(nbytes):
            latency += self.fabric.rendezvous_delay(route)
        return latency

    def phase_time(self, messages: list[tuple[int, int, int]]) -> float:
        """Time for a phase of concurrent (src, dst, nbytes) messages."""
        if not messages:
            return 0.0
        routes = []
        caps = []
        metas = []
        zero_latency = 0.0
        for src, dst, nbytes in messages:
            route = self._route(src, dst)
            latency = self._message_latency(route, nbytes)
            if nbytes == 0 or not route.links:
                zero_latency = max(zero_latency, latency)
                continue
            routes.append(route.links)
            caps.append(self.fabric.rate_cap_for(route))
            metas.append((latency, nbytes))
        if not routes:
            return zero_latency
        rates = _capped_maxmin(self._capacities, routes, caps)
        longest = max(
            latency + nbytes / rate
            for (latency, nbytes), rate in zip(metas, rates)
        )
        return max(longest, zero_latency)

    # -- the three methods ---------------------------------------------------

    def _ring_messages(self, pattern: CommPattern) -> tuple[list, list, list]:
        """(leftward, rightward, two_ring_pairs) message lists."""
        cached = self._ring_messages_cache.get(pattern)
        if cached is not None:
            return cached
        leftward, rightward, pairs = [], [], []
        for ring in pattern.rings:
            k = len(ring)
            for i, rank in enumerate(ring):
                left = ring[(i - 1) % k]
                right = ring[(i + 1) % k]
                if k == 2:
                    pairs.append((rank, left))
                    pairs.append((rank, right))
                else:
                    leftward.append((rank, left))
                    rightward.append((rank, right))
        self._ring_messages_cache[pattern] = (leftward, rightward, pairs)
        return leftward, rightward, pairs

    def round_time(self, pattern: CommPattern, nbytes: int, method: str) -> float:
        key = (pattern, nbytes, method)
        cached = self._round_cache.get(key)
        if cached is None:
            cached = self._round_cache[key] = self._round_time(pattern, nbytes, method)
        return cached

    def _round_time(self, pattern: CommPattern, nbytes: int, method: str) -> float:
        if method == "nonblocking":
            left, right, pairs = self._ring_messages(pattern)
            msgs = [(s, d, nbytes) for s, d in left + right + pairs]
            return self.phase_time(msgs)
        if method == "sendrecv":
            left, right, pairs = self._ring_messages(pattern)
            # phase 1: leftward messages; 2-rings send both in parallel
            phase1 = [(s, d, nbytes) for s, d in left + pairs]
            phase2 = [(s, d, nbytes) for s, d in right]
            return self.phase_time(phase1) + self.phase_time(phase2)
        if method == "alltoallv":
            return self._alltoallv_time(pattern, nbytes)
        raise ValueError(f"unknown method {method!r}")

    def _alltoallv_strides(
        self, pattern: CommPattern
    ) -> dict[int, list[tuple[int, int, int]]]:
        """stride -> [(src, dst, neighbor multiplicity)]; size-independent."""
        cached = self._stride_cache.get(pattern)
        if cached is not None:
            return cached
        n = pattern.nprocs
        by_stride: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
        counts: dict[tuple[int, int], int] = defaultdict(int)
        for ring in pattern.rings:
            k = len(ring)
            for i, rank in enumerate(ring):
                counts[(rank, ring[(i - 1) % k])] += 1
                counts[(rank, ring[(i + 1) % k])] += 1
        for (src, dst), mult in counts.items():
            stride = (dst - src) % n
            if stride == 0:
                continue  # self message: local copy, negligible here
            by_stride[stride].append((src, dst, mult))
        self._stride_cache[pattern] = by_stride
        return by_stride

    def _alltoallv_time(self, pattern: CommPattern, nbytes: int) -> float:
        """Pairwise exchange: n-1 steps; data only at neighbor strides."""
        n = pattern.nprocs
        by_stride = self._alltoallv_strides(pattern)
        # every step pays at least one sendrecv latency; steps whose
        # stride carries data additionally pay the transfer
        empty_route = self._route(0, 1 % n) if n > 1 else None
        base_latency = (
            self._message_latency(empty_route, 0) if empty_route is not None else 0.0
        )
        total = 0.0
        for step in range(1, n):
            msgs = by_stride.get(step)
            if msgs:
                phase = [(src, dst, mult * nbytes) for src, dst, mult in msgs]
                total += max(self.phase_time(phase), base_latency)
            else:
                total += base_latency
        return total
