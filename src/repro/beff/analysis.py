"""Aggregation of b_eff measurements (the formula of paper Sec. 4).

b_eff = logavg( logavg_ringpatterns( sum_L( max_mthd( max_rep(b) )) / 21 ),
                logavg_randompatterns( ... ) )

The two-step average guarantees ring and random patterns are weighted
equally regardless of their counts; the per-size average is a plain
arithmetic mean over the 21-value ladder (equidistant abscissa).

The formula itself lives in :mod:`repro.runtime.formulas` as a
declarative reduction tree; this module maps
:class:`~repro.beff.measurement.MeasurementRecord` lists onto keyed
leaves, evaluates the tree, and keeps the legacy function surface as
thin shims.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.beff.measurement import MeasurementRecord
from repro.faults.validity import RunValidity, classify
from repro.runtime.formulas import beff_at_lmax_formula, beff_formula
from repro.runtime.reduce import Formula, Key, Reduce, evaluate, evaluate_partial
from repro.util import logavg


def best_bandwidths(
    records: Iterable[MeasurementRecord],
) -> dict[tuple[str, int], float]:
    """max over methods and repetitions, keyed by (pattern, size)."""
    best: dict[tuple[str, int], float] = {}
    for rec in records:
        key = (rec.pattern, rec.size)
        if rec.bandwidth > best.get(key, 0.0):
            best[key] = rec.bandwidth
    return best


def _leaves(
    records: Iterable[MeasurementRecord],
    kinds: dict[str, str] | None = None,
) -> list[tuple[Key, float]]:
    """Records as formula leaves keyed (kind, pattern, size, method, rep)."""
    return [
        (
            (
                kinds.get(rec.pattern, rec.kind) if kinds is not None else rec.kind,
                rec.pattern,
                rec.size,
                rec.method,
                rec.repetition,
            ),
            rec.bandwidth,
        )
        for rec in records
    ]


def per_pattern_averages(
    records: Iterable[MeasurementRecord], num_sizes: int
) -> dict[str, float]:
    """sum_L(max_mthd(max_rep(b))) / num_sizes for every pattern."""
    formula = Formula(
        "per_pattern",
        (
            Reduce("logavg", over="pattern"),
            Reduce("mean", over="size", count=num_sizes),
            Reduce("max", over="method"),
            Reduce("max", over="repetition"),
        ),
    )
    leaves = [(key[1:], bw) for key, bw in _leaves(records)]
    ev = evaluate(formula, leaves)
    return {pattern: value for (pattern,), value in ev.table("size").items()}


def _kind_of(records: Iterable[MeasurementRecord]) -> dict[str, str]:
    kinds: dict[str, str] = {}
    for rec in records:
        prev = kinds.setdefault(rec.pattern, rec.kind)
        if prev != rec.kind:
            raise ValueError(f"pattern {rec.pattern!r} has inconsistent kinds")
    return kinds


def two_step_logavg(values_by_kind: dict[str, list[float]]) -> float:
    """logavg of the per-kind logavgs (ring and random weighted equally)."""
    ring = values_by_kind.get("ring", [])
    random = values_by_kind.get("random", [])
    if not ring or not random:
        raise ValueError("need both ring and random patterns for b_eff")
    return logavg([logavg(ring), logavg(random)])


def aggregate(records: list[MeasurementRecord], num_sizes: int, lmax: int) -> dict:
    """Compute the b_eff summary values from raw records.

    Returns a dict with keys ``b_eff``, ``b_eff_at_lmax``,
    ``ring_only_at_lmax``, ``per_pattern`` and the per-kind logavgs —
    everything Table 1 needs except the per-processor divisions.
    """
    if not records:
        raise ValueError("no measurements to aggregate")
    kinds = _kind_of(records)

    leaves = _leaves(records, kinds)
    ev = evaluate(beff_formula(num_sizes), leaves)
    at_lmax_leaves = [
        (key[:2] + key[3:], bw) for key, bw in leaves if key[2] == lmax
    ]
    ev_lmax = evaluate(beff_at_lmax_formula(), at_lmax_leaves)

    per_pattern = {
        pattern: value for (_kind, pattern), value in ev.table("size").items()
    }
    return {
        "b_eff": ev.value,
        "b_eff_at_lmax": ev_lmax.value,
        "ring_only_at_lmax": ev_lmax.table("pattern")[("ring",)],
        "per_pattern": per_pattern,
        "logavg_ring": ev.table("pattern")[("ring",)],
        "logavg_random": ev.table("pattern")[("random",)],
    }


def aggregate_partial(
    records: list[MeasurementRecord],
    num_sizes: int,
    lmax: int,
    expected: dict[str, str],
    skipped: tuple[str, ...] = (),
    flagged: tuple[str, ...] = (),
    failure: str = "",
) -> tuple[dict, RunValidity]:
    """Best-effort :func:`aggregate` over an incomplete measurement set.

    ``expected`` maps every scheduled pattern name to its kind; a
    pattern missing any of its ``num_sizes`` best values counts as
    skipped.  Every b_eff pattern is an *averaged* component, so any
    skipped pattern makes the aggregates incomputable (``nan``) and
    the run ``invalid`` — but the per-pattern partials of complete
    patterns survive, bit-identical to what :func:`aggregate` would
    have produced for them.  A structurally complete set that was
    merely ``flagged`` (over budget) or interrupted after the last
    record (``failure``) is ``degraded`` with exact aggregates.
    """
    nan = math.nan
    components = [(kind, pattern) for pattern, kind in expected.items()]
    leaves = _leaves(records, expected)

    ev = evaluate_partial(beff_formula(num_sizes), leaves, components)
    at_lmax_leaves = [
        (key[:2] + key[3:], bw) for key, bw in leaves if key[2] == lmax
    ]
    ev_lmax = evaluate_partial(beff_at_lmax_formula(), at_lmax_leaves, components)

    per_pattern = {pattern: value for (_kind, pattern), value in ev.components.items()}
    missing = tuple(pattern for _kind, pattern in ev.missing)

    agg = {
        "b_eff": ev.value,
        "b_eff_at_lmax": ev_lmax.value,
        "ring_only_at_lmax": ev_lmax.table("pattern").get(("ring",), nan),
        "per_pattern": per_pattern,
        "logavg_ring": ev.table("pattern").get(("ring",), nan),
        "logavg_random": ev.table("pattern").get(("random",), nan),
    }

    all_skipped = tuple(dict.fromkeys(tuple(skipped) + missing))
    validity = classify(all_skipped, tuple(flagged), failure)
    return agg, validity


def balance_factor(b_eff_bytes_per_s: float, rmax_flops: float) -> float:
    """Fig. 1's metric: b_eff / R_max in bytes per floating-point op."""
    if rmax_flops <= 0:
        raise ValueError("R_max must be positive")
    return b_eff_bytes_per_s / rmax_flops
