"""Aggregation of b_eff measurements (the formula of paper Sec. 4).

b_eff = logavg( logavg_ringpatterns( sum_L( max_mthd( max_rep(b) )) / 21 ),
                logavg_randompatterns( ... ) )

The two-step average guarantees ring and random patterns are weighted
equally regardless of their counts; the per-size average is a plain
arithmetic mean over the 21-value ladder (equidistant abscissa).
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable

from repro.beff.measurement import MeasurementRecord
from repro.faults.validity import VALID, RunValidity
from repro.util import logavg


def best_bandwidths(
    records: Iterable[MeasurementRecord],
) -> dict[tuple[str, int], float]:
    """max over methods and repetitions, keyed by (pattern, size)."""
    best: dict[tuple[str, int], float] = {}
    for rec in records:
        key = (rec.pattern, rec.size)
        if rec.bandwidth > best.get(key, 0.0):
            best[key] = rec.bandwidth
    return best


def per_pattern_averages(
    records: Iterable[MeasurementRecord], num_sizes: int
) -> dict[str, float]:
    """sum_L(max_mthd(max_rep(b))) / num_sizes for every pattern."""
    best = best_bandwidths(records)
    sums: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for (pattern, _size), bw in best.items():
        sums[pattern] += bw
        counts[pattern] += 1
    out = {}
    for pattern, total in sums.items():
        if counts[pattern] != num_sizes:
            raise ValueError(
                f"pattern {pattern!r} has {counts[pattern]} sizes, expected {num_sizes}"
            )
        out[pattern] = total / num_sizes
    return out


def _kind_of(records: Iterable[MeasurementRecord]) -> dict[str, str]:
    kinds: dict[str, str] = {}
    for rec in records:
        prev = kinds.setdefault(rec.pattern, rec.kind)
        if prev != rec.kind:
            raise ValueError(f"pattern {rec.pattern!r} has inconsistent kinds")
    return kinds


def two_step_logavg(values_by_kind: dict[str, list[float]]) -> float:
    """logavg of the per-kind logavgs (ring and random weighted equally)."""
    ring = values_by_kind.get("ring", [])
    random = values_by_kind.get("random", [])
    if not ring or not random:
        raise ValueError("need both ring and random patterns for b_eff")
    return logavg([logavg(ring), logavg(random)])


def aggregate(records: list[MeasurementRecord], num_sizes: int, lmax: int) -> dict:
    """Compute the b_eff summary values from raw records.

    Returns a dict with keys ``b_eff``, ``b_eff_at_lmax``,
    ``ring_only_at_lmax``, ``per_pattern`` and the per-kind logavgs —
    everything Table 1 needs except the per-processor divisions.
    """
    if not records:
        raise ValueError("no measurements to aggregate")
    kinds = _kind_of(records)

    per_pattern = per_pattern_averages(records, num_sizes)
    by_kind: dict[str, list[float]] = defaultdict(list)
    for pattern, value in per_pattern.items():
        by_kind[kinds[pattern]].append(value)
    b_eff = two_step_logavg(by_kind)

    best = best_bandwidths(records)
    at_lmax_by_kind: dict[str, list[float]] = defaultdict(list)
    for (pattern, size), bw in best.items():
        if size == lmax:
            at_lmax_by_kind[kinds[pattern]].append(bw)
    b_eff_at_lmax = two_step_logavg(at_lmax_by_kind)
    ring_only_at_lmax = logavg(at_lmax_by_kind["ring"])

    return {
        "b_eff": b_eff,
        "b_eff_at_lmax": b_eff_at_lmax,
        "ring_only_at_lmax": ring_only_at_lmax,
        "per_pattern": dict(per_pattern),
        "logavg_ring": logavg(by_kind["ring"]),
        "logavg_random": logavg(by_kind["random"]),
    }


def aggregate_partial(
    records: list[MeasurementRecord],
    num_sizes: int,
    lmax: int,
    expected: dict[str, str],
    skipped: tuple[str, ...] = (),
    flagged: tuple[str, ...] = (),
    failure: str = "",
) -> tuple[dict, RunValidity]:
    """Best-effort :func:`aggregate` over an incomplete measurement set.

    ``expected`` maps every scheduled pattern name to its kind; a
    pattern missing any of its ``num_sizes`` best values counts as
    skipped.  Every b_eff pattern is an *averaged* component, so any
    skipped pattern makes the aggregates incomputable (``nan``) and
    the run ``invalid`` — but the per-pattern partials of complete
    patterns survive, bit-identical to what :func:`aggregate` would
    have produced for them.  A structurally complete set that was
    merely ``flagged`` (over budget) or interrupted after the last
    record (``failure``) is ``degraded`` with exact aggregates.
    """
    nan = math.nan
    best = best_bandwidths(records)
    sums: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for (pattern, _size), bw in best.items():
        sums[pattern] += bw
        counts[pattern] += 1
    # per-pattern values in record (schedule) order, complete patterns only
    per_pattern = {
        pattern: sums[pattern] / num_sizes
        for pattern in sums
        if counts[pattern] == num_sizes and pattern in expected
    }
    missing = tuple(p for p in expected if p not in per_pattern)

    by_kind: dict[str, list[float]] = defaultdict(list)
    for pattern, value in per_pattern.items():
        by_kind[expected[pattern]].append(value)
    at_lmax_by_kind: dict[str, list[float]] = defaultdict(list)
    have_lmax = set()
    for (pattern, size), bw in best.items():
        if size == lmax and pattern in expected:
            at_lmax_by_kind[expected[pattern]].append(bw)
            have_lmax.add(pattern)

    complete = not missing
    ring_patterns = {p for p, k in expected.items() if k == "ring"}
    agg = {
        "b_eff": two_step_logavg(by_kind) if complete else nan,
        "b_eff_at_lmax": (
            two_step_logavg(at_lmax_by_kind)
            if have_lmax >= set(expected)
            else nan
        ),
        "ring_only_at_lmax": (
            logavg(at_lmax_by_kind["ring"])
            if ring_patterns and have_lmax >= ring_patterns
            else nan
        ),
        "per_pattern": dict(per_pattern),
        "logavg_ring": logavg(by_kind["ring"]) if by_kind.get("ring") else nan,
        "logavg_random": logavg(by_kind["random"]) if by_kind.get("random") else nan,
    }

    all_skipped = tuple(dict.fromkeys(tuple(skipped) + missing))
    if all_skipped:
        state = "invalid"
    elif flagged or failure:
        state = "degraded"
    else:
        state = "valid"
    validity = (
        VALID
        if state == "valid"
        else RunValidity(state, skipped=all_skipped, flagged=tuple(flagged), reason=failure)
    )
    return agg, validity


def balance_factor(b_eff_bytes_per_s: float, rmax_flops: float) -> float:
    """Fig. 1's metric: b_eff / R_max in bytes per floating-point op."""
    if rmax_flops <= 0:
        raise ValueError("R_max must be positive")
    return b_eff_bytes_per_s / rmax_flops
