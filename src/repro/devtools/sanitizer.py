"""Runtime nondeterminism sanitizer for the event engine.

Static analysis (:mod:`repro.devtools.lint`) catches the *sources* of
nondeterminism it can see; this module catches the *symptom* it
cannot: same-timestamp events whose handlers do not commute.  The
engine's ``(time, tie_key, seq)`` ordering makes every run
reproducible, but reproducible is not the same as *robust* — a
simulation whose result depends on the FIFO order of two events at
the same virtual instant is one refactor away from silently changing
every published number.

Two complementary checks:

**Trace diffing** (:func:`compare_traces`, :func:`check_determinism`)
    An instrumented :class:`~repro.sim.engine.Simulator` records an
    ``(time, seq, callback-qualname)`` triple per executed event.
    Comparing the traces of two runs pinpoints the first virtual
    instant where the event streams diverge — between two *identical*
    runs any divergence is a genuine nondeterminism bug (an unseeded
    RNG, an id()-keyed dict, ...).

**Tie shuffling** (:func:`check_commutativity`)
    Re-running under a seed-derived permutation of same-time
    tie-breakers *proves* handler commutativity: if the benchmark
    numbers are bit-identical for every shuffle seed, no result
    depends on arrival order within an instant.  If they differ, the
    reported divergences name the timestamps and handlers to inspect.

Instrumentation is opt-in and scoped: inside :func:`sanitized`, every
``Simulator`` constructed anywhere (machine factories build their
own) is instrumented; outside, the engine pays one ``is None`` test
per event.  The environment toggle ``REPRO_TIE_SHUFFLE=<seed>``
applies the shuffle to un-instrumented runs (e.g. an entire CLI
invocation), and ``repro-beff --sanitize`` / ``repro-beffio
--sanitize`` run the commutativity check end to end.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

from repro.sim import engine as _engine
from repro.sim.engine import Simulator


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One executed event: virtual time, schedule sequence, handler name."""

    time: float
    seq: int
    label: str


def _label(callback: Callable[[], None]) -> str:
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return str(qualname)
    func = getattr(callback, "func", None)  # functools.partial
    if func is not None:
        return f"partial({_label(func)})"
    return type(callback).__name__


class EventTrace:
    """The ordered event stream of one instrumented simulator."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[EventRecord] = []

    def append(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.records.append(EventRecord(time, seq, _label(callback)))

    def groups(self) -> list[tuple[float, tuple[str, ...]]]:
        """Consecutive same-timestamp runs as (time, handler labels)."""
        return [
            (time, tuple(r.label for r in records))
            for time, records in self.record_groups()
        ]

    def record_groups(self) -> list[tuple[float, tuple[EventRecord, ...]]]:
        """Consecutive same-timestamp runs as (time, records).

        Virtual time is monotone, so grouping consecutive records
        partitions the trace by instant; a group of length > 1 is a
        tie the engine broke by sequence number (or by shuffle key).
        """
        out: list[tuple[float, tuple[EventRecord, ...]]] = []
        batch: list[EventRecord] = []
        current = 0.0
        for record in self.records:
            if batch and record.time != current:
                out.append((current, tuple(batch)))
                batch = []
            current = record.time
            batch.append(record)
        if batch:
            out.append((current, tuple(batch)))
        return out

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True, slots=True)
class TieDivergence:
    """Two runs disagreed about the events at one virtual instant.

    ``kind == "order"``: the same handlers ran in a different relative
    order — the signature of a tie-break dependency probe.
    ``kind == "content"``: different handlers (or counts) ran — the
    runs' event streams genuinely forked at or before this instant.
    """

    time: float
    before: tuple[str, ...]
    after: tuple[str, ...]
    kind: str

    def describe(self) -> str:
        return (
            f"t={self.time!r}: {self.kind} divergence — "
            f"{list(self.before)} vs {list(self.after)}"
        )


def _fmt(records: tuple[EventRecord, ...]) -> tuple[str, ...]:
    """Records as ``label#seq`` — the seq disambiguates equal labels."""
    return tuple(f"{r.label}#{r.seq}" for r in records)


def compare_traces(a: EventTrace, b: EventTrace) -> list[TieDivergence]:
    """Instants where two traces disagree (see :class:`TieDivergence`).

    Within an instant, events are compared as ``(seq, label)`` pairs:
    the schedule sequence number identifies the *same* event across
    two runs even when many tied handlers share one qualname (N
    lambdas from one loop), so a pure permutation is always classified
    as "order".  Comparison stops at the first *content* divergence:
    once the event streams fork, every later difference is a
    consequence of the first one and reporting it would only bury the
    signal.
    """
    divergences: list[TieDivergence] = []
    groups_a = a.record_groups()
    groups_b = b.record_groups()
    for (time_a, recs_a), (time_b, recs_b) in zip(groups_a, groups_b):
        if time_a != time_b:
            divergences.append(TieDivergence(time_a, _fmt(recs_a), _fmt(recs_b), "content"))
            return divergences
        pairs_a = [(r.seq, r.label) for r in recs_a]
        pairs_b = [(r.seq, r.label) for r in recs_b]
        if pairs_a == pairs_b:
            continue
        labels_a = sorted(r.label for r in recs_a)
        labels_b = sorted(r.label for r in recs_b)
        if sorted(pairs_a) == sorted(pairs_b) or labels_a == labels_b:
            divergences.append(TieDivergence(time_a, _fmt(recs_a), _fmt(recs_b), "order"))
        else:
            divergences.append(TieDivergence(time_a, _fmt(recs_a), _fmt(recs_b), "content"))
            return divergences
    if len(groups_a) != len(groups_b):
        longer = groups_a if len(groups_a) > len(groups_b) else groups_b
        time, records = longer[min(len(groups_a), len(groups_b))]
        missing: tuple[str, ...] = ()
        labels = _fmt(records)
        before, after = (labels, missing) if longer is groups_a else (missing, labels)
        divergences.append(TieDivergence(time, before, after, "content"))
    return divergences


class SanitizerSession:
    """Traces collected while a :func:`sanitized` region was active."""

    __slots__ = ("tie_shuffle_seed", "record", "traces")

    def __init__(self, tie_shuffle_seed: int | None, record: bool) -> None:
        self.tie_shuffle_seed = tie_shuffle_seed
        self.record = record
        #: one EventTrace per Simulator constructed, in creation order
        self.traces: list[EventTrace] = []

    def _instrument(self, sim: Simulator) -> None:
        recorder = None
        if self.record:
            trace = EventTrace()
            self.traces.append(trace)
            recorder = trace.append
        sim.instrument(recorder=recorder, tie_shuffle_seed=self.tie_shuffle_seed)


@contextlib.contextmanager
def sanitized(
    record: bool = True, tie_shuffle_seed: int | None = None
) -> Iterator[SanitizerSession]:
    """Instrument every ``Simulator`` constructed inside the block.

    Yields a :class:`SanitizerSession` whose ``traces`` fill in as
    simulators run.  Regions do not nest (the inner one would steal
    the outer's simulators silently — fail loudly instead).
    """
    if _engine._instrument_hook is not None:
        raise RuntimeError("sanitized() regions do not nest")
    session = SanitizerSession(tie_shuffle_seed, record)
    _engine._instrument_hook = session._instrument
    try:
        yield session
    finally:
        _engine._instrument_hook = None


@dataclass(frozen=True, slots=True)
class ShuffledRun:
    """Outcome of one tie-shuffled re-run against the baseline."""

    seed: int
    result_equal: bool
    #: per-simulator divergences vs. the baseline trace ("order" ones
    #: are expected under a shuffle — they are the probe working; they
    #: localize the handlers a result mismatch implicates)
    divergences: tuple[TieDivergence, ...]


@dataclass(frozen=True, slots=True)
class CommutativityReport:
    """Verdict of :func:`check_commutativity`."""

    baseline_result: Any
    runs: tuple[ShuffledRun, ...]

    @property
    def ok(self) -> bool:
        """True when every shuffled run reproduced the baseline result."""
        return all(r.result_equal for r in self.runs)

    def failing_seeds(self) -> tuple[int, ...]:
        return tuple(r.seed for r in self.runs if not r.result_equal)

    def describe(self) -> str:
        if self.ok:
            shuffles = len(self.runs)
            reordered = sum(
                1 for r in self.runs for d in r.divergences if d.kind == "order"
            )
            return (
                f"commutative: {shuffles} tie-shuffled run(s) bit-identical "
                f"({reordered} same-time reorderings exercised)"
            )
        lines = [f"TIE-BREAK DEPENDENCY: seeds {list(self.failing_seeds())} "
                 "changed the result"]
        for run in self.runs:
            if run.result_equal:
                continue
            for d in run.divergences[:8]:
                lines.append(f"  seed {run.seed}: {d.describe()}")
        return "\n".join(lines)


def check_commutativity(
    run: Callable[[], Any],
    seeds: Sequence[int] = (1, 2, 3),
    equal: Callable[[Any, Any], bool] | None = None,
) -> CommutativityReport:
    """Prove (or refute) that same-time handlers commute for ``run``.

    ``run`` must be self-contained: each invocation builds fresh
    simulators (machine factories do) and returns a comparable result.
    The baseline executes under plain FIFO tie-breaking with tracing;
    every seed in ``seeds`` re-executes under a shuffled tie order and
    must reproduce the baseline result exactly (``equal`` defaults to
    ``==``; pass a custom predicate for results with NaNs).
    """
    if equal is None:
        equal = lambda a, b: bool(a == b)  # noqa: E731
    with sanitized(record=True) as baseline:
        base_result = run()
    runs: list[ShuffledRun] = []
    for seed in seeds:
        with sanitized(record=True, tie_shuffle_seed=seed) as shuffled:
            result = run()
        divergences: list[TieDivergence] = []
        for base_trace, new_trace in zip(baseline.traces, shuffled.traces):
            divergences.extend(compare_traces(base_trace, new_trace))
        runs.append(
            ShuffledRun(
                seed=seed,
                result_equal=equal(base_result, result),
                divergences=tuple(divergences),
            )
        )
    return CommutativityReport(baseline_result=base_result, runs=tuple(runs))


@dataclass(frozen=True, slots=True)
class DeterminismReport:
    """Verdict of :func:`check_determinism`."""

    result_equal: bool
    divergences: tuple[TieDivergence, ...]

    @property
    def ok(self) -> bool:
        return self.result_equal and not self.divergences

    def describe(self) -> str:
        if self.ok:
            return "deterministic: repeated runs produced identical traces and results"
        lines = ["NONDETERMINISM: repeated identical runs diverged"]
        if not self.result_equal:
            lines.append("  results differ")
        for d in self.divergences[:8]:
            lines.append(f"  {d.describe()}")
        return "\n".join(lines)


def check_determinism(
    run: Callable[[], Any],
    repeats: int = 2,
    equal: Callable[[Any, Any], bool] | None = None,
) -> DeterminismReport:
    """Re-run ``run`` identically and demand identical traces + results.

    Any divergence — order *or* content — between identical runs is a
    real nondeterminism bug; this is the runtime complement of
    repro-lint's REPRO001/REPRO010 rules.
    """
    if repeats < 2:
        raise ValueError("need at least two runs to compare")
    if equal is None:
        equal = lambda a, b: bool(a == b)  # noqa: E731
    with sanitized(record=True) as first:
        base_result = run()
    result_equal = True
    divergences: list[TieDivergence] = []
    for _ in range(repeats - 1):
        with sanitized(record=True) as again:
            result = run()
        if not equal(base_result, result):
            result_equal = False
        for trace_a, trace_b in zip(first.traces, again.traces):
            divergences.extend(compare_traces(trace_a, trace_b))
        if len(first.traces) != len(again.traces):
            divergences.append(
                TieDivergence(0.0, ("<simulator-count>",), ("<simulator-count>",), "content")
            )
    return DeterminismReport(result_equal=result_equal, divergences=tuple(divergences))
