"""Interprocedural taint: nondeterminism sources → result sinks.

The single-file rules (REPRO001–REPRO014) reject *patterns*; this
module tracks *values*.  A wall-clock read three calls away from an
envelope write is invisible to a per-file linter — here it is a
three-edge taint path:

* **Sources** — wall-clock reads, OS entropy, unseeded
  ``random``/``numpy.random``, ``id()``, ``hash()`` (salted per
  process), and set-order iteration (the loop variable of ``for x in
  <set>`` carries the set's arbitrary order).
* **Propagation** — through assignments, containers, f-strings,
  arithmetic, returns, calls (a resolved project callee propagates
  through its summary; an unknown callee is assumed pass-through),
  constructor fields (``C(field=tainted)`` taints reads of
  ``instance.field`` project-wide) and mutating methods
  (``xs.append(tainted)`` taints ``xs``).
* **Sinks** — the calls that define the repository's determinism
  contract: ``ResultEnvelope(...)`` / ``envelope_for(...)`` payloads,
  ``canonical_envelope_text(...)``, ``write_json_atomic(...)``
  payloads, and ``RunSpec``/fingerprint inputs.

A tainted value reaching a sink is **REPRO015**.  A source line may
carry a blessing that names the seed the value derives from::

    t = derive_clock(seed)  # repro-lint: blessed-source -- seed=master_seed

A blessing *without* ``seed=`` is itself a REPRO015 (the escape hatch
must say where determinism comes from).

**REPRO016** is the concurrency-discipline family, scoped to
``runtime/`` modules:

* an instance attribute mutated both inside and outside a ``with
  <lock>`` block (outside ``__init__``) — the forgotten-lock bug;
* a file suffix that the project's flock helper protects, opened in a
  function that never takes ``fcntl.flock`` — the unlocked-counter
  bug;
* a ``multiprocessing`` connection ``.send(...)`` outside a ``with
  <...lock>`` block — the interleaved-pipe-payload bug the
  supervisor's ``send_lock`` pattern exists to prevent.

Extraction (:func:`extract_file`) is per-file, pure and JSON-plain —
it is what the incremental cache stores.  :class:`TaintAnalysis` runs
the global fixpoint over all summaries; its output depends only on
the summaries, so warm-cache, parallel and serial runs are
byte-identical by construction.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from typing import Any

from repro.devtools.index import ProjectIndex, Summary

#: resolved call targets whose return value is a nondeterminism source
SOURCE_KINDS: dict[str, str] = {}
for _name in (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
):
    SOURCE_KINDS[_name] = "wall-clock"
for _name in (
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom", "secrets.token_bytes", "secrets.token_hex",
    "secrets.token_urlsafe", "secrets.randbits", "secrets.choice",
):
    SOURCE_KINDS[_name] = "entropy"

#: seeded constructors: a source only when called with zero arguments
_SEEDABLE = frozenset({
    "numpy.random.default_rng", "numpy.random.SeedSequence",
    "numpy.random.Generator", "random.Random",
})

#: ``sorted()`` output does not depend on input order: it launders
#: set-order taint (and only set-order taint) off its argument
_ORDER_SANITIZERS = frozenset({"sorted"})

#: methods that mutate their receiver with their arguments
_MUTATORS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault",
    "appendleft", "push", "put", "heappush",
})

#: sink call targets -> (finding kind, which arguments are payload).
#: ``None`` means every positional and keyword argument is payload.
SINKS: dict[str, tuple[str, tuple[int, ...] | None]] = {
    "repro.runtime.envelope.ResultEnvelope": ("result-envelope field", None),
    "repro.runtime.envelope.envelope_for": ("envelope payload", None),
    "repro.runtime.store.canonical_envelope_text": ("canonical envelope text", None),
    "repro.reporting.export.write_json_atomic": ("atomic result write", (1,)),
    "repro.runtime.spec.RunSpec": ("RunSpec fingerprint input", None),
    "repro.runtime.spec.run_spec": ("RunSpec fingerprint input", None),
    "repro.runtime.spec.cell_fingerprint": ("fingerprint input", None),
    "repro.runtime.spec.sweep_fingerprint": ("fingerprint input", None),
}

#: last path components that make a call worth a statement fingerprint
#: (candidate finding sites; everything else skips the hash work)
_SITE_WORTHY = frozenset(
    {t.rsplit(".", 1)[1] for t in SINKS} | {"send", "open", "flock"}
)

_BLESS_RE = re.compile(r"#\s*repro-lint:\s*blessed-source(?:\s*--\s*(?P<note>.*))?$")
_SEED_RE = re.compile(r"\bseed\s*=\s*(?P<seed>[A-Za-z_][\w.]*)")
_LOCKY_RE = re.compile(r"lock", re.IGNORECASE)
_SUFFIX_RE = re.compile(r"\.[A-Za-z_][A-Za-z0-9_]*$")
_CONN_RE = re.compile(r"conn", re.IGNORECASE)

#: wrap depth cap for e:/g: origins (beyond it, collapse to the base)
_MAX_WRAP = 3


def stmt_fingerprint(stmt: ast.stmt) -> str:
    """Location-independent hash of one statement's normalized AST.

    ``ast.dump`` without attributes erases line/column info, so the
    fingerprint survives line drift — the property the v2 baseline
    keys on.
    """
    return hashlib.sha256(ast.dump(stmt).encode()).hexdigest()[:16]


def blessed_lines(source: str) -> dict[int, str | None]:
    """``blessed-source`` directives: line -> named seed (or ``None``).

    Tokenized, not regexed over raw lines: only genuine ``COMMENT``
    tokens count, so a docstring *describing* the directive does not
    bless (or fail to bless) anything.
    """
    import io
    import tokenize

    out: dict[int, str | None] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _BLESS_RE.search(tok.string)
        if match:
            note = match.group("note") or ""
            seed = _SEED_RE.search(note)
            out[tok.start[0]] = seed.group("seed") if seed else None
    return out


# ---------------------------------------------------------------------------
# per-file extraction
# ---------------------------------------------------------------------------


class _FunctionFlow:
    """Flow summary extraction for one function body.

    A flow-insensitive-by-iteration forward pass: statements execute
    in order twice (loop-carried flows land on the second pass), every
    branch is taken, and each name maps to a monotone set of *origins*:

    ``p:<i>``            the i-th parameter
    ``s:<kind>:<line>``  a nondeterminism source created here
    ``c:<site>``         the result of call site <site>
    ``a:<Cls>.<attr>``   a read of ``self.<attr>`` (module-local class)
    ``e:<origin>``       an element of a container with that origin
    ``g:<attr>:<origin>``an attribute read off a value with that origin
    """

    def __init__(self, extractor: "_FileExtractor", qual: str,
                 node: ast.FunctionDef | ast.AsyncFunctionDef,
                 own_class: str | None) -> None:
        self.x = extractor
        self.qual = qual
        self.own_class = own_class
        self.node = node
        self.env: dict[str, set[str]] = {}
        self.types: dict[str, str | None] = {}
        self.calls: list[dict[str, Any]] = []
        self._site_by_loc: dict[tuple[int, int], int] = {}
        self.ret: set[str] = set()
        self.ret_types: set[str | None] = set()
        self.attr_writes: list[dict[str, Any]] = []
        self.sources: list[dict[str, Any]] = []
        self.sends: list[dict[str, Any]] = []
        self.opens: list[dict[str, Any]] = []
        self.has_flock = False
        self.consts: set[str] = set()
        self._locks: list[str] = []
        self._stmt_stack: list[ast.stmt] = []

        params = [a.arg for a in (
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        )]
        self.params = params
        self.param_types: dict[str, list[str]] = {}
        for i, arg in enumerate(
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        ):
            self.env[arg.arg] = {f"p:{i}"}
            classes = _ann_classes(arg.annotation, self.x.aliases)
            if classes:
                self.param_types[str(i)] = classes
        if node.args.vararg is not None:
            self.env[node.args.vararg.arg] = {f"p:{len(params)}"}
        if node.args.kwarg is not None:
            self.env[node.args.kwarg.arg] = {f"p:{len(params) + 1}"}

    # -- driving -------------------------------------------------------

    def run(self) -> dict[str, Any]:
        for final in (False, True):
            if final:
                # the env (and call records, keyed by site) carry over
                # between passes; plain event lists would double up
                self.attr_writes.clear()
                self.sources.clear()
                self.sends.clear()
                self.opens.clear()
            self.exec_block(self.node.body)
        ret_type = None
        concrete = {t for t in self.ret_types if t is not None}
        if len(concrete) == 1 and None not in self.ret_types:
            ret_type = next(iter(concrete))
        return {
            "qual": self.qual,
            "line": self.node.lineno,
            "params": self.params,
            "param_types": dict(sorted(self.param_types.items())),
            "calls": self.calls,
            "ret": sorted(self.ret),
            "ret_type": ret_type,
            "ret_ann": _ann_classes(self.node.returns, self.x.aliases),
            "attr_writes": self.attr_writes,
            "sources": self.sources,
            "sends": self.sends,
            "opens": self.opens,
            "has_flock": self.has_flock,
            "consts": sorted(self.consts),
        }

    # -- statements ----------------------------------------------------

    def exec_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        self._stmt_stack.append(stmt)
        try:
            self._exec_stmt(stmt)
        finally:
            self._stmt_stack.pop()

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            origins = self.eval(stmt.value)
            etype = self._type_of_expr(stmt.value)
            for target in stmt.targets:
                self.assign(target, origins, etype)
        elif isinstance(stmt, ast.AnnAssign):
            origins = self.eval(stmt.value) if stmt.value is not None else set()
            etype = self._type_of_expr(stmt.value) if stmt.value is not None else None
            if etype is None:
                classes = _ann_classes(stmt.annotation, self.x.aliases)
                etype = classes[0] if classes else None
            self.assign(stmt.target, origins, etype)
        elif isinstance(stmt, ast.AugAssign):
            origins = self.eval(stmt.value)
            self.assign(stmt.target, origins, None, augment=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.ret |= self.eval(stmt.value)
                self.ret_types.add(self._type_of_expr(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.For):
            iter_origins = self.eval(stmt.iter)
            elem = _wrap_all("e", iter_origins)
            if _is_set_expr(stmt.iter):
                elem = elem | {f"s:set-order:{stmt.iter.lineno}"}
                self.sources.append({
                    "line": stmt.iter.lineno, "kind": "set-order",
                    "desc": "iteration order of a set",
                    "blessed_seed": self._blessing(stmt.iter.lineno),
                })
            self.assign(stmt.target, elem, self._elem_placeholder(stmt.iter))
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            locky = False
            for item in stmt.items:
                self.eval(item.context_expr)
                text = _expr_text(item.context_expr)
                if text is not None and _LOCKY_RE.search(text.rsplit(".", 1)[-1]):
                    locky = True
                if item.optional_vars is not None:
                    self.assign(
                        item.optional_vars, self.eval(item.context_expr), None
                    )
            if locky:
                self._locks.append("lock")
            self.exec_block(stmt.body)
            if locky:
                self._locks.pop()
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env.setdefault(handler.name, set())
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # extracted as its own function (symbols pass names it)
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # imports/pass/break/continue/global/nonlocal: no flow

    def assign(
        self,
        target: ast.expr,
        origins: set[str],
        etype: str | None,
        augment: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            if augment:
                self.env.setdefault(target.id, set()).update(origins)
            else:
                prior = self.env.get(target.id, set())
                # monotone across the two passes: never shrink
                self.env[target.id] = prior | origins
            if etype is not None:
                self.types[target.id] = etype
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, _wrap_all("e", origins), None, augment=augment)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name):
                self.env.setdefault(target.value.id, set()).update(origins)
            self.eval(target.slice)
        elif isinstance(target, ast.Attribute):
            # field-sensitive only: `obj.f = tainted` taints reads of
            # `.f` (via AttrTainted), never the whole object — coarsely
            # tainting `obj` would drag every other attribute with it
            self._record_attr_write(target, origins)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, origins, None, augment=augment)

    def _record_attr_write(self, target: ast.Attribute, origins: set[str]) -> None:
        cls: str | None = None
        if isinstance(target.value, ast.Name):
            if target.value.id == "self" and self.own_class is not None:
                cls = self.own_class
            else:
                cls = self.types.get(target.value.id)
        if cls is None:
            return
        func_name = self.qual.rsplit(".", 1)[-1]
        self.attr_writes.append({
            "cls": cls,
            "attr": target.attr,
            "origins": sorted(origins),
            "line": target.lineno,
            "guarded": bool(self._locks),
            "in_init": func_name in {"__init__", "__post_init__", "__new__"},
            "qualname": f"{self.x.module}.{self.qual}",
            "stmt": self._current_stmt_hash(),
        })

    # -- expressions ---------------------------------------------------

    def eval(self, node: ast.expr) -> set[str]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, set()))
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str) and _SUFFIX_RE.search(node.value):
                self.consts.add(node.value)
            return set()
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out: set[str] = set()
            for elt in node.elts:
                out |= self.eval(elt)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    out |= self.eval(key)
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(node.generators, node.elt)
        if isinstance(node, ast.DictComp):
            return self._eval_comp(node.generators, node.key, node.value)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval(value.value)
                elif isinstance(value, ast.Constant):
                    self.eval(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for comp in node.comparators:
                out |= self.eval(comp)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return _wrap_all("e", self.eval(node.value))
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, (ast.Lambda, ast.NamedExpr)):
            if isinstance(node, ast.NamedExpr):
                origins = self.eval(node.value)
                self.assign(node.target, origins, None)
                return origins
            return set()
        if isinstance(node, ast.Slice):
            return set()
        out = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child)
        return out

    def _eval_comp(self, generators: list[ast.comprehension],
                   *elts: ast.expr) -> set[str]:
        extra: set[str] = set()
        for gen in generators:
            iter_origins = self.eval(gen.iter)
            elem = _wrap_all("e", iter_origins)
            if _is_set_expr(gen.iter):
                elem = elem | {f"s:set-order:{gen.iter.lineno}"}
                self.sources.append({
                    "line": gen.iter.lineno, "kind": "set-order",
                    "desc": "iteration order of a set",
                    "blessed_seed": self._blessing(gen.iter.lineno),
                })
            self.assign(gen.target, elem, None)
            for cond in gen.ifs:
                extra |= self.eval(cond)
        out = extra
        for elt in elts:
            out |= self.eval(elt)
        return out

    def _eval_attribute(self, node: ast.Attribute) -> set[str]:
        dotted = self._dotted(node)
        if dotted is not None:
            return set()  # module attribute (a function object, a constant)
        receiver = node.value
        recv_origins = self.eval(receiver)
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and self.own_class is not None:
                return {f"a:{self.own_class}.{node.attr}"}
            rtype = self.types.get(receiver.id)
            if rtype is not None:
                return {f"a:{rtype}.{node.attr}"}
        return _wrap_all(f"g:{node.attr}", recv_origins) or recv_origins

    def _eval_call(self, node: ast.Call) -> set[str]:
        args = [self.eval(a) for a in node.args]
        kwargs = {kw.arg or "**": self.eval(kw.value) for kw in node.keywords}
        func = node.func
        line = node.lineno

        target = self._resolve_callable(func)
        method: str | None = None
        recv: set[str] = set()
        if target is None and isinstance(func, ast.Attribute):
            method = func.attr
            recv = self.eval(func.value)
            rtype = None
            if isinstance(func.value, ast.Name):
                if func.value.id == "self" and self.own_class is not None:
                    rtype = f"{self.x.module}.{self.own_class}"
                else:
                    local = self.types.get(func.value.id)
                    rtype = self._qualify_class(local) if local else None
            if rtype is not None:
                target = f"{rtype}.{method}"
                method = None
            elif method in _MUTATORS and isinstance(func.value, ast.Name):
                joined: set[str] = set()
                for a in args:
                    joined |= a
                for v in kwargs.values():
                    joined |= v
                self.env.setdefault(func.value.id, set()).update(joined)

        if target == "fcntl.flock":
            self.has_flock = True
        if target is not None and target in SOURCE_KINDS:
            return self._source(SOURCE_KINDS[target], f"{target}()", line)
        if target is not None and target in _SEEDABLE and not node.args \
                and not node.keywords:
            return self._source("unseeded-rng", f"{target}() with no seed", line)
        if target is not None and (
            target.startswith("random.") or target.startswith("numpy.random.")
        ) and target not in _SEEDABLE:
            return self._source("unseeded-rng", f"{target}()", line)
        if target == "id":
            return self._source("id", "id()", line)
        if target == "hash" and "__hash__" not in self.qual:
            return self._source("hash", "salted builtin hash()", line)
        if method == "send" and isinstance(func.value, ast.Name) and (
            _CONN_RE.search(func.value.id)
        ):
            self.sends.append({
                "line": line,
                "recv": func.value.id,
                "guarded": bool(self._locks),
                "qualname": f"{self.x.module}.{self.qual}",
                "stmt": self._current_stmt_hash(),
            })
        if target == "open" or (target or "").endswith(".open"):
            self.opens.append({
                "line": line,
                "qualname": f"{self.x.module}.{self.qual}",
                "stmt": self._current_stmt_hash(),
            })

        site = self._site_for(node)
        last = (target or method or "").rsplit(".", 1)[-1]
        fn_args: list[str] = []
        fn_kwargs: dict[str, str] = {}
        for sub in node.args:
            ref = self._fn_ref(sub)
            if ref is not None:
                fn_args.append(ref)
        for kw in node.keywords:
            if kw.arg is not None:
                ref = self._fn_ref(kw.value)
                if ref is not None:
                    fn_kwargs[kw.arg] = ref
        record = {
            "site": site,
            "line": line,
            "target": target,
            "method": method,
            "recv": sorted(recv),
            "args": [sorted(a) for a in args],
            "kwargs": {k: sorted(v) for k, v in sorted(kwargs.items())},
            "fn_args": fn_args,
            "fn_kwargs": fn_kwargs,
            "qualname": f"{self.x.module}.{self.qual}",
            "stmt": self._current_stmt_hash() if last in _SITE_WORTHY else "",
        }
        self._put_call(record)
        return {f"c:{site}"}

    # -- helpers -------------------------------------------------------

    def _site_for(self, node: ast.expr) -> int:
        loc = (node.lineno, node.col_offset)
        if loc not in self._site_by_loc:
            self._site_by_loc[loc] = len(self._site_by_loc)
        return self._site_by_loc[loc]

    def _put_call(self, record: dict[str, Any]) -> None:
        for i, existing in enumerate(self.calls):
            if existing["site"] == record["site"]:
                self.calls[i] = record
                return
        self.calls.append(record)

    def _source(self, kind: str, desc: str, line: int) -> set[str]:
        blessed = self._blessing(line)
        self.sources.append({
            "line": line, "kind": kind, "desc": desc, "blessed_seed": blessed,
        })
        if blessed:
            return set()
        return {f"s:{kind}:{line}"}

    def _blessing(self, line: int) -> str | None:
        return self.x.blessed.get(line)

    def _current_stmt_hash(self) -> str:
        if not self._stmt_stack:
            return ""
        return stmt_fingerprint(self._stmt_stack[0])

    def _dotted(self, node: ast.expr) -> str | None:
        """Resolve a pure Name/Attribute chain through the alias map."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        if node.id in self.env and self.env[node.id]:
            return None  # a local value shadows any import
        root = self.x.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def _resolve_callable(self, func: ast.expr) -> str | None:
        """Dotted target of a call, or ``None`` for value-dependent calls."""
        if isinstance(func, ast.Name):
            local = self.x.lookup_local(self.qual, func.id)
            if local is not None:
                return f"{self.x.module}.{local}"
            dotted = self.x.aliases.get(func.id)
            if dotted is not None:
                return dotted
            if func.id not in self.env or not self.env[func.id]:
                return func.id  # a builtin (open, id, hash, sorted, ...)
            return None
        if isinstance(func, ast.Attribute):
            return self._dotted(func)
        return None

    def _fn_ref(self, node: ast.expr) -> str | None:
        """A function *reference* argument (a callable passed, not called).

        These are the deferred-invocation edges the call graph needs:
        ``Process(target=_supervised_entry, ...)`` runs
        ``_supervised_entry`` even though no direct call appears.
        """
        if not isinstance(node, (ast.Name, ast.Attribute)):
            return None
        ref = self._resolve_callable(node)
        if ref is None or "." not in ref:
            return None
        return ref

    def _qualify_class(self, local: str | None) -> str | None:
        if local is None:
            return None
        return local if "." in local else f"{self.x.module}.{local}"

    def _type_of_expr(self, node: ast.expr) -> str | None:
        """Extraction-time type of an expression, when visible locally."""
        if isinstance(node, ast.Call):
            target = self._resolve_callable(node.func)
            if target is not None and self.x.is_local_class(target):
                return target
        if isinstance(node, ast.Name):
            return self.types.get(node.id)
        return None

    def _elem_placeholder(self, node: ast.expr) -> str | None:
        return None  # element types resolve at analysis time via origins


def _wrap_all(prefix: str, origins: set[str]) -> set[str]:
    out: set[str] = set()
    for origin in origins:
        if origin.count(":") >= 2 * _MAX_WRAP:
            out.add(origin)  # cap the wrapper depth, keep the base
        else:
            out.add(f"{prefix}:{origin}")
    return out


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _expr_text(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _ann_classes(node: ast.expr | None, aliases: dict[str, str]) -> list[str]:
    from repro.devtools.index import _annotation_classes

    return _annotation_classes(node, aliases)


class _FileExtractor:
    """Shared per-file context the function flows resolve against."""

    def __init__(self, module: str, aliases: dict[str, str],
                 symbols: dict[str, dict[str, Any]],
                 classes: dict[str, dict[str, Any]],
                 blessed: dict[int, str | None]) -> None:
        self.module = module
        self.aliases = aliases
        self.symbols = symbols
        self.classes = classes
        self.blessed = blessed

    def lookup_local(self, scope_qual: str, name: str) -> str | None:
        """Resolve a bare name against enclosing scopes, then module level."""
        parts = scope_qual.split(".")
        for cut in range(len(parts), -1, -1):
            candidate = ".".join(parts[:cut] + [name]) if cut else name
            if candidate in self.symbols:
                return candidate
        return None

    def is_local_class(self, dotted: str) -> bool:
        if not dotted.startswith(f"{self.module}."):
            return False
        return dotted[len(self.module) + 1:] in self.classes


def extract_flows(
    tree: ast.Module,
    module: str,
    aliases: dict[str, str],
    symbols: dict[str, dict[str, Any]],
    classes: dict[str, dict[str, Any]],
    source: str,
) -> dict[str, Any]:
    """Every function's flow summary for one parsed file (JSON-plain)."""
    extractor = _FileExtractor(module, aliases, symbols, classes,
                               blessed_lines(source))
    functions: dict[str, dict[str, Any]] = {}

    def visit(body: list[ast.stmt], prefix: str, own_class: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                flow = _FunctionFlow(extractor, qual, node, own_class)
                functions[qual] = flow.run()
                visit(node.body, f"{qual}.", None)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{prefix}{node.name}.", f"{prefix}{node.name}")
    visit(tree.body, "", None)
    bless_list = sorted(
        (line, seed if seed is not None else "")
        for line, seed in extractor.blessed.items()
    )
    return {"functions": functions, "blessings": bless_list}


# ---------------------------------------------------------------------------
# whole-program analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One cross-module violation (same addressing as LintViolation)."""

    path: str
    line: int
    rule: str
    message: str
    qualname: str = ""
    stmt: str = ""


@dataclass
class _Func:
    path: str
    module: str
    qual: str
    data: dict[str, Any]
    calls_by_site: dict[int, dict[str, Any]] = field(default_factory=dict)

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.qual}"


class TaintAnalysis:
    """The interprocedural fixpoint over every file summary.

    Monovariant (one boolean per function return, per parameter and
    per class attribute) with provenance strings for witness messages;
    monotone, so the fixpoint is unique and independent of iteration
    order — which keeps serial, parallel and warm-cache runs
    byte-identical.
    """

    def __init__(self, project: ProjectIndex, summaries: dict[str, Summary]) -> None:
        self.project = project
        self.summaries = summaries
        self.funcs: dict[str, _Func] = {}
        self.suppressed: dict[str, dict[int, frozenset[str]]] = {}
        for path in sorted(summaries):
            summary = summaries[path]
            module = summary["module"]
            for qual, data in summary.get("flows", {}).get("functions", {}).items():
                fn = _Func(path=path, module=module, qual=qual, data=data)
                for call in data["calls"]:
                    fn.calls_by_site[call["site"]] = call
                self.funcs[fn.dotted] = fn
            self.suppressed[path] = {
                int(line): frozenset(rules)
                for line, rules in summary.get("suppressed", {}).items()
            }
        #: taint state: key -> provenance string (taint is "key present")
        self.taint: dict[str, str] = {}
        self._pret: dict[tuple[str, int], bool] = {}
        #: origin types depend only on the (static) summaries — memoized,
        #: with the cache entry doubling as a cycle guard
        self._type_cache: dict[tuple[str, str], str | None] = {}
        #: in-flight taint evaluations (cycle guard: a value defined in
        #: terms of itself contributes no taint of its own)
        self._eval_stack: set[tuple[str, str]] = set()

    # -- resolution ----------------------------------------------------

    def _class_of(self, dotted: str | None) -> str | None:
        if dotted is None:
            return None
        return self.project.resolve_class(dotted)

    def _ret_type(self, target: str) -> str | None:
        if self._class_of(target):
            return target
        fn = self.funcs.get(target)
        if fn is None:
            return None
        rt = fn.data.get("ret_type")
        if rt is not None:
            resolved = self._project_class(fn.module, rt)
            if resolved is not None:
                return resolved
        # fall back to the declared return annotation (covers functions
        # with multiple returns, e.g. `-> RunStore | None` factories)
        for cls in fn.data.get("ret_ann", []):
            resolved = self._project_class(fn.module, cls)
            if resolved is not None:
                return resolved
        return None

    def _origin_type(self, fn: _Func, origin: str) -> str | None:
        """Project class an origin's value is an instance of, if known."""
        key = (fn.dotted, origin)
        if key in self._type_cache:
            return self._type_cache[key]
        self._type_cache[key] = None  # cycle guard: self-typed is untyped
        result = self._origin_type_uncached(fn, origin)
        self._type_cache[key] = result
        return result

    def _origin_type_uncached(self, fn: _Func, origin: str) -> str | None:
        kind, _, rest = origin.partition(":")
        if kind == "c":
            call = fn.calls_by_site.get(int(rest))
            if call is None:
                return None
            target = self._call_target(fn, call)
            if target is None:
                return None
            return self._ret_type(target)
        if kind == "p":
            classes = fn.data["param_types"].get(rest, [])
            for cls in classes:
                resolved = self._project_class(fn.module, cls)
                if resolved is not None:
                    return resolved
            return None
        if kind == "a":
            cls_attr = rest
            return self._field_type(fn.module, cls_attr)
        if kind == "e":
            return self._origin_type(fn, rest)  # element of a typed container
        if kind == "g":
            attr, _, base = rest.partition(":")
            base_type = self._origin_type(fn, base)
            if base_type is None:
                return None
            return self._field_type_of(base_type, attr)
        return None

    def _project_class(self, module: str, cls: str) -> str | None:
        if cls in self.project.classes:
            return cls
        qualified = f"{module}.{cls}"
        return qualified if qualified in self.project.classes else None

    def _field_type(self, module: str, cls_attr: str) -> str | None:
        cls, _, attr = cls_attr.rpartition(".")
        resolved = self._project_class(module, cls)
        if resolved is None:
            return None
        return self._field_type_of(resolved, attr)

    def _field_type_of(self, cls: str, attr: str) -> str | None:
        entry = self.project.classes.get(cls)
        if entry is None:
            return None
        for candidate in entry.get("field_types", {}).get(attr, []):
            resolved = self._project_class(cls.rsplit(".", 1)[0], candidate)
            if resolved is not None:
                return resolved
        return None

    def _call_target(self, fn: _Func, call: dict[str, Any]) -> str | None:
        """The resolved callee, using receiver types for methods."""
        target = call.get("target")
        if target is not None:
            if target in self.funcs or self._class_of(target):
                return target
            # an aliased import of a project symbol that the extractor
            # could not see locally (e.g. re-exported names)
            return target
        method = call.get("method")
        if method is None:
            return None
        for origin in call.get("recv", []):
            rtype = self._origin_type(fn, origin)
            if rtype is not None:
                resolved = self.project.resolve_method(rtype, method)
                if resolved is not None:
                    return resolved
        return None

    def call_target(self, fn: _Func, call: dict[str, Any]) -> str | None:
        """Public resolution entry point (the call-graph builder's)."""
        return self._call_target(fn, call)

    # -- param-flows-to-return ----------------------------------------

    def _param_flows_to_ret(self, dotted: str, idx: int) -> bool:
        key = (dotted, idx)
        if key in self._pret:
            return self._pret[key]
        self._pret[key] = False  # cycle guard: assume no until proven
        fn = self.funcs.get(dotted)
        if fn is None:
            return False
        needle = f"p:{idx}"
        result = False
        for origin in fn.data["ret"]:
            base = _base_origin(origin)
            if base == needle:
                result = True
                break
            if base.startswith("c:"):
                call = fn.calls_by_site.get(int(base.split(":", 1)[1]))
                if call is None:
                    continue
                target = self._call_target(fn, call)
                arg_lists = list(enumerate(call["args"]))
                if target in self.funcs:
                    for j, origins in arg_lists:
                        if any(_base_origin(o) == needle for o in origins) and \
                                self._param_flows_to_ret(target, j):
                            result = True
                            break
                elif target is None or target not in self.funcs:
                    # unknown callee: assume pass-through
                    every: list[str] = []
                    for _, origins in arg_lists:
                        every.extend(origins)
                    for origins_k in call["kwargs"].values():
                        every.extend(origins_k)
                    every.extend(call.get("recv", []))
                    if any(_base_origin(o) == needle for o in every):
                        result = True
                if result:
                    break
        self._pret[key] = result
        return result

    # -- taint evaluation ---------------------------------------------

    def _eval_origin(self, fn: _Func, origin: str) -> str | None:
        key = (fn.dotted, origin)
        if key in self._eval_stack:
            return None
        self._eval_stack.add(key)
        try:
            return self._eval_origin_inner(fn, origin)
        finally:
            self._eval_stack.discard(key)

    def _eval_origin_inner(self, fn: _Func, origin: str) -> str | None:
        kind, _, rest = origin.partition(":")
        if kind == "s":
            skind, _, line = rest.partition(":")
            return f"{skind} source at {fn.path}:{line}"
        if kind == "p":
            return self.taint.get(f"P:{fn.dotted}:{rest}")
        if kind == "a":
            cls, _, attr = rest.rpartition(".")
            resolved = self._project_class(fn.module, cls)
            if resolved is None:
                return None
            return self.taint.get(f"A:{resolved}.{attr}")
        if kind == "e":
            return self._eval_origin(fn, rest)
        if kind == "g":
            attr, _, base = rest.partition(":")
            base_type = self._origin_type(fn, base)
            if base_type is not None:
                return self.taint.get(f"A:{base_type}.{attr}")
            return self._eval_origin(fn, base)
        if kind == "c":
            call = fn.calls_by_site.get(int(rest))
            if call is None:
                return None
            return self._eval_call_taint(fn, call)
        return None

    def _eval_origins(self, fn: _Func, origins: list[str] | set[str]) -> str | None:
        for origin in sorted(origins):
            prov = self._eval_origin(fn, origin)
            if prov is not None:
                return prov
        return None

    def _eval_call_taint(self, fn: _Func, call: dict[str, Any]) -> str | None:
        target = self._call_target(fn, call)
        if target is not None and self._class_of(target):
            return None  # constructor results carry taint per-field
        if target in self.funcs:
            ret = self.taint.get(f"R:{target}")
            if ret is not None:
                return ret
            for j, origins in enumerate(call["args"]):
                if self._param_flows_to_ret(target, j):
                    prov = self._eval_origins(fn, origins)
                    if prov is not None:
                        return prov
            return None
        # unknown callee: pass-through of everything it consumed
        last = (target or call.get("method") or "").rsplit(".", 1)[-1]
        pools: list[list[str]] = list(call["args"])
        pools.extend(call["kwargs"].values())
        pools.append(call.get("recv", []))
        for pool in pools:
            for origin in sorted(pool):
                if last in _ORDER_SANITIZERS and _is_set_order(origin):
                    continue
                prov = self._eval_origin(fn, origin)
                if prov is not None:
                    return prov
        return None

    # -- the fixpoint ---------------------------------------------------

    def run(self) -> None:
        for _ in range(64):
            if not self._iterate():
                return

    def _iterate(self) -> bool:
        changed = False
        for dotted in sorted(self.funcs):
            fn = self.funcs[dotted]
            # returns
            prov = self._eval_origins(fn, fn.data["ret"])
            if prov is not None and f"R:{dotted}" not in self.taint:
                self.taint[f"R:{dotted}"] = prov
                changed = True
            # attribute writes
            for write in fn.data["attr_writes"]:
                wprov = self._eval_origins(fn, write["origins"])
                if wprov is None:
                    continue
                cls = self._project_class(fn.module, write["cls"])
                if cls is None:
                    continue
                key = f"A:{cls}.{write['attr']}"
                if key not in self.taint:
                    self.taint[key] = wprov
                    changed = True
            # calls: propagate into callee params / constructor fields
            for call in fn.data["calls"]:
                target = self._call_target(fn, call)
                if target is None:
                    continue
                if self._class_of(target):
                    changed |= self._flow_into_class(fn, target, call)
                    continue
                callee = self.funcs.get(target)
                if callee is None:
                    continue
                offset = 0
                if call.get("method") is not None or (
                    call.get("target") is None
                ):
                    offset = 1  # bound method: args shift past self
                elif self.project.symbols.get(target, {}).get("kind") == "method" \
                        and call.get("recv"):
                    offset = 1
                params = callee.data["params"]
                for j, origins in enumerate(call["args"]):
                    idx = j + offset
                    if idx >= len(params):
                        break
                    aprov = self._eval_origins(fn, origins)
                    if aprov is not None:
                        key = f"P:{target}:{idx}"
                        if key not in self.taint:
                            self.taint[key] = (
                                f"{aprov} -> {target}({params[idx]})"
                            )
                            changed = True
                for kwname, origins_k in call["kwargs"].items():
                    if kwname not in params:
                        continue
                    idx = params.index(kwname)
                    aprov = self._eval_origins(fn, origins_k)
                    if aprov is not None:
                        key = f"P:{target}:{idx}"
                        if key not in self.taint:
                            self.taint[key] = f"{aprov} -> {target}({kwname})"
                            changed = True
        return changed

    def _flow_into_class(self, fn: _Func, cls: str, call: dict[str, Any]) -> bool:
        """Constructor call: map arguments onto fields / ``__init__``."""
        changed = False
        init = self.funcs.get(f"{cls}.__init__")
        entry = self.project.classes.get(cls, {})
        fields: list[str] = entry.get("fields", [])
        for j, origins in enumerate(call["args"]):
            prov = self._eval_origins(fn, origins)
            if prov is None:
                continue
            changed |= self._taint_field(cls, init, fields, j, None, prov)
        for kwname, origins_k in call["kwargs"].items():
            prov = self._eval_origins(fn, origins_k)
            if prov is None:
                continue
            changed |= self._taint_field(cls, init, fields, None, kwname, prov)
        return changed

    def _taint_field(self, cls: str, init: _Func | None, fields: list[str],
                     pos: int | None, kwname: str | None, prov: str) -> bool:
        changed = False
        name = kwname
        if name is None and pos is not None and pos < len(fields):
            name = fields[pos]
        if name is not None and (name in fields or init is None):
            key = f"A:{cls}.{name}"
            if key not in self.taint:
                self.taint[key] = f"{prov} -> {cls}.{name}"
                changed = True
        if init is not None:
            params = init.data["params"]
            idx: int | None = None
            if kwname is not None and kwname in params:
                idx = params.index(kwname)
            elif pos is not None and pos + 1 < len(params):
                idx = pos + 1  # skip self
            if idx is not None:
                key = f"P:{init.dotted}:{idx}"
                if key not in self.taint:
                    self.taint[key] = f"{prov} -> {init.dotted}({params[idx]})"
                    changed = True
        return changed

    # -- findings -------------------------------------------------------

    def findings(self) -> list[Finding]:
        self.run()
        out: list[Finding] = []
        out.extend(self._sink_findings())
        out.extend(self._blessing_findings())
        out.extend(self._concurrency_findings())
        return sorted(out, key=lambda f: (f.path, f.line, f.rule, f.message))

    def _suppressed_at(self, path: str, line: int, rule: str) -> bool:
        rules = self.suppressed.get(path, {}).get(line, frozenset())
        return rule in rules or "all" in rules

    def _sink_findings(self) -> list[Finding]:
        out: list[Finding] = []
        for dotted in sorted(self.funcs):
            fn = self.funcs[dotted]
            for call in fn.data["calls"]:
                target = self._call_target(fn, call)
                if target is None or target not in SINKS:
                    continue
                kind, payload_args = SINKS[target]
                pools: list[tuple[str, list[str]]] = []
                if payload_args is None:
                    for j, origins in enumerate(call["args"]):
                        pools.append((f"argument {j + 1}", origins))
                    for kwname, origins_k in call["kwargs"].items():
                        pools.append((f"argument {kwname!r}", origins_k))
                else:
                    for j in payload_args:
                        if j < len(call["args"]):
                            pools.append((f"argument {j + 1}", call["args"][j]))
                    for kwname, origins_k in call["kwargs"].items():
                        pools.append((f"argument {kwname!r}", origins_k))
                for label, origins in pools:
                    prov = self._eval_origins(fn, origins)
                    if prov is None:
                        continue
                    if self._suppressed_at(fn.path, call["line"], "REPRO015"):
                        break
                    short = target.rsplit(".", 1)[-1]
                    out.append(Finding(
                        path=fn.path,
                        line=call["line"],
                        rule="REPRO015",
                        message=(
                            f"nondeterministic value reaches a {kind} "
                            f"({short} {label}): {_clip(prov)}"
                        ),
                        qualname=call["qualname"],
                        stmt=call["stmt"],
                    ))
                    break  # one finding per sink call site
        return out

    def _blessing_findings(self) -> list[Finding]:
        out: list[Finding] = []
        for path in sorted(self.summaries):
            summary = self.summaries[path]
            for line, seed in summary.get("flows", {}).get("blessings", []):
                if seed:
                    continue
                if self._suppressed_at(path, int(line), "REPRO015"):
                    continue
                out.append(Finding(
                    path=path,
                    line=int(line),
                    rule="REPRO015",
                    message=(
                        "blessed-source escape must name the seed it derives "
                        "from: `# repro-lint: blessed-source -- seed=<name>`"
                    ),
                    qualname=summary["module"],
                    stmt="",
                ))
        return out

    # -- REPRO016: concurrency discipline ------------------------------

    def _concurrency_findings(self) -> list[Finding]:
        out: list[Finding] = []
        in_scope = {
            path for path in self.summaries if "/runtime/" in f"/{path}"
        }

        # (a) attributes mutated both inside and outside a lock
        sites: dict[str, dict[str, list[dict[str, Any]]]] = {}
        for dotted in sorted(self.funcs):
            fn = self.funcs[dotted]
            if fn.path not in in_scope:
                continue
            for write in fn.data["attr_writes"]:
                cls = self._project_class(fn.module, write["cls"]) or (
                    f"{fn.module}.{write['cls']}"
                )
                entry = sites.setdefault(cls, {}).setdefault(write["attr"], [])
                entry.append({**write, "path": fn.path})
        for cls in sorted(sites):
            for attr in sorted(sites[cls]):
                writes = sites[cls][attr]
                guarded = [w for w in writes if w["guarded"]]
                unguarded = [
                    w for w in writes if not w["guarded"] and not w["in_init"]
                ]
                if not guarded or not unguarded:
                    continue
                short = cls.rsplit(".", 1)[-1]
                for w in unguarded:
                    if self._suppressed_at(w["path"], w["line"], "REPRO016"):
                        continue
                    g = guarded[0]
                    out.append(Finding(
                        path=w["path"],
                        line=w["line"],
                        rule="REPRO016",
                        message=(
                            f"attribute {short}.{attr} is mutated under a lock "
                            f"at {g['path']}:{g['line']} but mutated without "
                            "one here; take the same lock (or move the write "
                            "into __init__)"
                        ),
                        qualname=w["qualname"],
                        stmt=w["stmt"],
                    ))

        # (b) flock'd file suffixes opened without the flock helper
        helper_suffixes: set[str] = set()
        helpers: set[str] = set()
        for dotted in sorted(self.funcs):
            fn = self.funcs[dotted]
            if fn.data.get("has_flock"):
                helpers.add(dotted)
                for const in fn.data.get("consts", []):
                    match = _SUFFIX_RE.search(const)
                    if match:
                        helper_suffixes.add(match.group(0))
        if helper_suffixes:
            for dotted in sorted(self.funcs):
                fn = self.funcs[dotted]
                if fn.path not in in_scope or dotted in helpers:
                    continue
                touched = {
                    _SUFFIX_RE.search(c).group(0)  # type: ignore[union-attr]
                    for c in fn.data.get("consts", [])
                    if _SUFFIX_RE.search(c)
                }
                if not (touched & helper_suffixes):
                    continue
                for op in fn.data.get("opens", []):
                    if self._suppressed_at(fn.path, op["line"], "REPRO016"):
                        continue
                    suffix = sorted(touched & helper_suffixes)[0]
                    out.append(Finding(
                        path=fn.path,
                        line=op["line"],
                        rule="REPRO016",
                        message=(
                            f"file suffix {suffix!r} is flock-protected by "
                            f"{sorted(helpers)[0]} but opened here without "
                            "fcntl.flock; route the access through the helper"
                        ),
                        qualname=op["qualname"],
                        stmt=op["stmt"],
                    ))

        # (c) connection sends outside a lock-guarded block
        for dotted in sorted(self.funcs):
            fn = self.funcs[dotted]
            if fn.path not in in_scope:
                continue
            for send in fn.data.get("sends", []):
                if send["guarded"]:
                    continue
                if self._suppressed_at(fn.path, send["line"], "REPRO016"):
                    continue
                out.append(Finding(
                    path=fn.path,
                    line=send["line"],
                    rule="REPRO016",
                    message=(
                        f"{send['recv']}.send(...) outside a `with <lock>` "
                        "block: concurrent senders can interleave a pipe "
                        "payload (use the supervisor's send_lock pattern)"
                    ),
                    qualname=send["qualname"],
                    stmt=send["stmt"],
                ))
        return out


def _base_origin(origin: str) -> str:
    while origin[:2] in ("e:", "g:"):
        if origin.startswith("e:"):
            origin = origin[2:]
        else:
            origin = origin.split(":", 2)[2]
    return origin


def _is_set_order(origin: str) -> bool:
    return _base_origin(origin).startswith("s:set-order:")


def _clip(prov: str, limit: int = 360) -> str:
    return prov if len(prov) <= limit else prov[: limit - 1] + "…"
