"""SARIF 2.1.0 emission for ``repro-lint --format sarif``.

One run, one tool, one result per post-baseline violation.  The
output is fully deterministic — no timestamps, no absolute paths, no
environment capture — so serial, parallel and warm-cache runs of the
engine serialize to byte-identical documents (an invariant the test
suite asserts).  Each result carries the v2 baseline fingerprint
``rule:qualname:stmt`` as a ``partialFingerprints`` entry, which is
what lets CI code-scanning track a finding across line drift.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_document(
    violations: Sequence[Any],
    rules: dict[str, str],
    tool_version: str,
) -> dict[str, Any]:
    """Build the SARIF object for a list of :class:`LintViolation`."""
    used = sorted({v.rule for v in violations} | set(rules))
    rule_meta = [
        {
            "id": rule,
            "shortDescription": {"text": rules.get(rule, rule)},
            "helpUri": f"https://example.invalid/repro-lint/{rule}",
        }
        for rule in used
    ]
    rule_index = {rule: i for i, rule in enumerate(used)}
    results = [
        {
            "ruleId": v.rule,
            "ruleIndex": rule_index[v.rule],
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {
                            "startLine": max(v.line, 1),
                            "startColumn": max(v.col, 1),
                        },
                    },
                    "logicalLocations": (
                        [{"fullyQualifiedName": v.qualname}] if v.qualname else []
                    ),
                }
            ],
            "partialFingerprints": {
                "reproLint/v2": f"{v.rule}:{v.qualname}:{v.stmt}",
            },
        }
        for v in violations
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rule_meta,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(
    violations: Sequence[Any], rules: dict[str, str], tool_version: str
) -> str:
    """The canonical byte representation (sorted keys, 2-space indent)."""
    doc = sarif_document(violations, rules, tool_version)
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
