"""Developer tooling guarding the reproduction's determinism contracts.

Every headline number this repository produces — b_eff, b_eff_io,
the fast-vs-reference bit-identity checks, fault apply/revert
exactness, kill+resume equality — is only meaningful because repeated
runs are bit-for-bit reproducible.  This package holds the tooling
that keeps it that way as the codebase grows:

:mod:`repro.devtools.lint`
    ``repro-lint``, a custom AST analyzer with determinism-focused
    rules (unseeded randomness, wall-clock reads, unordered
    iteration, non-atomic result writes, ...), per-line suppressions
    and a checked-in baseline so CI fails on *new* violations only.

:mod:`repro.devtools.sanitizer`
    A runtime nondeterminism sanitizer: opt-in
    :class:`repro.sim.engine.Simulator` instrumentation that records
    event traces, diffs the relative order of same-timestamp events
    between runs, and deliberately shuffles same-time tie-breakers
    under a derived seed to *prove* that handlers commute.
"""

from typing import Any

_LINT = ("LintViolation", "lint_paths", "lint_source")
_SANITIZER = (
    "CommutativityReport",
    "EventRecord",
    "EventTrace",
    "TieDivergence",
    "check_commutativity",
    "check_determinism",
    "compare_traces",
    "sanitized",
)


def __getattr__(name: str) -> Any:
    # Lazy re-exports: importing the package must not pre-import
    # repro.devtools.lint, or `python -m repro.devtools.lint` warns
    # about the module already being in sys.modules.
    if name in _LINT:
        from repro.devtools import lint

        return getattr(lint, name)
    if name in _SANITIZER:
        from repro.devtools import sanitizer

        return getattr(sanitizer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "LintViolation",
    "lint_paths",
    "lint_source",
    "CommutativityReport",
    "EventRecord",
    "EventTrace",
    "TieDivergence",
    "check_commutativity",
    "check_determinism",
    "compare_traces",
    "sanitized",
]
