"""Project indexer: module graph, symbol tables and the incremental
summary cache under ``repro-lint``'s whole-program engine.

The per-file linter (``repro.devtools.lint``) sees one AST at a time;
the interprocedural analyses (``repro.devtools.taint``) need to know,
for *every* analyzed file, what it imports, what it defines, and how a
local name resolves across module boundaries.  This module provides
that substrate:

* :func:`discover` / :func:`module_name_for` — map a file tree onto
  dotted module names (``src/repro/runtime/store.py`` →
  ``repro.runtime.store``; any directory with ``__init__.py`` chains
  works, so the test fixture package indexes the same way).
* :func:`collect_symbols` — one cheap parse pass per file yielding the
  module's import aliases (absolute *and* relative imports resolved to
  dotted names) and its symbol table (functions, classes, methods,
  dataclass-style field lists with annotation types).
* :class:`ProjectIndex` — the merged view: global symbol table, module
  graph, reverse-dependency closure (the *cone* used for incremental
  re-indexing), and name resolution.
* :class:`SummaryCache` — the on-disk incremental cache.  Each entry
  is keyed by the file's content hash plus :data:`ENGINE_VERSION`;
  a re-run re-indexes only changed files and their reverse-dependency
  cone (a changed module can change how its importers resolve names)
  and replays every other summary byte-identically.

Summaries are plain JSON data end to end — the analyses consume the
same shapes whether a summary was freshly extracted or replayed from
cache, which is what makes warm runs byte-identical to cold ones by
construction.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Iterable

#: bump on any change to summary extraction or finding derivation;
#: invalidates every cached summary at once
ENGINE_VERSION = 1

#: JSON-plain per-file summary (see ``taint.extract_file`` for layout)
Summary = dict[str, Any]


def file_sha(data: bytes) -> str:
    """Content hash keying a file's cached summary."""
    return hashlib.sha256(data).hexdigest()


def discover(paths: Iterable[str | pathlib.Path]) -> list[pathlib.Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: list[pathlib.Path] = []
    for entry in paths:
        p = pathlib.Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    seen: set[str] = set()
    unique: list[pathlib.Path] = []
    for f in files:
        key = f.as_posix()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def module_name_for(path: str | pathlib.Path) -> str:
    """Dotted module name of a source file.

    Walks up while ``__init__.py`` marks the parent as a package, so
    both ``src/repro/...`` and the test fixture tree resolve without
    configuration.  A bare script maps to its stem.
    """
    p = pathlib.Path(path)
    parts = [p.stem] if p.name != "__init__.py" else []
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else p.stem


def collect_aliases(tree: ast.AST, module: str, is_package: bool) -> dict[str, str]:
    """Map local names to the dotted module/object they import.

    Extends the per-file linter's alias map with *relative* imports
    (``from .clock import stamp`` inside ``lintpkg.mixer`` resolves to
    ``lintpkg.clock.stamp``), which the cross-module analyses need.
    """
    pkg_parts = module.split(".") if is_package else module.split(".")[:-1]
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level > 0:
                anchor = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
    return aliases


def _annotation_classes(node: ast.expr | None, aliases: dict[str, str]) -> list[str]:
    """Dotted names of every class mentioned in an annotation.

    ``tuple[AttemptFailure, ...]`` yields the resolved name of
    ``AttemptFailure`` — enough for the taint engine to type elements
    of annotated containers.  String annotations are parsed too
    (``from __future__ import annotations`` stringizes everything).
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    out: list[str] = []
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name):
            dotted = aliases.get(inner.id, inner.id)
            out.append(dotted)
        elif isinstance(inner, ast.Attribute):
            parts: list[str] = []
            cur: ast.expr = inner
            while isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                root = aliases.get(cur.id, cur.id)
                parts.append(root)
                out.append(".".join(reversed(parts)))
    return out


def collect_symbols(
    tree: ast.Module, module: str, is_package: bool
) -> tuple[dict[str, str], dict[str, dict[str, Any]], dict[str, dict[str, Any]]]:
    """One file's (aliases, symbols, classes) for the global tables.

    ``symbols`` maps qualnames *within the module* to ``{"kind",
    "line"}``; ``classes`` records per class its base classes, its
    ordered field list (dataclass-style ``AnnAssign`` in the class
    body — positional constructor mapping) and the resolved annotation
    classes of each field (element typing for containers).
    """
    aliases = collect_aliases(tree, module, is_package)
    symbols: dict[str, dict[str, Any]] = {}
    classes: dict[str, dict[str, Any]] = {}

    def visit(body: list[ast.stmt], prefix: str, in_class: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                symbols[qual] = {
                    "kind": "method" if in_class else "func",
                    "line": node.lineno,
                }
                visit(node.body, f"{qual}.", None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}{node.name}"
                symbols[qual] = {"kind": "class", "line": node.lineno}
                bases: list[str] = []
                for b in node.bases:
                    bases.extend(_annotation_classes(b, aliases))
                fields: list[str] = []
                ftypes: dict[str, list[str]] = {}
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        fields.append(stmt.target.id)
                        ftypes[stmt.target.id] = _annotation_classes(
                            stmt.annotation, aliases
                        )
                classes[qual] = {"bases": bases, "fields": fields, "field_types": ftypes}
                visit(node.body, f"{qual}.", qual)
    visit(tree.body, "", None)
    return aliases, symbols, classes


# ---------------------------------------------------------------------------
# the merged project view
# ---------------------------------------------------------------------------


@dataclass
class ProjectIndex:
    """Global tables the cross-module analyses resolve against.

    Built by merging per-file summaries (cached or fresh); every field
    is keyed by dotted names so lookups are independent of file-system
    layout.
    """

    #: file path (posix) -> module dotted name
    modules: dict[str, str] = field(default_factory=dict)
    #: dotted symbol ("repro.runtime.store.RunStore.put") -> {"kind", "line", "path"}
    symbols: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: dotted class -> {"bases", "fields", "field_types", "path"}
    classes: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: module -> set of project-internal modules it imports
    imports: dict[str, set[str]] = field(default_factory=dict)

    def add_file(self, summary: Summary) -> None:
        path = summary["path"]
        module = summary["module"]
        self.modules[path] = module
        for qual, entry in summary["symbols"].items():
            self.symbols[f"{module}.{qual}"] = {**entry, "path": path}
        for qual, entry in summary["classes"].items():
            self.classes[f"{module}.{qual}"] = {**entry, "path": path}
        # raw dotted import targets; finalize() maps them to modules once
        # every file is registered (registration order must not matter)
        self.imports[module] = set(summary["imports"])

    def known_modules(self) -> set[str]:
        return set(self.modules.values())

    def finalize(self) -> None:
        """Resolve raw import targets to project modules, post-merge.

        An alias target can name an *object* (``repro.runtime.store.put``)
        — the edge belongs to its longest known module prefix.
        """
        known = self.known_modules()
        for module, deps in self.imports.items():
            resolved: set[str] = set()
            for dotted in deps:
                parts = dotted.split(".")
                for cut in range(len(parts), 0, -1):
                    candidate = ".".join(parts[:cut])
                    if candidate in known:
                        if candidate != module:
                            resolved.add(candidate)
                        break
            self.imports[module] = resolved

    def module_of(self, dotted: str) -> str | None:
        """The project module a dotted symbol lives in, if any."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.imports:
                return candidate
        return None

    def resolve_class(self, dotted: str) -> str | None:
        """The dotted name if it names a project class, else ``None``."""
        entry = self.symbols.get(dotted)
        return dotted if entry is not None and entry["kind"] == "class" else None

    def resolve_method(self, cls: str, name: str) -> str | None:
        """``cls.name`` resolved through the (single-level) base chain."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            candidate = f"{cur}.{name}"
            if candidate in self.symbols:
                return candidate
            queue.extend(
                b for b in self.classes.get(cur, {}).get("bases", []) if b in self.classes
            )
        return None

    def reverse_closure(self, changed_modules: set[str]) -> set[str]:
        """Changed modules plus everything that (transitively) imports them.

        This is the re-index *cone*: a changed module may change how
        its importers resolve names, so their summaries are re-derived
        too; everything outside the cone replays from cache.
        """
        reverse: dict[str, set[str]] = {}
        for module, deps in self.imports.items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(module)
        cone = set(changed_modules)
        frontier = list(changed_modules)
        while frontier:
            cur = frontier.pop()
            for dependent in reverse.get(cur, ()):
                if dependent not in cone:
                    cone.add(dependent)
                    frontier.append(dependent)
        return cone


# ---------------------------------------------------------------------------
# the incremental on-disk cache
# ---------------------------------------------------------------------------


def _write_json_atomic_local(path: pathlib.Path, payload: Any) -> None:
    """Tmp-file + ``os.replace`` write without importing the package.

    The exporter's :func:`~repro.reporting.export.write_json_atomic`
    pulls in the benchmark stack (numpy); the linter must stay
    import-light so a cold CI lint step does not pay for it.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:  # repro-lint: disable=REPRO008 -- lint cache entry, not a result; same tmp+replace discipline as the exporter
            fh.write(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class SummaryCache:
    """Per-file summaries keyed by content hash, durable on disk.

    One JSON file holds every entry (the whole project is ~150 files);
    entries carry the producing :data:`ENGINE_VERSION` so an analyzer
    upgrade invalidates them wholesale.  ``None`` as the directory
    disables caching (every file is fresh every run).
    """

    def __init__(self, directory: str | pathlib.Path | None) -> None:
        self.path = (
            pathlib.Path(directory) / "summaries.json" if directory is not None else None
        )
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            try:
                data = json.loads(self.path.read_text())
                if (
                    isinstance(data, dict)
                    and data.get("engine") == ENGINE_VERSION
                    and isinstance(data.get("files"), dict)
                ):
                    self._entries = data["files"]
            except (OSError, ValueError):
                self._entries = {}

    def get(self, path: str, sha: str) -> Summary | None:
        entry = self._entries.get(path)
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            summary: Summary = entry["summary"]
            return summary
        self.misses += 1
        return None

    def put(self, path: str, sha: str, summary: Summary) -> None:
        self._entries[path] = {"sha": sha, "summary": summary}
        self._dirty = True

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files that no longer exist."""
        dead = [p for p in self._entries if p not in live_paths]
        for p in dead:
            del self._entries[p]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        _write_json_atomic_local(
            self.path, {"engine": ENGINE_VERSION, "files": self._entries}
        )
        self._dirty = False
