"""``repro-lint``: an AST analyzer for determinism hazards.

The simulator's contracts (fast == reference bit-identity, fault
apply/revert exactness, kill+resume equality) all assume that two
runs with the same inputs execute the same floating-point operations
in the same order.  Nothing in Python enforces that: one unseeded
``random.random()``, one ``time.time()``, or one iteration over a
``set`` feeding a heap push can silently break every contract at
once.  ``repro-lint`` statically rejects those patterns before they
land.

Rules (see ``docs/static-analysis.md`` for rationale and fixes):

========  ==========================================================
REPRO001  unseeded / module-level RNG use outside ``sim/randomness.py``
REPRO002  wall-clock reads inside ``src/repro`` (benchmarks exempt)
REPRO003  iteration over a set in order-sensitive position
REPRO004  ``sum()`` / ``math.fsum()`` over an unordered iterable
REPRO005  broad ``except`` that swallows without re-raise or validity tag
REPRO006  mutable default argument
REPRO007  missing ``__slots__`` on a class in a ``sim/``/``net/`` hot module
REPRO008  non-atomic ``open(..., "w")`` / ``json.dump`` result write
REPRO009  entropy source (``os.urandom``, ``uuid.uuid4``, ``secrets``)
REPRO010  salted builtin ``hash()`` (varies per process)
REPRO011  result payload serialized outside ``write_json_atomic``
REPRO012  dict-accumulation loop in a ``hot-kernel`` module
REPRO013  ``.json`` write under a store/journal dir bypassing
          ``write_json_atomic``
REPRO014  silent exception swallow in a ``runtime/`` module
========  ==========================================================

REPRO012 is opt-in per module: marking a module with a
``repro-lint: hot-kernel`` comment declares that its loops are
allocation-kernel hot paths, where per-key dict accumulation
(``d[k] += v`` or ``d[k] = d.get(k, 0) + v`` inside a loop) must be a
vectorized reduction (``np.bincount`` / whole-array ops) instead.
Plain numpy subscript updates are not flagged — only names the module
visibly binds to dicts.

REPRO001–REPRO014 are *per-file*.  On top of them sits the
whole-program engine (``repro.devtools.index`` / ``callgraph`` /
``taint``), which this module drives as a client: every analyzed file
yields a JSON-plain summary (its per-file violations, its symbols and
its flow facts), the summaries merge into a project index, and the
interprocedural analyses derive two more rule families:

========  ==========================================================
REPRO015  a nondeterminism source reaches a result sink across calls
          (escape: ``# repro-lint: blessed-source -- seed=<name>``)
REPRO016  concurrency discipline in ``runtime/``: lock-mixed
          attribute mutation, flock'd suffixes opened lockless,
          connection ``.send`` outside a ``with <lock>`` block
========  ==========================================================

Summaries are cached on disk keyed by file content hash
(``--cache-dir``); a re-run re-analyzes only changed files plus their
reverse-dependency cone.  Extraction parallelizes over a process pool
(``-j N``) with output bit-identical to serial, and ``--format
sarif`` emits deterministic SARIF 2.1.0 for CI annotation.

A violation is silenced for one line with::

    risky_call()  # repro-lint: disable=REPRO001 -- why this is safe

and pre-existing debt is carried by a checked-in *baseline* file
(``repro-lint-baseline.json``): with ``--baseline``, only violations
not matched by a recorded entry fail the run, so CI rejects *new*
hazards without demanding an instant cleanup of old ones.  Baseline
entries fingerprint a finding by ``(rule, qualname,
normalized-statement hash)`` — stable under line drift — and carry a
one-line ``reason``; the version-1 per-file/per-rule count format is
still read, with a deprecation note.

Run as ``repro-lint [paths]`` (console script) or
``python -m repro.devtools.lint``.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import pathlib
import re
import sys
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from typing import Any

from repro.devtools import taint as _taint
from repro.devtools.index import (
    ProjectIndex,
    Summary,
    SummaryCache,
    collect_symbols,
    discover,
    file_sha,
    module_name_for,
)

#: rule id -> one-line summary (the full catalogue lives in the docs)
RULES: dict[str, str] = {
    "REPRO001": "unseeded RNG: route randomness through repro.sim.randomness.RandomStreams",
    "REPRO002": "wall-clock read: simulated code must use Simulator.now, never host time",
    "REPRO003": "iteration over a set is order-nondeterministic: wrap the set in sorted()",
    "REPRO004": "float accumulation over an unordered iterable: sort before summing",
    "REPRO005": "broad except swallows the error: re-raise or tag RunValidity",
    "REPRO006": "mutable default argument: default to None and allocate inside",
    "REPRO007": "hot-path class without __slots__ (use __slots__ or @dataclass(slots=True))",
    "REPRO008": "non-atomic result write: use repro.reporting.export.write_json_atomic",
    "REPRO009": "OS entropy source: results would differ on every run",
    "REPRO010": "builtin hash() is salted per process: derive keys explicitly",
    "REPRO011": "result payload written directly: route envelopes/results through "
                "repro.reporting.export.write_json_atomic",
    "REPRO012": "dict-accumulation loop in a hot-kernel module: replace with a "
                "vectorized reduction (np.bincount / whole-array ops)",
    "REPRO013": "store/journal write bypasses write_json_atomic: a torn entry "
                "defeats digest verification and the resume contract",
    "REPRO014": "runtime exception handler swallows the failure silently: "
                "record RunValidity, quarantine, or re-raise",
    "REPRO015": "nondeterministic value reaches a result sink (interprocedural "
                "taint); bless with `# repro-lint: blessed-source -- seed=<name>`",
    "REPRO016": "concurrency discipline in runtime/: lock-mixed attribute "
                "mutation, flock'd path opened without the helper, or a "
                "connection send outside the send_lock pattern",
}

#: default location of the checked-in baseline (repository root)
DEFAULT_BASELINE = "repro-lint-baseline.json"

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_ENTROPY = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})

#: callables whose result does not depend on argument order, so feeding
#: them an unordered iterable is safe (sum is *not* here: float
#: addition does not commute bit-exactly)
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "any", "all", "len", "set", "frozenset",
})

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: calls whose return value is a benchmark result payload (REPRO011)
_PAYLOAD_PRODUCERS = frozenset({
    "to_dict", "to_json", "from_dict", "envelope_for",
    "beff_to_dict", "beffio_to_dict",
})

#: names that mark an expression as carrying a result payload (REPRO011)
_PAYLOAD_NAME_RE = re.compile(r"(result|envelope|payload)", re.IGNORECASE)

#: names/literals that mark an expression as addressing a store or
#: journal location (REPRO013)
_STORE_PATH_RE = re.compile(
    r"(store|journal|manifest|partition|quarantine|objects)", re.IGNORECASE
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:--.*)?$")

#: module marker opting into the hot-kernel rules (REPRO012); matched
#: anywhere in the source so a docstring header line works too
_HOT_KERNEL_RE = re.compile(r"#\s*repro-lint:\s*hot-kernel\b")


@dataclass(frozen=True, slots=True)
class LintViolation:
    """One rule hit at one source location.

    ``qualname`` (the enclosing function's dotted name) and ``stmt``
    (the enclosing statement's location-free AST hash) form the
    line-drift-stable fingerprint the v2 baseline keys on.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    qualname: str = ""
    stmt: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _resolve(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Dotted name a call target resolves to, via the import aliases.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    under ``import numpy as np``; a name with no imported root returns
    ``None`` (a local object the analyzer cannot see through).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted module/object they import."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Yield ``scope``'s nodes without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue  # nested scopes are analyzed on their own
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _set_assigned_names(scope: ast.AST) -> frozenset[str]:
    """Names bound to a syntactic set expression within ``scope``.

    Only simple ``name = set(...)`` / ``name = {a, b}`` / set
    comprehensions are tracked — enough to catch the realistic
    ``pending = set(items) ... for x in pending`` pattern without a
    type checker.  A name also assigned a non-set value in the same
    scope is dropped (it may be either at iteration time).
    """
    names: set[str] = set()
    unsure: set[str] = set()
    for node in _walk_scope(scope):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"set", "frozenset"}
        )
        if is_set:
            names.add(target.id)
        else:
            unsure.add(target.id)
    return frozenset(names - unsure)


def _dict_assigned_names(scope: ast.AST) -> frozenset[str]:
    """Names bound to a syntactic dict expression within ``scope``.

    The REPRO012 counterpart of :func:`_set_assigned_names`: only
    visible ``name = {}`` / ``dict(...)`` / ``defaultdict(...)`` /
    ``Counter(...)`` / dict-comprehension bindings are tracked, so
    numpy arrays and other subscriptable accumulators never match.  A
    name also bound to a non-dict value in the same scope is dropped.
    """
    names: set[str] = set()
    unsure: set[str] = set()
    for node in _walk_scope(scope):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        is_dict = isinstance(value, (ast.Dict, ast.DictComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"dict", "defaultdict", "Counter", "OrderedDict"}
        )
        if is_dict:
            names.add(target.id)
        else:
            unsure.add(target.id)
    return frozenset(names - unsure)


class _Checker(ast.NodeVisitor):
    """Single-file rule engine (one instance per analyzed module)."""

    def __init__(self, path: str, tree: ast.AST, source: str) -> None:
        self.path = path
        self.posix = pathlib.PurePath(path).as_posix()
        self.aliases = _collect_aliases(tree)
        self.violations: list[LintViolation] = []
        self._func_stack: list[str] = []
        self.hot_kernel = bool(_HOT_KERNEL_RE.search(source))
        self._dict_scopes: list[frozenset[str]] = [_dict_assigned_names(tree)]
        self._set_scopes: list[frozenset[str]] = [_set_assigned_names(tree)]
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._suppressed = _suppressions(source)

    # -- helpers -------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str | None = None) -> None:
        line = getattr(node, "lineno", 0)
        disabled = self._suppressed.get(line, frozenset())
        if rule in disabled or "all" in disabled:
            return
        self.violations.append(
            LintViolation(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message or RULES[rule],
            )
        )

    def _in_path(self, *fragments: str) -> bool:
        return any(f in self.posix for f in fragments)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_scopes)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _wrapper_call(self, node: ast.AST) -> str | None:
        """Name of the call directly consuming ``node``, if any."""
        parent = self._parents.get(id(node))
        if isinstance(parent, ast.Call) and node in parent.args:
            if isinstance(parent.func, ast.Name):
                return parent.func.id
            return _resolve(parent.func, self.aliases)
        return None

    def _is_result_payload(self, node: ast.expr) -> bool:
        """Does this expression carry a benchmark result payload?

        Heuristic: the expression calls an envelope/export serializer
        (``to_dict``, ``to_json``, ``envelope_for``, ...) or mentions a
        name containing ``result``/``envelope``/``payload``.
        """
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                f = inner.func
                callee = f.attr if isinstance(f, ast.Attribute) else getattr(f, "id", "")
                if callee in _PAYLOAD_PRODUCERS:
                    return True
            elif isinstance(inner, ast.Name) and _PAYLOAD_NAME_RE.search(inner.id):
                return True
            elif isinstance(inner, ast.Attribute) and _PAYLOAD_NAME_RE.search(inner.attr):
                return True
        return False

    def _is_store_path(self, node: ast.expr) -> bool:
        """Does this expression address a store/journal location?

        Heuristic mirror of :meth:`_is_result_payload`: any name,
        attribute or string literal in the expression that mentions a
        store/journal path component (``store``, ``journal``,
        ``manifest``, ``partition``, ``quarantine``, ``objects``).
        """
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and _STORE_PATH_RE.search(inner.id):
                return True
            if isinstance(inner, ast.Attribute) and _STORE_PATH_RE.search(inner.attr):
                return True
            if (
                isinstance(inner, ast.Constant)
                and isinstance(inner.value, str)
                and _STORE_PATH_RE.search(inner.value)
            ):
                return True
        return False

    # -- scope tracking ------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._func_stack.append(node.name)
        self._set_scopes.append(_set_assigned_names(node))
        self._dict_scopes.append(_dict_assigned_names(node))
        self.generic_visit(node)
        self._dict_scopes.pop()
        self._set_scopes.pop()
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- REPRO006: mutable defaults ------------------------------------

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}
            )
            if mutable:
                self._report(default, "REPRO006")

    # -- REPRO007: __slots__ on hot classes ----------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._in_path("/sim/", "/net/") and not self._class_exempt(node):
            has_slots = any(
                (isinstance(stmt, ast.Assign)
                 and any(isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets))
                or (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__")
                for stmt in node.body
            )
            if not has_slots and not _dataclass_with_slots(node):
                self._report(
                    node, "REPRO007",
                    f"class {node.name!r} in a hot module has no __slots__ "
                    "(add __slots__ or @dataclass(slots=True))",
                )
        self.generic_visit(node)

    @staticmethod
    def _class_exempt(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
            if name.endswith(("Error", "Exception", "Warning")) or name in {
                "Protocol", "NamedTuple", "TypedDict", "Enum", "IntEnum", "type",
            }:
                return True
        return False

    # -- REPRO005: swallowing broad handlers ---------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._broad(node.type) and not self._handler_accounts(node):
            self._report(
                node, "REPRO005",
                "broad except neither re-raises nor tags RunValidity; "
                "a fault would vanish from the result",
            )
        # REPRO014 tightens REPRO005 for the supervision-bearing runtime
        # package: there even a *narrow* handler (``except OSError:
        # pass``) may not make a failure vanish without recording it —
        # the whole point of the supervisor/quarantine layer is that
        # every failure leaves provenance.
        elif self._in_path("/runtime/") and self._swallows_silently(node):
            self._report(
                node, "REPRO014",
                "exception handler in runtime/ swallows the failure with no "
                "trace; record RunValidity, quarantine the key, or re-raise",
            )
        self.generic_visit(node)

    @staticmethod
    def _swallows_silently(node: ast.ExceptHandler) -> bool:
        """Is the handler body pure control flow with no accounting?

        True when every statement is ``pass``, ``continue``, ``break``
        or a constant ``return`` — nothing is logged, tagged, stored or
        re-raised, so the exception evaporates.
        """
        for stmt in node.body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)
            ):
                continue
            return False
        return True

    @staticmethod
    def _broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        names = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        return any(getattr(n, "id", "") in {"Exception", "BaseException"} for n in names)

    @staticmethod
    def _handler_accounts(node: ast.ExceptHandler) -> bool:
        markers = {"RunValidity", "validity", "invalid", "degraded", "flagged"}
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                return True
            if isinstance(inner, ast.Name) and inner.id in markers:
                return True
            if isinstance(inner, ast.Attribute) and inner.attr in markers:
                return True
        return False

    # -- iteration rules ------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        if self.hot_kernel:
            self._check_dict_accumulation(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        if self.hot_kernel:
            self._check_dict_accumulation(node)
        self.generic_visit(node)

    # -- REPRO012: dict accumulation in hot kernels ----------------------

    def _is_dict_name(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and any(
            node.id in scope for scope in self._dict_scopes
        )

    def _check_dict_accumulation(self, loop: ast.For | ast.While) -> None:
        """Flag per-key dict accumulation statements inside ``loop``.

        Inner loops report on their own visit, so only statements whose
        nearest enclosing loop is ``loop`` are scanned here.  Two shapes
        count as accumulation: ``d[k] += v`` on a visibly-dict name, and
        ``d[k] = ... d.get(k, ...) ...`` (the read-modify-write idiom,
        dict-proven by the ``.get`` call itself).
        """
        stack: list[ast.AST] = list(loop.body) + list(loop.orelse)
        while stack:
            stmt = stack.pop()
            if isinstance(
                stmt,
                (ast.For, ast.While, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Subscript):
                if self._is_dict_name(stmt.target.value):
                    self._report(stmt, "REPRO012")
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                    base = target.value.id
                    for inner in ast.walk(stmt.value):
                        if (
                            isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Attribute)
                            and inner.func.attr == "get"
                            and isinstance(inner.func.value, ast.Name)
                            and inner.func.value.id == base
                        ):
                            self._report(stmt, "REPRO012")
                            break
            stack.extend(ast.iter_child_nodes(stmt))

    def _visit_comprehension_node(self, node: ast.AST, ordered_output: bool) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            if not self._is_set_expr(gen.iter):
                continue
            if not ordered_output:
                continue  # a SetComp's output order cannot be observed
            wrapper = self._wrapper_call(node)
            if wrapper in _ORDER_INSENSITIVE:
                continue
            if wrapper in {"sum", "math.fsum"}:
                self._report(gen.iter, "REPRO004")
            else:
                self._report(gen.iter, "REPRO003")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_node(node, ordered_output=True)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_node(node, ordered_output=True)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_node(node, ordered_output=True)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension_node(node, ordered_output=False)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "enumerate"
            and iter_node.args
        ):
            iter_node = iter_node.args[0]
        if self._is_set_expr(iter_node):
            self._report(iter_node, "REPRO003")

    # -- call-target rules ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        resolved = _resolve(func, self.aliases)

        if resolved is not None:
            if (
                (resolved.startswith("random.") or resolved.startswith("numpy.random."))
                and not self.posix.endswith("sim/randomness.py")
            ):
                rule = "REPRO009" if resolved == "random.SystemRandom" else "REPRO001"
                self._report(node, rule, f"{RULES[rule]} (call to {resolved})")
            elif resolved in _WALL_CLOCK and not self._in_path(
                "benchmarks/", "/tests/", "devtools/"
            ):
                self._report(node, "REPRO002", f"{RULES['REPRO002']} ({resolved})")
            elif resolved in _ENTROPY or resolved.startswith("secrets."):
                self._report(node, "REPRO009", f"{RULES['REPRO009']} ({resolved})")
            elif resolved == "json.dump" and not self.posix.endswith("reporting/export.py"):
                self._report(node, "REPRO008")

        if name == "hash" and "__hash__" not in self._func_stack:
            self._report(node, "REPRO010")
        elif name in {"list", "tuple"} and len(node.args) == 1 and self._is_set_expr(node.args[0]):
            self._report(node.args[0], "REPRO003")
        elif name in {"sum"} or resolved == "math.fsum":
            if node.args and self._is_set_expr(node.args[0]):
                self._report(node.args[0], "REPRO004")
        elif name == "open" and not self.posix.endswith("reporting/export.py"):
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and any(c in mode.value for c in "wax")
            ):
                self._report(node, "REPRO008")

        if isinstance(func, ast.Attribute) and func.attr in {"write_text", "write_bytes"} \
                and not self.posix.endswith("reporting/export.py"):
            self._report(node, "REPRO008")

        # REPRO011 is independent of REPRO008's atomicity concern: even
        # an atomic hand-rolled write of a result payload bypasses the
        # envelope schema/validity serialization contract.
        if not self.posix.endswith("reporting/export.py"):
            sink = resolved == "json.dump" or (
                isinstance(func, ast.Attribute)
                and func.attr in {"write_text", "write_bytes"}
            )
            if sink and any(self._is_result_payload(a) for a in node.args):
                self._report(node, "REPRO011")

        # REPRO013 generalizes REPRO011 to the store/journal layer: a
        # write addressed at a store or journal location that bypasses
        # write_json_atomic can tear an entry, defeating the store's
        # digest verification and the journal's resume contract.
        if not self.posix.endswith("reporting/export.py"):
            target: ast.expr | None = None
            if resolved == "json.dump" and len(node.args) >= 2:
                target = node.args[1]
            elif isinstance(func, ast.Attribute) and func.attr in {
                "write_text", "write_bytes",
            }:
                target = func.value
            elif name == "open" and node.args:
                mode = node.args[1] if len(node.args) >= 2 else None
                for kw in node.keywords:
                    if kw.arg == "mode":
                        mode = kw.value
                if (
                    isinstance(mode, ast.Constant)
                    and isinstance(mode.value, str)
                    and any(c in mode.value for c in "wax")
                ):
                    target = node.args[0]
            if target is not None and self._is_store_path(target):
                self._report(node, "REPRO013")

        self.generic_visit(node)


def _dataclass_with_slots(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            target = dec.func
            name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
            if name == "dataclass":
                return any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords
                )
    return False


def _suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line ``# repro-lint: disable=RULE[,RULE]`` directives."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            out[lineno] = rules
    return out


# -- fingerprint site map ----------------------------------------------


def build_site_map(tree: ast.Module, module: str) -> dict[int, tuple[str, str]]:
    """Map each source line to its ``(qualname, statement hash)``.

    The qualname is the dotted enclosing function (or the module for
    top-level code); the hash is the location-free fingerprint of the
    statement *at function-body level* (a violation inside a ``with``
    block hashes the whole ``with`` statement).  Per-file violations
    get their v2 baseline fingerprint attached via this map, so the
    per-file rules and the interprocedural rules key baselines
    identically.
    """
    out: dict[int, tuple[str, str]] = {}

    def fill(stmt: ast.stmt, qual: str) -> None:
        fingerprint = _taint.stmt_fingerprint(stmt)
        end = getattr(stmt, "end_lineno", None) or stmt.lineno
        for line in range(stmt.lineno, end + 1):
            out[line] = (qual, fingerprint)

    def visit(body: list[ast.stmt], prefix: str, owner: str | None) -> None:
        # ``owner`` attributes plain statements; ``None`` inside a
        # function body (already filled at the call site) — the
        # recursion there only discovers nested defs, it must not
        # re-attribute the enclosing statements
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}.{prefix}{node.name}"
                header = hashlib.sha256(
                    f"def {node.name}({ast.dump(node.args)})".encode()
                ).hexdigest()[:16]
                start = min(
                    [d.lineno for d in node.decorator_list] + [node.lineno]
                )
                end = getattr(node, "end_lineno", None) or node.lineno
                for line in range(start, end + 1):
                    out[line] = (qual, header)
                for stmt in node.body:
                    fill(stmt, qual)
                visit(node.body, f"{prefix}{node.name}.", None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{module}.{prefix}{node.name}"
                header = hashlib.sha256(
                    f"class {node.name}".encode()
                ).hexdigest()[:16]
                out[node.lineno] = (qual, header)
                for stmt in node.body:
                    if not isinstance(
                        stmt,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        fill(stmt, qual)
                visit(node.body, f"{prefix}{node.name}.", None)
            elif owner is not None:
                fill(node, owner)
    visit(tree.body, "", module)
    return out


def _attach_fingerprints(
    violations: list[LintViolation], site_map: dict[int, tuple[str, str]], module: str
) -> list[LintViolation]:
    out: list[LintViolation] = []
    for v in violations:
        qual, stmt = site_map.get(v.line, (module, ""))
        out.append(replace(v, qualname=qual, stmt=stmt))
    return out


# -- public API --------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> list[LintViolation]:
    """Analyze one module's source text; returns sorted violations."""
    tree = ast.parse(source, filename=path)
    checker = _Checker(path, tree, source)
    checker.visit(tree)
    module = module_name_for(path) if path != "<string>" else "<string>"
    violations = _attach_fingerprints(
        checker.violations, build_site_map(tree, module), module
    )
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


def lint_paths(paths: Iterable[str | pathlib.Path]) -> list[LintViolation]:
    """Per-file rules only, over the given files/directories.

    Kept as the lightweight entry point (used by the fast unit tests);
    the CLI runs :func:`run_engine`, which adds the interprocedural
    rules on top of exactly these per-file results.
    """
    violations: list[LintViolation] = []
    for file in discover(paths):
        violations.extend(lint_source(file.read_text(), str(file)))
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


# -- the whole-program engine ------------------------------------------


def extract_file(path: str) -> Summary:
    """One file's complete JSON-plain summary (the cacheable unit).

    Runs the per-file rules *and* the flow extraction in one parse, so
    a cache hit skips both.  Pure function of the file's bytes — the
    property that makes parallel extraction bit-identical to serial
    and warm runs bit-identical to cold.
    """
    p = pathlib.Path(path)
    data = p.read_bytes()
    source = data.decode()
    posix = p.as_posix()
    module = module_name_for(p)
    tree = ast.parse(source, filename=path)
    aliases, symbols, classes = collect_symbols(
        tree, module, is_package=p.name == "__init__.py"
    )
    flows = _taint.extract_flows(tree, module, aliases, symbols, classes, source)
    checker = _Checker(posix, tree, source)
    checker.visit(tree)
    violations = _attach_fingerprints(
        sorted(checker.violations, key=lambda v: (v.line, v.col, v.rule)),
        build_site_map(tree, module),
        module,
    )
    return {
        "path": posix,
        "module": module,
        "sha": file_sha(data),
        "imports": sorted(set(aliases.values())),
        "symbols": symbols,
        "classes": classes,
        "flows": flows,
        "violations": [
            [v.line, v.col, v.rule, v.message, v.qualname, v.stmt]
            for v in violations
        ],
        "suppressed": {
            str(line): sorted(rules)
            for line, rules in _suppressions(source).items()
        },
    }


def _extract_many(paths: list[str], jobs: int) -> dict[str, Summary]:
    if jobs > 1 and len(paths) > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            return dict(zip(paths, pool.map(extract_file, paths, chunksize=4)))
    return {path: extract_file(path) for path in paths}


def _build_index(summaries: dict[str, Summary]) -> ProjectIndex:
    index = ProjectIndex()
    for path in sorted(summaries):
        index.add_file(summaries[path])
    index.finalize()
    return index


@dataclass
class EngineReport:
    """Everything one engine run produced."""

    violations: list[LintViolation] = field(default_factory=list)
    summaries: dict[str, Summary] = field(default_factory=dict)
    index: ProjectIndex = field(default_factory=ProjectIndex)
    stats: dict[str, Any] = field(default_factory=dict)


def run_engine(
    paths: Iterable[str | pathlib.Path],
    cache_dir: str | pathlib.Path | None = None,
    jobs: int = 0,
) -> EngineReport:
    """Whole-program analysis: per-file rules + interprocedural rules.

    Incremental: with a cache directory, only files whose content hash
    changed — plus their reverse-dependency cone (importers may
    resolve names through them) — are re-extracted; every other
    summary replays from cache.  The global fixpoint always re-runs
    over the merged summaries, which is cheap and guarantees the
    report is a pure function of the current file contents.
    """
    t0 = time.perf_counter()
    files = [str(f) for f in discover(paths)]
    cache = SummaryCache(cache_dir)
    shas: dict[str, str] = {}
    cached: dict[str, Summary] = {}
    changed: list[str] = []
    for path in files:
        posix = pathlib.PurePath(path).as_posix()
        sha = file_sha(pathlib.Path(path).read_bytes())
        shas[posix] = sha
        summary = cache.get(posix, sha)
        if summary is None:
            changed.append(path)
        else:
            cached[posix] = summary

    summaries = dict(cached)
    summaries.update(_extract_many(changed, jobs))

    # the cone: a changed module can change how its importers resolve
    # names (extraction resolves at parse time), so re-extract them too
    provisional = _build_index(summaries)
    changed_posix = {pathlib.PurePath(p).as_posix() for p in changed}
    changed_modules = {
        provisional.modules[p] for p in changed_posix if p in provisional.modules
    }
    cone_modules = provisional.reverse_closure(changed_modules)
    cone_paths = sorted(
        p for p in cached
        if provisional.modules.get(p) in cone_modules
    )
    summaries.update(_extract_many(cone_paths, jobs))

    reanalyzed = sorted(changed_posix | set(cone_paths))
    for posix in reanalyzed:
        cache.put(posix, shas[posix], summaries[posix])
    cache.prune(set(summaries))
    cache.save()

    index = _build_index(summaries)
    analysis = _taint.TaintAnalysis(index, summaries)
    violations: list[LintViolation] = []
    for posix in sorted(summaries):
        for line, col, rule, message, qualname, stmt in summaries[posix]["violations"]:
            violations.append(LintViolation(
                path=posix, line=int(line), col=int(col), rule=str(rule),
                message=str(message), qualname=str(qualname), stmt=str(stmt),
            ))
    for finding in analysis.findings():
        violations.append(LintViolation(
            path=finding.path, line=finding.line, col=1, rule=finding.rule,
            message=finding.message, qualname=finding.qualname,
            stmt=finding.stmt,
        ))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule, v.message))
    stats = {
        "files": len(files),
        "reanalyzed": reanalyzed,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "wall_s": time.perf_counter() - t0,
    }
    return EngineReport(
        violations=violations, summaries=summaries, index=index, stats=stats
    )


# -- baseline ----------------------------------------------------------


def _v1_key(violation: LintViolation) -> str:
    return f"{pathlib.PurePath(violation.path).as_posix()}::{violation.rule}"


def _v2_key(violation: LintViolation) -> tuple[str, str, str]:
    return (violation.rule, violation.qualname, violation.stmt)


@dataclass
class Baseline:
    """Forgiven pre-existing debt, in either on-disk format.

    Version 2 (current) fingerprints an entry by ``(rule, qualname,
    statement hash)`` with a per-entry count and a one-line reason —
    stable when unrelated edits shift line numbers.  Version 1 (the
    original per-``path::rule`` count map) still loads, with a
    deprecation note, so older checkouts keep working; rewrite it with
    ``--write-baseline``.
    """

    v2: dict[tuple[str, str, str], int] = field(default_factory=dict)
    reasons: dict[tuple[str, str, str], str] = field(default_factory=dict)
    v1: dict[str, int] = field(default_factory=dict)
    legacy: bool = False


def load_baseline(path: str | pathlib.Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    p = pathlib.Path(path)
    if not p.exists():
        return Baseline()
    data = json.loads(p.read_text())
    version = data.get("version", 1)
    if version >= 2:
        baseline = Baseline()
        for entry in data.get("entries", []):
            key = (
                str(entry["rule"]), str(entry["qualname"]), str(entry["stmt"])
            )
            baseline.v2[key] = baseline.v2.get(key, 0) + int(entry.get("count", 1))
            if entry.get("reason"):
                baseline.reasons[key] = str(entry["reason"])
        return baseline
    print(
        f"repro-lint: {p} uses the deprecated version-1 baseline format "
        "(per-file rule counts); rewrite it with --write-baseline to get "
        "line-drift-stable fingerprints",
        file=sys.stderr,
    )
    entries = data.get("entries", {})
    return Baseline(
        v1={str(k): int(v) for k, v in entries.items()}, legacy=True
    )


def write_baseline(
    path: str | pathlib.Path,
    violations: Sequence[LintViolation],
    prior: Baseline | None = None,
) -> None:
    """Persist current violations as a version-2 baseline (atomic).

    Reasons recorded in the prior baseline survive the rewrite when
    the fingerprint still matches; new entries get an empty reason for
    a human to fill in.
    """
    from repro.devtools.index import _write_json_atomic_local

    counts: dict[tuple[str, str, str], int] = {}
    for v in violations:
        key = _v2_key(v)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {
            "rule": rule,
            "qualname": qualname,
            "stmt": stmt,
            "count": counts[(rule, qualname, stmt)],
            "reason": (prior.reasons.get((rule, qualname, stmt), "")
                       if prior else ""),
        }
        for rule, qualname, stmt in sorted(counts)
    ]
    _write_json_atomic_local(
        pathlib.Path(path), {"version": 2, "entries": entries}
    )


def apply_baseline(
    violations: Sequence[LintViolation],
    baseline: Baseline | dict[str, int],
) -> tuple[list[LintViolation], int]:
    """Split violations into (new, count suppressed by the baseline).

    Per fingerprint, up to the baselined count of matches is forgiven
    (earliest lines first — the stable choice when a statement is
    duplicated); anything beyond is new debt and fails the run.  A
    bare ``{"path::RULE": count}`` mapping is accepted as a legacy v1
    baseline.
    """
    if isinstance(baseline, dict):
        baseline = Baseline(v1=dict(baseline), legacy=True)
    v2_allowance = dict(baseline.v2)
    v1_allowance = dict(baseline.v1)
    fresh: list[LintViolation] = []
    suppressed = 0
    for violation in violations:  # already sorted by (path, line)
        key2 = _v2_key(violation)
        key1 = _v1_key(violation)
        if v2_allowance.get(key2, 0) > 0:
            v2_allowance[key2] -= 1
            suppressed += 1
        elif v1_allowance.get(key1, 0) > 0:
            v1_allowance[key1] -= 1
            suppressed += 1
        else:
            fresh.append(violation)
    return fresh, suppressed


# -- CLI ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism-focused whole-program analyzer for the repro codebase",
        epilog="exit codes: 0 clean, 1 new violations, 2 usage error, "
               "3 time budget exceeded",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE, default=None, metavar="FILE",
        help="forgive violations recorded in FILE "
             f"(default when given without a value: {DEFAULT_BASELINE})",
    )
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current violations into the baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument(
        "-j", "--jobs", nargs="?", const=0, default=1, type=int, metavar="N",
        help="parallel extraction processes (bare -j: one per CPU, capped at 8; "
             "default: serial); output is bit-identical either way",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="incremental summary cache keyed by file content hash "
             "(only changed files + their reverse-dependency cone re-analyze)",
    )
    parser.add_argument(
        "--format", choices=("text", "sarif"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--budget-s", type=float, default=None, metavar="SECONDS",
        help="fail with exit 3 when the analysis wall time exceeds SECONDS",
    )
    parser.add_argument(
        "--stats-json", default=None, metavar="FILE",
        help="write engine statistics (files, reanalyzed set, cache hits, wall) to FILE",
    )
    parser.add_argument(
        "--dump-callgraph", action="store_true",
        help="print the resolved call graph (roots + edges) and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0

    jobs = args.jobs
    if jobs == 0:
        import os

        jobs = min(os.cpu_count() or 1, 8)
    if jobs < 1:
        parser.error("--jobs must be >= 1 (or bare -j for auto)")

    try:
        report = run_engine(args.paths, cache_dir=args.cache_dir, jobs=jobs)
    except (OSError, SyntaxError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    violations = report.violations
    stats = report.stats

    # the timing line goes to stderr so stdout (text report or SARIF)
    # stays byte-identical across cold/warm/parallel runs
    print(
        f"repro-lint: analyzed {stats['files']} file(s) "
        f"({len(stats['reanalyzed'])} fresh, {stats['cache_hits']} cached) "
        f"in {stats['wall_s']:.3f}s",
        file=sys.stderr,
    )
    if args.stats_json is not None:
        from repro.devtools.index import _write_json_atomic_local

        _write_json_atomic_local(pathlib.Path(args.stats_json), stats)

    if args.dump_callgraph:
        from repro.devtools.callgraph import build_callgraph, console_script_entries

        entries = console_script_entries("pyproject.toml")
        graph = build_callgraph(report.index, report.summaries, entries)
        sys.stdout.write(graph.to_text())
        return 0

    prior = load_baseline(args.baseline) if args.baseline is not None else None
    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(target, violations, prior=prior)
        print(f"repro-lint: wrote {len(violations)} violation(s) to {target}")
        return 0

    suppressed = 0
    if prior is not None:
        violations, suppressed = apply_baseline(violations, prior)

    if args.format == "sarif":
        from repro.devtools.sarif import render_sarif

        sys.stdout.write(render_sarif(violations, RULES, tool_version="2.0"))
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(f"repro-lint: {len(violations)} new violation(s)"
                  + (f" ({suppressed} baselined)" if suppressed else ""))
        elif suppressed:
            print(f"repro-lint: clean ({suppressed} baselined violation(s) remain)")
        else:
            print("repro-lint: clean")

    if args.budget_s is not None and stats["wall_s"] > args.budget_s:
        print(
            f"repro-lint: wall {stats['wall_s']:.3f}s exceeded budget "
            f"{args.budget_s:.3f}s",
            file=sys.stderr,
        )
        return 3
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
