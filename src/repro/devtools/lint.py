"""``repro-lint``: an AST analyzer for determinism hazards.

The simulator's contracts (fast == reference bit-identity, fault
apply/revert exactness, kill+resume equality) all assume that two
runs with the same inputs execute the same floating-point operations
in the same order.  Nothing in Python enforces that: one unseeded
``random.random()``, one ``time.time()``, or one iteration over a
``set`` feeding a heap push can silently break every contract at
once.  ``repro-lint`` statically rejects those patterns before they
land.

Rules (see ``docs/static-analysis.md`` for rationale and fixes):

========  ==========================================================
REPRO001  unseeded / module-level RNG use outside ``sim/randomness.py``
REPRO002  wall-clock reads inside ``src/repro`` (benchmarks exempt)
REPRO003  iteration over a set in order-sensitive position
REPRO004  ``sum()`` / ``math.fsum()`` over an unordered iterable
REPRO005  broad ``except`` that swallows without re-raise or validity tag
REPRO006  mutable default argument
REPRO007  missing ``__slots__`` on a class in a ``sim/``/``net/`` hot module
REPRO008  non-atomic ``open(..., "w")`` / ``json.dump`` result write
REPRO009  entropy source (``os.urandom``, ``uuid.uuid4``, ``secrets``)
REPRO010  salted builtin ``hash()`` (varies per process)
REPRO011  result payload serialized outside ``write_json_atomic``
REPRO012  dict-accumulation loop in a ``hot-kernel`` module
REPRO013  ``.json`` write under a store/journal dir bypassing
          ``write_json_atomic``
REPRO014  silent exception swallow in a ``runtime/`` module
========  ==========================================================

REPRO012 is opt-in per module: marking a module with a
``repro-lint: hot-kernel`` comment declares that its loops are
allocation-kernel hot paths, where per-key dict accumulation
(``d[k] += v`` or ``d[k] = d.get(k, 0) + v`` inside a loop) must be a
vectorized reduction (``np.bincount`` / whole-array ops) instead.
Plain numpy subscript updates are not flagged — only names the module
visibly binds to dicts.

A violation is silenced for one line with::

    risky_call()  # repro-lint: disable=REPRO001 -- why this is safe

and pre-existing debt is carried by a checked-in *baseline* file
(``repro-lint-baseline.json``): with ``--baseline``, only violations
exceeding the recorded per-file/per-rule counts fail the run, so CI
rejects *new* hazards without demanding an instant cleanup of old
ones.  (This repository's baseline carries the store's pre-REPRO014
LRU/eviction race handlers; everything else is clean.)

Run as ``repro-lint [paths]`` (console script) or
``python -m repro.devtools.lint``.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import re
import sys
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

#: rule id -> one-line summary (the full catalogue lives in the docs)
RULES: dict[str, str] = {
    "REPRO001": "unseeded RNG: route randomness through repro.sim.randomness.RandomStreams",
    "REPRO002": "wall-clock read: simulated code must use Simulator.now, never host time",
    "REPRO003": "iteration over a set is order-nondeterministic: wrap the set in sorted()",
    "REPRO004": "float accumulation over an unordered iterable: sort before summing",
    "REPRO005": "broad except swallows the error: re-raise or tag RunValidity",
    "REPRO006": "mutable default argument: default to None and allocate inside",
    "REPRO007": "hot-path class without __slots__ (use __slots__ or @dataclass(slots=True))",
    "REPRO008": "non-atomic result write: use repro.reporting.export.write_json_atomic",
    "REPRO009": "OS entropy source: results would differ on every run",
    "REPRO010": "builtin hash() is salted per process: derive keys explicitly",
    "REPRO011": "result payload written directly: route envelopes/results through "
                "repro.reporting.export.write_json_atomic",
    "REPRO012": "dict-accumulation loop in a hot-kernel module: replace with a "
                "vectorized reduction (np.bincount / whole-array ops)",
    "REPRO013": "store/journal write bypasses write_json_atomic: a torn entry "
                "defeats digest verification and the resume contract",
    "REPRO014": "runtime exception handler swallows the failure silently: "
                "record RunValidity, quarantine, or re-raise",
}

#: default location of the checked-in baseline (repository root)
DEFAULT_BASELINE = "repro-lint-baseline.json"

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_ENTROPY = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})

#: callables whose result does not depend on argument order, so feeding
#: them an unordered iterable is safe (sum is *not* here: float
#: addition does not commute bit-exactly)
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "any", "all", "len", "set", "frozenset",
})

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: calls whose return value is a benchmark result payload (REPRO011)
_PAYLOAD_PRODUCERS = frozenset({
    "to_dict", "to_json", "from_dict", "envelope_for",
    "beff_to_dict", "beffio_to_dict",
})

#: names that mark an expression as carrying a result payload (REPRO011)
_PAYLOAD_NAME_RE = re.compile(r"(result|envelope|payload)", re.IGNORECASE)

#: names/literals that mark an expression as addressing a store or
#: journal location (REPRO013)
_STORE_PATH_RE = re.compile(
    r"(store|journal|manifest|partition|quarantine|objects)", re.IGNORECASE
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:--.*)?$")

#: module marker opting into the hot-kernel rules (REPRO012); matched
#: anywhere in the source so a docstring header line works too
_HOT_KERNEL_RE = re.compile(r"#\s*repro-lint:\s*hot-kernel\b")


@dataclass(frozen=True, slots=True)
class LintViolation:
    """One rule hit at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _resolve(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Dotted name a call target resolves to, via the import aliases.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    under ``import numpy as np``; a name with no imported root returns
    ``None`` (a local object the analyzer cannot see through).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted module/object they import."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Yield ``scope``'s nodes without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue  # nested scopes are analyzed on their own
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _set_assigned_names(scope: ast.AST) -> frozenset[str]:
    """Names bound to a syntactic set expression within ``scope``.

    Only simple ``name = set(...)`` / ``name = {a, b}`` / set
    comprehensions are tracked — enough to catch the realistic
    ``pending = set(items) ... for x in pending`` pattern without a
    type checker.  A name also assigned a non-set value in the same
    scope is dropped (it may be either at iteration time).
    """
    names: set[str] = set()
    unsure: set[str] = set()
    for node in _walk_scope(scope):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"set", "frozenset"}
        )
        if is_set:
            names.add(target.id)
        else:
            unsure.add(target.id)
    return frozenset(names - unsure)


def _dict_assigned_names(scope: ast.AST) -> frozenset[str]:
    """Names bound to a syntactic dict expression within ``scope``.

    The REPRO012 counterpart of :func:`_set_assigned_names`: only
    visible ``name = {}`` / ``dict(...)`` / ``defaultdict(...)`` /
    ``Counter(...)`` / dict-comprehension bindings are tracked, so
    numpy arrays and other subscriptable accumulators never match.  A
    name also bound to a non-dict value in the same scope is dropped.
    """
    names: set[str] = set()
    unsure: set[str] = set()
    for node in _walk_scope(scope):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        is_dict = isinstance(value, (ast.Dict, ast.DictComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"dict", "defaultdict", "Counter", "OrderedDict"}
        )
        if is_dict:
            names.add(target.id)
        else:
            unsure.add(target.id)
    return frozenset(names - unsure)


class _Checker(ast.NodeVisitor):
    """Single-file rule engine (one instance per analyzed module)."""

    def __init__(self, path: str, tree: ast.AST, source: str) -> None:
        self.path = path
        self.posix = pathlib.PurePath(path).as_posix()
        self.aliases = _collect_aliases(tree)
        self.violations: list[LintViolation] = []
        self._func_stack: list[str] = []
        self.hot_kernel = bool(_HOT_KERNEL_RE.search(source))
        self._dict_scopes: list[frozenset[str]] = [_dict_assigned_names(tree)]
        self._set_scopes: list[frozenset[str]] = [_set_assigned_names(tree)]
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._suppressed = _suppressions(source)

    # -- helpers -------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str | None = None) -> None:
        line = getattr(node, "lineno", 0)
        disabled = self._suppressed.get(line, frozenset())
        if rule in disabled or "all" in disabled:
            return
        self.violations.append(
            LintViolation(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message or RULES[rule],
            )
        )

    def _in_path(self, *fragments: str) -> bool:
        return any(f in self.posix for f in fragments)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_scopes)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _wrapper_call(self, node: ast.AST) -> str | None:
        """Name of the call directly consuming ``node``, if any."""
        parent = self._parents.get(id(node))
        if isinstance(parent, ast.Call) and node in parent.args:
            if isinstance(parent.func, ast.Name):
                return parent.func.id
            return _resolve(parent.func, self.aliases)
        return None

    def _is_result_payload(self, node: ast.expr) -> bool:
        """Does this expression carry a benchmark result payload?

        Heuristic: the expression calls an envelope/export serializer
        (``to_dict``, ``to_json``, ``envelope_for``, ...) or mentions a
        name containing ``result``/``envelope``/``payload``.
        """
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                f = inner.func
                callee = f.attr if isinstance(f, ast.Attribute) else getattr(f, "id", "")
                if callee in _PAYLOAD_PRODUCERS:
                    return True
            elif isinstance(inner, ast.Name) and _PAYLOAD_NAME_RE.search(inner.id):
                return True
            elif isinstance(inner, ast.Attribute) and _PAYLOAD_NAME_RE.search(inner.attr):
                return True
        return False

    def _is_store_path(self, node: ast.expr) -> bool:
        """Does this expression address a store/journal location?

        Heuristic mirror of :meth:`_is_result_payload`: any name,
        attribute or string literal in the expression that mentions a
        store/journal path component (``store``, ``journal``,
        ``manifest``, ``partition``, ``quarantine``, ``objects``).
        """
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and _STORE_PATH_RE.search(inner.id):
                return True
            if isinstance(inner, ast.Attribute) and _STORE_PATH_RE.search(inner.attr):
                return True
            if (
                isinstance(inner, ast.Constant)
                and isinstance(inner.value, str)
                and _STORE_PATH_RE.search(inner.value)
            ):
                return True
        return False

    # -- scope tracking ------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._func_stack.append(node.name)
        self._set_scopes.append(_set_assigned_names(node))
        self._dict_scopes.append(_dict_assigned_names(node))
        self.generic_visit(node)
        self._dict_scopes.pop()
        self._set_scopes.pop()
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- REPRO006: mutable defaults ------------------------------------

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}
            )
            if mutable:
                self._report(default, "REPRO006")

    # -- REPRO007: __slots__ on hot classes ----------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._in_path("/sim/", "/net/") and not self._class_exempt(node):
            has_slots = any(
                (isinstance(stmt, ast.Assign)
                 and any(isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets))
                or (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__")
                for stmt in node.body
            )
            if not has_slots and not _dataclass_with_slots(node):
                self._report(
                    node, "REPRO007",
                    f"class {node.name!r} in a hot module has no __slots__ "
                    "(add __slots__ or @dataclass(slots=True))",
                )
        self.generic_visit(node)

    @staticmethod
    def _class_exempt(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
            if name.endswith(("Error", "Exception", "Warning")) or name in {
                "Protocol", "NamedTuple", "TypedDict", "Enum", "IntEnum", "type",
            }:
                return True
        return False

    # -- REPRO005: swallowing broad handlers ---------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._broad(node.type) and not self._handler_accounts(node):
            self._report(
                node, "REPRO005",
                "broad except neither re-raises nor tags RunValidity; "
                "a fault would vanish from the result",
            )
        # REPRO014 tightens REPRO005 for the supervision-bearing runtime
        # package: there even a *narrow* handler (``except OSError:
        # pass``) may not make a failure vanish without recording it —
        # the whole point of the supervisor/quarantine layer is that
        # every failure leaves provenance.
        elif self._in_path("/runtime/") and self._swallows_silently(node):
            self._report(
                node, "REPRO014",
                "exception handler in runtime/ swallows the failure with no "
                "trace; record RunValidity, quarantine the key, or re-raise",
            )
        self.generic_visit(node)

    @staticmethod
    def _swallows_silently(node: ast.ExceptHandler) -> bool:
        """Is the handler body pure control flow with no accounting?

        True when every statement is ``pass``, ``continue``, ``break``
        or a constant ``return`` — nothing is logged, tagged, stored or
        re-raised, so the exception evaporates.
        """
        for stmt in node.body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)
            ):
                continue
            return False
        return True

    @staticmethod
    def _broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        names = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        return any(getattr(n, "id", "") in {"Exception", "BaseException"} for n in names)

    @staticmethod
    def _handler_accounts(node: ast.ExceptHandler) -> bool:
        markers = {"RunValidity", "validity", "invalid", "degraded", "flagged"}
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                return True
            if isinstance(inner, ast.Name) and inner.id in markers:
                return True
            if isinstance(inner, ast.Attribute) and inner.attr in markers:
                return True
        return False

    # -- iteration rules ------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        if self.hot_kernel:
            self._check_dict_accumulation(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        if self.hot_kernel:
            self._check_dict_accumulation(node)
        self.generic_visit(node)

    # -- REPRO012: dict accumulation in hot kernels ----------------------

    def _is_dict_name(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and any(
            node.id in scope for scope in self._dict_scopes
        )

    def _check_dict_accumulation(self, loop: ast.For | ast.While) -> None:
        """Flag per-key dict accumulation statements inside ``loop``.

        Inner loops report on their own visit, so only statements whose
        nearest enclosing loop is ``loop`` are scanned here.  Two shapes
        count as accumulation: ``d[k] += v`` on a visibly-dict name, and
        ``d[k] = ... d.get(k, ...) ...`` (the read-modify-write idiom,
        dict-proven by the ``.get`` call itself).
        """
        stack: list[ast.AST] = list(loop.body) + list(loop.orelse)
        while stack:
            stmt = stack.pop()
            if isinstance(
                stmt,
                (ast.For, ast.While, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Subscript):
                if self._is_dict_name(stmt.target.value):
                    self._report(stmt, "REPRO012")
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                    base = target.value.id
                    for inner in ast.walk(stmt.value):
                        if (
                            isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Attribute)
                            and inner.func.attr == "get"
                            and isinstance(inner.func.value, ast.Name)
                            and inner.func.value.id == base
                        ):
                            self._report(stmt, "REPRO012")
                            break
            stack.extend(ast.iter_child_nodes(stmt))

    def _visit_comprehension_node(self, node: ast.AST, ordered_output: bool) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            if not self._is_set_expr(gen.iter):
                continue
            if not ordered_output:
                continue  # a SetComp's output order cannot be observed
            wrapper = self._wrapper_call(node)
            if wrapper in _ORDER_INSENSITIVE:
                continue
            if wrapper in {"sum", "math.fsum"}:
                self._report(gen.iter, "REPRO004")
            else:
                self._report(gen.iter, "REPRO003")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_node(node, ordered_output=True)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_node(node, ordered_output=True)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_node(node, ordered_output=True)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension_node(node, ordered_output=False)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "enumerate"
            and iter_node.args
        ):
            iter_node = iter_node.args[0]
        if self._is_set_expr(iter_node):
            self._report(iter_node, "REPRO003")

    # -- call-target rules ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        resolved = _resolve(func, self.aliases)

        if resolved is not None:
            if (
                (resolved.startswith("random.") or resolved.startswith("numpy.random."))
                and not self.posix.endswith("sim/randomness.py")
            ):
                rule = "REPRO009" if resolved == "random.SystemRandom" else "REPRO001"
                self._report(node, rule, f"{RULES[rule]} (call to {resolved})")
            elif resolved in _WALL_CLOCK and not self._in_path(
                "benchmarks/", "/tests/", "devtools/"
            ):
                self._report(node, "REPRO002", f"{RULES['REPRO002']} ({resolved})")
            elif resolved in _ENTROPY or resolved.startswith("secrets."):
                self._report(node, "REPRO009", f"{RULES['REPRO009']} ({resolved})")
            elif resolved == "json.dump" and not self.posix.endswith("reporting/export.py"):
                self._report(node, "REPRO008")

        if name == "hash" and "__hash__" not in self._func_stack:
            self._report(node, "REPRO010")
        elif name in {"list", "tuple"} and len(node.args) == 1 and self._is_set_expr(node.args[0]):
            self._report(node.args[0], "REPRO003")
        elif name in {"sum"} or resolved == "math.fsum":
            if node.args and self._is_set_expr(node.args[0]):
                self._report(node.args[0], "REPRO004")
        elif name == "open" and not self.posix.endswith("reporting/export.py"):
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and any(c in mode.value for c in "wax")
            ):
                self._report(node, "REPRO008")

        if isinstance(func, ast.Attribute) and func.attr in {"write_text", "write_bytes"} \
                and not self.posix.endswith("reporting/export.py"):
            self._report(node, "REPRO008")

        # REPRO011 is independent of REPRO008's atomicity concern: even
        # an atomic hand-rolled write of a result payload bypasses the
        # envelope schema/validity serialization contract.
        if not self.posix.endswith("reporting/export.py"):
            sink = resolved == "json.dump" or (
                isinstance(func, ast.Attribute)
                and func.attr in {"write_text", "write_bytes"}
            )
            if sink and any(self._is_result_payload(a) for a in node.args):
                self._report(node, "REPRO011")

        # REPRO013 generalizes REPRO011 to the store/journal layer: a
        # write addressed at a store or journal location that bypasses
        # write_json_atomic can tear an entry, defeating the store's
        # digest verification and the journal's resume contract.
        if not self.posix.endswith("reporting/export.py"):
            target: ast.expr | None = None
            if resolved == "json.dump" and len(node.args) >= 2:
                target = node.args[1]
            elif isinstance(func, ast.Attribute) and func.attr in {
                "write_text", "write_bytes",
            }:
                target = func.value
            elif name == "open" and node.args:
                mode = node.args[1] if len(node.args) >= 2 else None
                for kw in node.keywords:
                    if kw.arg == "mode":
                        mode = kw.value
                if (
                    isinstance(mode, ast.Constant)
                    and isinstance(mode.value, str)
                    and any(c in mode.value for c in "wax")
                ):
                    target = node.args[0]
            if target is not None and self._is_store_path(target):
                self._report(node, "REPRO013")

        self.generic_visit(node)


def _dataclass_with_slots(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            target = dec.func
            name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
            if name == "dataclass":
                return any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords
                )
    return False


def _suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line ``# repro-lint: disable=RULE[,RULE]`` directives."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            out[lineno] = rules
    return out


# -- public API --------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> list[LintViolation]:
    """Analyze one module's source text; returns sorted violations."""
    tree = ast.parse(source, filename=path)
    checker = _Checker(path, tree, source)
    checker.visit(tree)
    return sorted(checker.violations, key=lambda v: (v.path, v.line, v.col, v.rule))


def lint_paths(paths: Iterable[str | pathlib.Path]) -> list[LintViolation]:
    """Analyze every ``.py`` file under the given files/directories."""
    files: list[pathlib.Path] = []
    for entry in paths:
        p = pathlib.Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    violations: list[LintViolation] = []
    for file in files:
        violations.extend(lint_source(file.read_text(), str(file)))
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


# -- baseline ----------------------------------------------------------


def _baseline_key(violation: LintViolation) -> str:
    return f"{pathlib.PurePath(violation.path).as_posix()}::{violation.rule}"


def load_baseline(path: str | pathlib.Path) -> dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    p = pathlib.Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text())
    entries = data.get("entries", {})
    return {str(k): int(v) for k, v in entries.items()}

def write_baseline(path: str | pathlib.Path, violations: Sequence[LintViolation]) -> None:
    """Persist current violation counts as the new baseline (atomic)."""
    from repro.reporting.export import write_json_atomic

    counts = Counter(_baseline_key(v) for v in violations)
    payload = {"version": 1, "entries": {k: counts[k] for k in sorted(counts)}}
    write_json_atomic(path, payload)


def apply_baseline(
    violations: Sequence[LintViolation], baseline: dict[str, int]
) -> tuple[list[LintViolation], int]:
    """Split violations into (new, count suppressed by the baseline).

    Per (file, rule) key, up to the baselined count of violations is
    forgiven (earliest lines first — the stable choice when lines
    shift); anything beyond it is new debt and fails the run.
    """
    allowance = dict(baseline)
    fresh: list[LintViolation] = []
    suppressed = 0
    for violation in violations:  # already sorted by (path, line)
        key = _baseline_key(violation)
        if allowance.get(key, 0) > 0:
            allowance[key] -= 1
            suppressed += 1
        else:
            fresh.append(violation)
    return fresh, suppressed


# -- CLI ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism-focused AST analyzer for the repro codebase",
        epilog="exit codes: 0 clean, 1 new violations, 2 usage error",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE, default=None, metavar="FILE",
        help="forgive violations recorded in FILE "
             f"(default when given without a value: {DEFAULT_BASELINE})",
    )
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current violations into the baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0

    try:
        violations = lint_paths(args.paths)
    except (OSError, SyntaxError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(target, violations)
        print(f"repro-lint: wrote {len(violations)} violation(s) to {target}")
        return 0

    suppressed = 0
    if args.baseline is not None:
        violations, suppressed = apply_baseline(violations, load_baseline(args.baseline))

    for violation in violations:
        print(violation.render())
    if violations:
        print(f"repro-lint: {len(violations)} new violation(s)"
              + (f" ({suppressed} baselined)" if suppressed else ""))
        return 1
    if suppressed:
        print(f"repro-lint: clean ({suppressed} baselined violation(s) remain)")
    else:
        print("repro-lint: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
