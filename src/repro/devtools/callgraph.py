"""Call-graph construction over the whole-program summaries.

Nodes are dotted function qualnames
(``repro.runtime.scheduler.GridScheduler.run_grid``); edges come in
two flavours:

* **direct** — an ordinary call whose target resolves through the
  project index (including methods resolved via receiver types and
  constructors, which edge to ``Cls.__init__`` when one exists);
* **deferred** — a function *reference* handed to a spawn/submit API
  (``multiprocessing.Process(target=f)``, ``pool.submit(f, ...)``),
  which runs ``f`` without a syntactic call.

Roots are where execution enters the program: console-script entry
points declared in ``pyproject.toml``, any top-level ``main`` symbol,
and every deferred-invocation target (worker entries — they start on
a fresh interpreter or thread, so nothing in the graph calls them).

The graph is derived purely from the per-file summaries plus the
merged index, so it is as incremental as the rest of the engine: a
warm run rebuilds it from cached summaries byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.devtools.index import ProjectIndex, Summary
from repro.devtools.taint import TaintAnalysis

#: callee name (last component) that runs its callable argument later
_DEFER_CALLEES = frozenset({
    "Process", "Thread", "Timer", "submit", "map", "imap", "imap_unordered",
    "apply_async", "map_async", "run_in_executor", "call_soon", "start_new_thread",
})

#: keyword names that carry the deferred callable
_DEFER_KWARGS = ("target", "fn", "func", "function", "callback")


@dataclass
class CallGraph:
    """Edges + entry roots of the analyzed program."""

    #: caller qualname -> set of callee qualnames (direct calls)
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: caller qualname -> set of callables it hands to spawn APIs
    deferred: dict[str, set[str]] = field(default_factory=dict)
    #: CLI entry functions (console scripts, ``main`` symbols)
    cli_roots: set[str] = field(default_factory=set)
    #: worker entry functions (deferred-invocation targets)
    worker_roots: set[str] = field(default_factory=set)

    @property
    def roots(self) -> set[str]:
        return self.cli_roots | self.worker_roots

    def add_edge(self, caller: str, callee: str, deferred: bool = False) -> None:
        bucket = self.deferred if deferred else self.edges
        bucket.setdefault(caller, set()).add(callee)

    def callees(self, caller: str) -> set[str]:
        return self.edges.get(caller, set()) | self.deferred.get(caller, set())

    def reachable(self, roots: set[str] | None = None) -> set[str]:
        """Every function reachable from the given roots (default: all)."""
        frontier = sorted(roots if roots is not None else self.roots)
        seen: set[str] = set()
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(sorted(self.callees(cur) - seen))
        return seen

    def to_text(self) -> str:
        """Deterministic dump for ``repro-lint --dump-callgraph``."""
        lines: list[str] = []
        lines.append(f"# roots: {len(self.roots)} "
                     f"(cli={len(self.cli_roots)}, worker={len(self.worker_roots)})")
        for root in sorted(self.cli_roots):
            lines.append(f"root cli    {root}")
        for root in sorted(self.worker_roots):
            lines.append(f"root worker {root}")
        for caller in sorted(set(self.edges) | set(self.deferred)):
            for callee in sorted(self.edges.get(caller, set())):
                lines.append(f"{caller} -> {callee}")
            for callee in sorted(self.deferred.get(caller, set())):
                lines.append(f"{caller} ~> {callee}  # deferred")
        return "\n".join(lines) + "\n"


def build_callgraph(
    project: ProjectIndex,
    summaries: dict[str, Summary],
    script_entries: list[str] | None = None,
) -> CallGraph:
    """Assemble the graph from summaries + index.

    ``script_entries`` are dotted console-script targets
    (``repro.cli.main_beff``) parsed out of ``pyproject.toml`` by the
    CLI driver; they become CLI roots when the project defines them.
    """
    # the analysis owns call-target resolution (method receivers,
    # constructors); reuse it rather than duplicating the logic
    resolver = TaintAnalysis(project, summaries)
    graph = CallGraph()

    for dotted in sorted(resolver.funcs):
        fn = resolver.funcs[dotted]
        for call in fn.data["calls"]:
            target = resolver.call_target(fn, call)
            if target is not None:
                resolved = _as_function(project, resolver, target)
                if resolved is not None:
                    graph.add_edge(dotted, resolved)
            last = (call.get("target") or call.get("method") or "").rsplit(".", 1)[-1]
            refs: list[str] = []
            for kwname in _DEFER_KWARGS:
                ref = call.get("fn_kwargs", {}).get(kwname)
                if ref is not None:
                    refs.append(ref)
            if last in _DEFER_CALLEES:
                refs.extend(call.get("fn_args", []))
            for ref in refs:
                resolved = _as_function(project, resolver, ref)
                if resolved is not None:
                    graph.add_edge(dotted, resolved, deferred=True)
                    graph.worker_roots.add(resolved)

    known = set(resolver.funcs)
    for entry in script_entries or []:
        if entry in known:
            graph.cli_roots.add(entry)
    for dotted in sorted(known):
        if dotted.rsplit(".", 1)[-1] == "main":
            graph.cli_roots.add(dotted)
    return graph


def _as_function(
    project: ProjectIndex, resolver: TaintAnalysis, target: str
) -> str | None:
    """Normalize a resolved target to a graph node, if it is one.

    Constructors edge to ``Cls.__init__`` when the class defines one
    (otherwise the class itself stands in as the node); external
    targets (stdlib, numpy) are not nodes.
    """
    if target in resolver.funcs:
        return target
    if project.resolve_class(target) is not None:
        init = f"{target}.__init__"
        return init if init in resolver.funcs else target
    return None


def console_script_entries(pyproject: str) -> list[str]:
    """Dotted targets of ``[project.scripts]`` in a pyproject file."""
    import tomllib

    try:
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
    except (OSError, ValueError):
        return []
    scripts: Any = data.get("project", {}).get("scripts", {})
    out: list[str] = []
    if isinstance(scripts, dict):
        for spec in scripts.values():
            if isinstance(spec, str) and ":" in spec:
                module, _, func = spec.partition(":")
                out.append(f"{module.strip()}.{func.strip()}")
    return sorted(set(out))
