"""Machine-readable result export (the paper's Sec. 6 outlook).

"Both benchmarks will also be enhanced to write an additional output
that can be used in the SKaMPI comparison page" and the Top Clusters
list needs automated collection — this module provides the analog: a
stable JSON schema for both benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.beff.benchmark import BeffResult
from repro.beffio.benchmark import BeffIOResult

#: schema version written into every export
SCHEMA_VERSION = 1


def beff_to_dict(result: BeffResult, machine: str | None = None) -> dict:
    """Flatten a b_eff result to JSON-compatible primitives."""
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "b_eff",
        "machine": machine,
        "nprocs": result.nprocs,
        "memory_per_proc": result.memory_per_proc,
        "lmax": result.lmax,
        "backend": result.backend,
        "sizes": list(result.sizes),
        "b_eff": result.b_eff,
        "b_eff_per_proc": result.b_eff_per_proc,
        "b_eff_at_lmax": result.b_eff_at_lmax,
        "b_eff_at_lmax_per_proc": result.b_eff_at_lmax_per_proc,
        "ring_only_at_lmax": result.ring_only_at_lmax,
        "logavg_ring": result.logavg_ring,
        "logavg_random": result.logavg_random,
        "per_pattern": dict(result.per_pattern),
        "records": [asdict(r) for r in result.records],
    }


def beffio_to_dict(result: BeffIOResult, machine: str | None = None) -> dict:
    """Flatten a b_eff_io result to JSON-compatible primitives."""
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "b_eff_io",
        "machine": machine,
        "nprocs": result.nprocs,
        "T": result.T,
        "mpart": result.mpart,
        "segment_size": result.segment_size,
        "b_eff_io": result.b_eff_io,
        "method_values": dict(result.method_values),
        "type_results": [
            {
                "method": t.method,
                "pattern_type": t.pattern_type,
                "nbytes": t.nbytes,
                "time": t.time,
                "reps": t.reps,
                "bandwidth": t.bandwidth,
            }
            for t in result.type_results
        ],
        "pattern_runs": [
            {**asdict(r), "bandwidth": r.bandwidth} for r in result.pattern_runs
        ],
    }


def to_json(result: BeffResult | BeffIOResult, machine: str | None = None,
            indent: int | None = 2) -> str:
    """Serialize either benchmark's result to a JSON string."""
    if isinstance(result, BeffResult):
        payload = beff_to_dict(result, machine)
    elif isinstance(result, BeffIOResult):
        payload = beffio_to_dict(result, machine)
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return json.dumps(payload, indent=indent)
