"""Machine-readable result export (the paper's Sec. 6 outlook).

"Both benchmarks will also be enhanced to write an additional output
that can be used in the SKaMPI comparison page" and the Top Clusters
list needs automated collection — this module provides the analog: a
stable JSON schema for both benchmarks.

Since schema 3 every payload is a serialized
:class:`repro.runtime.envelope.ResultEnvelope`; the flat value keys of
schema 2 are unchanged, with ``provenance`` and ``timings`` blocks
added.  The functions here are thin shims kept for the legacy call
surface.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.beff.benchmark import BeffResult
from repro.beffio.benchmark import BeffIOResult
from repro.runtime.envelope import (
    ENVELOPE_SCHEMA,
    ResultEnvelope,
    SchemaVersionError,
    envelope_for,
    result_from_envelope,
)

#: schema version written into every export (alias of the envelope's)
SCHEMA_VERSION = ENVELOPE_SCHEMA

__all__ = [
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "write_json_atomic",
    "beff_to_dict",
    "beffio_to_dict",
    "beff_from_dict",
    "beffio_from_dict",
    "to_json",
]


def write_json_atomic(path: str | pathlib.Path, payload: object, indent: int | None = 2) -> None:
    """Write JSON so a crash leaves either the old file or the new one.

    The payload (a JSON-compatible object, or a pre-serialized string)
    is written to a temporary file in the target's directory and moved
    into place with ``os.replace`` — atomic on POSIX, and same-
    filesystem by construction.  The sweep journal and every CLI
    ``--json`` export go through this.
    """
    from repro.runtime import chaos

    path = pathlib.Path(path)
    text = payload if isinstance(payload, str) else json.dumps(payload, indent=indent)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or ".", prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        # chaos checkpoint: an injected ENOSPC strikes here — after the
        # temp file exists, before it replaces the target — so the
        # failure path below must clean the orphan up (regression-tested)
        chaos.check_write()
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def beff_to_dict(result: BeffResult, machine: str | None = None) -> dict:
    """Flatten a b_eff result to JSON-compatible primitives."""
    return envelope_for(result, machine).to_dict()


def beffio_to_dict(result: BeffIOResult, machine: str | None = None) -> dict:
    """Flatten a b_eff_io result to JSON-compatible primitives."""
    return envelope_for(result, machine).to_dict()


def beff_from_dict(d: dict) -> BeffResult:
    """Rebuild a :class:`BeffResult` from :func:`beff_to_dict` output."""
    result = result_from_envelope(ResultEnvelope.from_dict(d))
    if not isinstance(result, BeffResult):
        raise ValueError(f"payload is a {d.get('benchmark')!r} result, not b_eff")
    return result


def beffio_from_dict(d: dict) -> BeffIOResult:
    """Rebuild a :class:`BeffIOResult` from :func:`beffio_to_dict` output.

    The sweep journal resumes through this; every float survives the
    JSON round trip bit-exactly (``repr``-based serialization), so a
    resumed sweep is bit-identical to an uninterrupted one.
    """
    result = result_from_envelope(ResultEnvelope.from_dict(d))
    if not isinstance(result, BeffIOResult):
        raise ValueError(f"payload is a {d.get('benchmark')!r} result, not b_eff_io")
    return result


def to_json(result: BeffResult | BeffIOResult, machine: str | None = None,
            indent: int | None = 2) -> str:
    """Serialize either benchmark's result to a JSON string."""
    return json.dumps(envelope_for(result, machine).to_dict(), indent=indent)
