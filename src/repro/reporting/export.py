"""Machine-readable result export (the paper's Sec. 6 outlook).

"Both benchmarks will also be enhanced to write an additional output
that can be used in the SKaMPI comparison page" and the Top Clusters
list needs automated collection — this module provides the analog: a
stable JSON schema for both benchmarks.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import asdict

from repro.beff.benchmark import BeffResult
from repro.beffio.analysis import TypeResult
from repro.beffio.benchmark import BeffIOResult, PatternRun
from repro.faults.validity import VALID, RunValidity

#: schema version written into every export
SCHEMA_VERSION = 2


def write_json_atomic(path: str | pathlib.Path, payload: object, indent: int | None = 2) -> None:
    """Write JSON so a crash leaves either the old file or the new one.

    The payload (a JSON-compatible object, or a pre-serialized string)
    is written to a temporary file in the target's directory and moved
    into place with ``os.replace`` — atomic on POSIX, and same-
    filesystem by construction.  The sweep journal and every CLI
    ``--json`` export go through this.
    """
    path = pathlib.Path(path)
    text = payload if isinstance(payload, str) else json.dumps(payload, indent=indent)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or ".", prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def beff_to_dict(result: BeffResult, machine: str | None = None) -> dict:
    """Flatten a b_eff result to JSON-compatible primitives."""
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "b_eff",
        "machine": machine,
        "nprocs": result.nprocs,
        "memory_per_proc": result.memory_per_proc,
        "lmax": result.lmax,
        "backend": result.backend,
        "sizes": list(result.sizes),
        "b_eff": result.b_eff,
        "b_eff_per_proc": result.b_eff_per_proc,
        "b_eff_at_lmax": result.b_eff_at_lmax,
        "b_eff_at_lmax_per_proc": result.b_eff_at_lmax_per_proc,
        "ring_only_at_lmax": result.ring_only_at_lmax,
        "logavg_ring": result.logavg_ring,
        "logavg_random": result.logavg_random,
        "per_pattern": dict(result.per_pattern),
        "validity": result.validity.to_dict(),
        "records": [asdict(r) for r in result.records],
    }


def beffio_to_dict(result: BeffIOResult, machine: str | None = None) -> dict:
    """Flatten a b_eff_io result to JSON-compatible primitives."""
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "b_eff_io",
        "machine": machine,
        "nprocs": result.nprocs,
        "T": result.T,
        "mpart": result.mpart,
        "segment_size": result.segment_size,
        "b_eff_io": result.b_eff_io,
        "validity": result.validity.to_dict(),
        "method_values": dict(result.method_values),
        "type_results": [
            {
                "method": t.method,
                "pattern_type": t.pattern_type,
                "nbytes": t.nbytes,
                "time": t.time,
                "reps": t.reps,
                "bandwidth": t.bandwidth,
            }
            for t in result.type_results
        ],
        "pattern_runs": [
            {**asdict(r), "bandwidth": r.bandwidth} for r in result.pattern_runs
        ],
    }


def beffio_from_dict(d: dict) -> BeffIOResult:
    """Rebuild a :class:`BeffIOResult` from :func:`beffio_to_dict` output.

    The sweep journal resumes through this; every float survives the
    JSON round trip bit-exactly (``repr``-based serialization), so a
    resumed sweep is bit-identical to an uninterrupted one.
    """
    type_results = [
        TypeResult(
            method=t["method"],
            pattern_type=t["pattern_type"],
            nbytes=t["nbytes"],
            time=t["time"],
            reps=t["reps"],
        )
        for t in d["type_results"]
    ]
    pattern_runs: list[PatternRun] = []
    for r in d["pattern_runs"]:
        fields = dict(r)
        fields.pop("bandwidth", None)  # derived property, not a field
        pattern_runs.append(PatternRun(**fields))
    validity = RunValidity.from_dict(d["validity"]) if "validity" in d else VALID
    return BeffIOResult(
        nprocs=d["nprocs"],
        T=d["T"],
        mpart=d["mpart"],
        segment_size=d["segment_size"],
        pattern_runs=pattern_runs,
        type_results=type_results,
        method_values=dict(d["method_values"]),
        b_eff_io=d["b_eff_io"],
        validity=validity,
    )


def to_json(result: BeffResult | BeffIOResult, machine: str | None = None,
            indent: int | None = 2) -> str:
    """Serialize either benchmark's result to a JSON string."""
    if isinstance(result, BeffResult):
        payload = beff_to_dict(result, machine)
    elif isinstance(result, BeffIOResult):
        payload = beffio_to_dict(result, machine)
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return json.dumps(payload, indent=indent)
