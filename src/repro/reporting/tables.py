"""Render benchmark results as the paper's tables and figure series."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.beff.analysis import balance_factor
from repro.beff.benchmark import BeffResult
from repro.beffio.benchmark import BeffIOResult
from repro.beffio.patterns import IOPattern
from repro.machines.spec import MachineSpec
from repro.util import MB, Table, format_bytes


def table1(
    entries: Sequence[tuple[MachineSpec, BeffResult, float | None]]
) -> Table:
    """Paper Table 1: effective benchmark results, MB/s columns.

    Each entry is (machine, b_eff result, ping-pong bandwidth in
    bytes/s or None) — the ping-pong column comes from the detail
    patterns (:func:`repro.beff.run_detail`).
    """
    t = Table(
        [
            "System",
            "procs",
            "b_eff",
            "b_eff/proc",
            "Lmax",
            "ping-pong",
            "b_eff@Lmax",
            "/proc@Lmax",
            "/proc@Lmax rings",
        ],
        title="Table 1: Effective Benchmark Results (MByte/s)",
    )
    for spec, res, pingpong in entries:
        t.add_row(
            spec.name,
            res.nprocs,
            f"{res.b_eff / MB:.0f}",
            f"{res.b_eff_per_proc / MB:.0f}",
            format_bytes(res.lmax),
            f"{pingpong / MB:.0f}" if pingpong else "",
            f"{res.b_eff_at_lmax / MB:.0f}",
            f"{res.b_eff_at_lmax_per_proc / MB:.0f}",
            f"{res.ring_only_at_lmax_per_proc / MB:.0f}",
        )
    return t


def figure1_rows(
    entries: Sequence[tuple[MachineSpec, BeffResult]]
) -> list[tuple[str, float]]:
    """Paper Fig. 1: (system, balance factor bytes/flop) per machine."""
    rows: list[tuple[str, float]] = []
    for spec, res in entries:
        rows.append((f"{spec.name} ({res.nprocs})", balance_factor(res.b_eff, spec.rmax(res.nprocs))))
    return rows


def table2(patterns: Iterable[IOPattern]) -> Table:
    """Paper Table 2: the b_eff_io pattern list."""
    t = Table(
        ["Type", "No.", "l", "L", "U"],
        title="Table 2: The pattern details used in b_eff_io",
    )
    for p in patterns:
        same = p.L == p.l
        t.add_row(
            p.pattern_type,
            p.number,
            "fill" if p.fill_segment else p.label,
            ":=l" if same else format_bytes(p.L),
            p.U,
        )
    return t


def figure3_series(
    results: Sequence[BeffIOResult],
) -> list[tuple[int, float, float, float, float]]:
    """Fig. 3 rows: (procs, write, rewrite, read, b_eff_io) in MB/s."""
    rows: list[tuple[int, float, float, float, float]] = []
    for res in sorted(results, key=lambda r: r.nprocs):
        rows.append(
            (
                res.nprocs,
                res.method_values["write"] / MB,
                res.method_values["rewrite"] / MB,
                res.method_values["read"] / MB,
                res.b_eff_io / MB,
            )
        )
    return rows


def beffio_pattern_table(result: BeffIOResult, method: str) -> Table:
    """Fig. 4's underlying table: per-pattern bandwidth of one method."""
    t = Table(
        ["Type", "No.", "chunk (l)", "L", "reps", "MB", "MB/s"],
        title=f"b_eff_io detail: access method '{method}', {result.nprocs} processes",
    )
    for run in result.pattern_table(method):
        t.add_row(
            run.pattern_type,
            run.number,
            format_bytes(run.l),
            format_bytes(run.L),
            run.reps,
            f"{run.nbytes / MB:.1f}",
            f"{run.bandwidth / MB:.1f}",
        )
    return t


def figure5_rows(
    entries: Sequence[tuple[str, BeffIOResult]]
) -> list[tuple[str, int, float]]:
    """Fig. 5 rows: (system, procs, b_eff_io MB/s)."""
    return [
        (name, res.nprocs, res.b_eff_io / MB)
        for name, res in entries
    ]


def beff_protocol(result: BeffResult, max_rows: int | None = None) -> str:
    """The b_eff-style measurement protocol: every raw record."""
    t = Table(
        ["pattern", "kind", "L", "method", "rep", "loop", "time", "MB/s"],
        title=(
            f"b_eff protocol: {result.nprocs} processes, backend={result.backend}, "
            f"Lmax={format_bytes(result.lmax)}"
        ),
    )
    rows = result.records if max_rows is None else result.records[:max_rows]
    for rec in rows:
        t.add_row(
            rec.pattern,
            rec.kind,
            format_bytes(rec.size),
            rec.method,
            rec.repetition,
            rec.looplength,
            f"{rec.time * 1e3:.3f} ms",
            f"{rec.bandwidth / MB:.1f}",
        )
    lines = [t.render()]
    lines.append("")
    lines.append(f"logavg ring patterns   : {result.logavg_ring / MB:10.1f} MB/s")
    lines.append(f"logavg random patterns : {result.logavg_random / MB:10.1f} MB/s")
    lines.append(f"b_eff                  : {result.b_eff / MB:10.1f} MB/s")
    lines.append(f"b_eff per process      : {result.b_eff_per_proc / MB:10.1f} MB/s")
    lines.append(f"b_eff at Lmax          : {result.b_eff_at_lmax / MB:10.1f} MB/s")
    return "\n".join(lines)


def bandwidth_curve(result: BeffResult, pattern: str) -> str:
    """The classic b_eff diagram: bandwidth over message size.

    Renders the best (max over methods/repetitions) bandwidth of one
    pattern across the 21-size ladder on a log scale — the curve whose
    area ratio against the asymptotic-bandwidth rectangle *is* the
    b_eff averaging rule (paper Sec. 4).
    """
    from repro.beff.analysis import best_bandwidths
    from repro.reporting.plots import log_bar_chart

    best = best_bandwidths(result.records)
    rows: list[tuple[str, float]] = []
    for size in result.sizes:
        value = best.get((pattern, size))
        if value is None:
            raise KeyError(f"pattern {pattern!r} has no measurement at L={size}")
        rows.append((format_bytes(size), value / MB))
    return log_bar_chart(
        rows,
        width=44,
        title=f"bandwidth over message size: {pattern} "
              f"({result.nprocs} processes, MB/s aggregate)",
    )


def beffio_summary(result: BeffIOResult) -> str:
    """b_eff_io per-type/per-method summary plus the partition value."""
    t = Table(
        ["method", "type", "MB", "open-close", "MB/s"],
        title=f"b_eff_io summary: {result.nprocs} processes, T={result.T:.0f} s",
    )
    for tr in result.type_results:
        t.add_row(
            tr.method,
            tr.pattern_type,
            f"{tr.nbytes / MB:.1f}",
            f"{tr.time:.2f} s",
            f"{tr.bandwidth / MB:.1f}",
        )
    lines = [t.render(), ""]
    for method, value in result.method_values.items():
        lines.append(f"{method:8s}: {value / MB:10.1f} MB/s")
    lines.append(f"b_eff_io : {result.b_eff_io / MB:10.1f} MB/s")
    if result.segment_size is not None:
        lines.append(f"segment  : {format_bytes(result.segment_size)} per process")
    return "\n".join(lines)
