"""ASCII charts in the style of the paper's figures.

The paper plots bandwidth on a logarithmic scale against a
pseudo-logarithmic chunk-size axis (Fig. 4) or against partition
sizes (Figs. 3 and 5).  These renderers make the same diagrams in
plain text so benchmark outputs and examples can *show* the shapes,
not just tabulate them.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def log_bar_chart(
    rows: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "MB/s",
    title: str | None = None,
    bounds: tuple[float, float] | None = None,
) -> str:
    """Horizontal bars on a log scale: (label, value) per row.

    A factor of 10 in value maps to a fixed number of columns, so —
    like the paper's Fig. 4 axes — equal bar-length differences mean
    equal *ratios*.  ``bounds`` fixes the (min, max) of the scale so
    several charts can share one axis.
    """
    positives = [v for _label, v in rows if v > 0]
    if not positives:
        raise ValueError("need at least one positive value")
    vmin, vmax = bounds if bounds is not None else (min(positives), max(positives))
    if vmin <= 0 or vmax <= 0:
        raise ValueError("bounds must be positive")
    lo = math.log10(vmin)
    hi = math.log10(vmax)
    span = max(hi - lo, 1e-9)
    label_w = max(len(label) for label, _v in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        if value > 0:
            position = (math.log10(value) - lo) / span
            filled = 1 + int(max(0.0, min(1.0, position)) * (width - 1))
            bar = "#" * filled
            lines.append(f"{label:<{label_w}} |{bar:<{width}} {value:10.2f} {unit}")
        else:
            lines.append(f"{label:<{label_w}} |{'':<{width}} {'-':>10} {unit}")
    return "\n".join(lines)


def multi_series_chart(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 50,
    unit: str = "MB/s",
    title: str | None = None,
) -> str:
    """Several named series over a shared x axis, one block per series.

    Mirrors Fig. 4's per-pattern-type curves over the chunk-size axis:
    each series gets a log-scaled bar block so type orderings and the
    wellformed/+8 dips are visible at a glance.
    """
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(f"series {name!r} length mismatch")
    positives = [v for values in series.values() for v in values if v > 0]
    if not positives:
        raise ValueError("need at least one positive value")
    bounds = (min(positives), max(positives))
    blocks: list[str] = []
    if title:
        blocks.append(title)
    for name, values in series.items():
        rows = list(zip(x_labels, values))
        blocks.append(f"-- {name} --")
        blocks.append(log_bar_chart(rows, width=width, unit=unit, bounds=bounds))
    return "\n".join(blocks)
