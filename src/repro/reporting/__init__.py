"""Benchmark protocols and paper-figure formatters.

The original b_eff and b_eff_io programs emit plain-text measurement
protocols; this package renders our results the same way and shapes
them into the rows/series of the paper's Table 1, Fig. 1, Table 2,
and Figs. 3-5 (the benchmark harness prints these).
"""

from repro.reporting.export import beff_to_dict, beffio_to_dict, to_json
from repro.reporting.plots import log_bar_chart, multi_series_chart
from repro.reporting.tables import (
    bandwidth_curve,
    beff_protocol,
    beffio_pattern_table,
    beffio_summary,
    figure1_rows,
    figure3_series,
    figure5_rows,
    table1,
    table2,
)

__all__ = [
    "table1",
    "figure1_rows",
    "table2",
    "figure3_series",
    "beffio_pattern_table",
    "figure5_rows",
    "beff_protocol",
    "beffio_summary",
    "beff_to_dict",
    "beffio_to_dict",
    "to_json",
    "bandwidth_curve",
    "log_bar_chart",
    "multi_series_chart",
]
