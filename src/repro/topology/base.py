"""Topology abstract base and the Route record."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.sim.fluid import FlowNetwork


@dataclass(frozen=True)
class Route:
    """The path a message takes from one process to another.

    ``links``
        ordered link ids in the owning :class:`FlowNetwork`.
    ``hops``
        number of fabric hops (drives per-hop latency in the net
        model); 0 for an intra-node or self message.
    ``intra_node``
        True when source and destination share a node (the transfer
        goes through local memory, not the interconnect fabric).
    """

    links: tuple[int, ...]
    hops: int
    intra_node: bool


class Topology(ABC):
    """Base class: owns links in a flow network, answers routing queries.

    Concrete topologies register their links in :meth:`attach`, which
    must be called exactly once before :meth:`route`.  A process index
    is an MPI rank slot; :meth:`node_of` maps it to the physical node
    (identity unless the topology models multi-processor nodes).
    """

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ValueError(f"need at least one process, got {nprocs}")
        self.nprocs = nprocs
        self.net: FlowNetwork | None = None

    # -- lifecycle -------------------------------------------------------

    def attach(self, net: FlowNetwork) -> None:
        """Create this topology's links inside ``net``."""
        if self.net is not None:
            raise RuntimeError("topology already attached to a network")
        self.net = net
        self._build(net)

    @abstractmethod
    def _build(self, net: FlowNetwork) -> None:
        """Register links; called once from :meth:`attach`."""

    # -- queries ---------------------------------------------------------

    @abstractmethod
    def route(self, src: int, dst: int) -> Route:
        """Route for a message from process ``src`` to process ``dst``.

        ``src == dst`` is a local copy: empty route, zero hops.
        """

    def node_of(self, proc: int) -> int:
        """Physical node hosting ``proc`` (identity by default)."""
        self._check_proc(proc)
        return proc

    def links_matching(self, pattern: str) -> list[int]:
        """Ids of this topology's links whose name contains ``pattern``.

        ``""`` matches every link.  Fault plans resolve their link
        selectors through this, so a plan written against link-name
        substrings ("torus", "x0") is portable across sizes.
        """
        self._check_attached()
        assert self.net is not None
        return self.net.find_links(pattern)

    @property
    def num_nodes(self) -> int:
        """Number of physical nodes (== nprocs unless overridden)."""
        return self.nprocs

    # -- helpers ---------------------------------------------------------

    def _check_proc(self, proc: int) -> None:
        if not (0 <= proc < self.nprocs):
            raise IndexError(f"process {proc} out of range [0, {self.nprocs})")

    def _check_attached(self) -> None:
        if self.net is None:
            raise RuntimeError("topology not attached; call attach(net) first")

    def _self_route(self) -> Route:
        return Route(links=(), hops=0, intra_node=True)
