"""Interconnect topologies with explicit routed links.

A topology owns the links it registers in a
:class:`repro.sim.FlowNetwork` and answers routing queries: the
ordered list of link ids a message from process *src* to process
*dst* crosses.  Contention then emerges in the fluid network when
concurrent routes share links.

Provided topologies (matched to the paper's machines):

* :class:`~repro.topology.torus.Torus` — k-ary n-cube with
  dimension-ordered shortest-wrap routing (Cray T3E is a 3-D torus).
* :class:`~repro.topology.crossbar.Crossbar` — non-blocking fabric
  with per-process ports, optional shared backplane (SMP vector
  machines: NEC SX-4/5, HP-V, SGI SV1).
* :class:`~repro.topology.clustered.ClusteredSMP` — SMP nodes with an
  intra-node memory bus and inter-node NICs over a node-level fabric
  (Hitachi SR 8000, IBM RS 6000/SP).
* :class:`~repro.topology.fattree.FatTree` — two-level switch tree
  with configurable oversubscription.
* :class:`~repro.topology.dragonfly.Dragonfly` — groups of routers
  with tapered all-to-all global links (modern Cray XC / Slingshot
  style; the machine-zoo growth beyond the paper's systems).
"""

from repro.topology.base import Route, Topology
from repro.topology.crossbar import Crossbar
from repro.topology.torus import Torus
from repro.topology.clustered import ClusteredSMP
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree

__all__ = [
    "Route",
    "Topology",
    "Crossbar",
    "Torus",
    "ClusteredSMP",
    "Dragonfly",
    "FatTree",
]
