"""Two-level fat tree with configurable oversubscription.

Hosts hang off edge switches; edge switches connect to a core layer
through uplinks whose aggregate capacity is ``downlink_bw * radix /
oversubscription``.  With ``oversubscription=1`` the tree is fully
provisioned (behaves like a crossbar for any permutation); larger
values starve cross-switch traffic — useful both as a realistic SP
switch stand-in and for ablation experiments on how topology shapes
b_eff's ring/random gap.
"""

from __future__ import annotations

from repro.sim.fluid import FlowNetwork
from repro.topology.base import Route, Topology


class FatTree(Topology):
    def __init__(
        self,
        nprocs: int,
        radix: int,
        downlink_bw: float,
        oversubscription: float = 1.0,
    ) -> None:
        """``radix`` hosts per edge switch; one process per host."""
        super().__init__(nprocs)
        if radix < 1:
            raise ValueError("radix must be >= 1")
        if downlink_bw <= 0:
            raise ValueError("downlink_bw must be positive")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1")
        self.radix = radix
        self.downlink_bw = downlink_bw
        self.oversubscription = oversubscription
        self.num_switches = (nprocs + radix - 1) // radix
        self._host_up: list[int] = []
        self._host_down: list[int] = []
        self._switch_up: list[int] = []
        self._switch_down: list[int] = []

    def switch_of(self, proc: int) -> int:
        self._check_proc(proc)
        return proc // self.radix

    def _build(self, net: FlowNetwork) -> None:
        for p in range(self.nprocs):
            self._host_up.append(net.add_link(self.downlink_bw, name=f"ft.hup{p}"))
            self._host_down.append(net.add_link(self.downlink_bw, name=f"ft.hdn{p}"))
        uplink_bw = self.downlink_bw * self.radix / self.oversubscription
        for s in range(self.num_switches):
            self._switch_up.append(net.add_link(uplink_bw, name=f"ft.sup{s}"))
            self._switch_down.append(net.add_link(uplink_bw, name=f"ft.sdn{s}"))

    def route(self, src: int, dst: int) -> Route:
        self._check_attached()
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            return self._self_route()
        s_src, s_dst = self.switch_of(src), self.switch_of(dst)
        if s_src == s_dst:
            links = (self._host_up[src], self._host_down[dst])
            return Route(links=links, hops=1, intra_node=False)
        links = (
            self._host_up[src],
            self._switch_up[s_src],
            self._switch_down[s_dst],
            self._host_down[dst],
        )
        return Route(links=links, hops=3, intra_node=False)
