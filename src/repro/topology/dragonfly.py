"""Dragonfly: groups of routers with all-to-all global links.

The modern hierarchical interconnect (Cray XC / Slingshot style) the
2001 paper's zoo could not include.  Hosts hang off routers; routers
form densely connected *groups*; groups are joined by a thin layer of
global optical links.  The model keeps the three-level capacity
structure without per-pair link bookkeeping:

* per host, an injection and an ejection link (``host_bw``);
* per router, an aggregate local up/down pair (``local_bw``) crossed
  by any traffic leaving or entering the router;
* per group, an aggregate global out/in pair (``global_bw``) crossed
  only by inter-group traffic.

The interesting knob is the *taper*: ``global_bw`` well below
``routers_per_group * local_bw`` reproduces the dragonfly's
signature — near-crossbar bandwidth inside a group, a shared thin
pipe between groups — which is exactly what b_eff's ring/random gap
and a scenario's placement primitives probe.

Hop counts follow the canonical minimal route: 1 inside a router, 2
via the group's local all-to-all, 3 across a global link.
"""

from __future__ import annotations

from repro.sim.fluid import FlowNetwork
from repro.topology.base import Route, Topology


class Dragonfly(Topology):
    def __init__(
        self,
        nprocs: int,
        hosts_per_router: int,
        routers_per_group: int,
        host_bw: float,
        local_bw: float,
        global_bw: float,
    ) -> None:
        """One process per host; routers fill group by group."""
        super().__init__(nprocs)
        if hosts_per_router < 1 or routers_per_group < 1:
            raise ValueError("hosts_per_router and routers_per_group must be >= 1")
        for name, value in (
            ("host_bw", host_bw),
            ("local_bw", local_bw),
            ("global_bw", global_bw),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive")
        self.hosts_per_router = hosts_per_router
        self.routers_per_group = routers_per_group
        self.host_bw = host_bw
        self.local_bw = local_bw
        self.global_bw = global_bw
        self.num_routers = (nprocs + hosts_per_router - 1) // hosts_per_router
        self.num_groups = (
            self.num_routers + routers_per_group - 1
        ) // routers_per_group
        self._host_up: list[int] = []
        self._host_down: list[int] = []
        self._router_up: list[int] = []
        self._router_down: list[int] = []
        self._global_out: list[int] = []
        self._global_in: list[int] = []

    # -- placement ---------------------------------------------------------

    def router_of(self, proc: int) -> int:
        self._check_proc(proc)
        return proc // self.hosts_per_router

    def group_of(self, proc: int) -> int:
        return self.router_of(proc) // self.routers_per_group

    # -- build / route -------------------------------------------------------

    def _build(self, net: FlowNetwork) -> None:
        for p in range(self.nprocs):
            self._host_up.append(net.add_link(self.host_bw, name=f"dfly.hup{p}"))
            self._host_down.append(net.add_link(self.host_bw, name=f"dfly.hdn{p}"))
        for r in range(self.num_routers):
            self._router_up.append(net.add_link(self.local_bw, name=f"dfly.rup{r}"))
            self._router_down.append(net.add_link(self.local_bw, name=f"dfly.rdn{r}"))
        for g in range(self.num_groups):
            self._global_out.append(net.add_link(self.global_bw, name=f"dfly.gout{g}"))
            self._global_in.append(net.add_link(self.global_bw, name=f"dfly.gin{g}"))

    def route(self, src: int, dst: int) -> Route:
        self._check_attached()
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            return self._self_route()
        r_src, r_dst = self.router_of(src), self.router_of(dst)
        if r_src == r_dst:
            links = (self._host_up[src], self._host_down[dst])
            return Route(links=links, hops=1, intra_node=False)
        g_src, g_dst = self.group_of(src), self.group_of(dst)
        if g_src == g_dst:
            links = (
                self._host_up[src],
                self._router_up[r_src],
                self._router_down[r_dst],
                self._host_down[dst],
            )
            return Route(links=links, hops=2, intra_node=False)
        links = (
            self._host_up[src],
            self._router_up[r_src],
            self._global_out[g_src],
            self._global_in[g_dst],
            self._router_down[r_dst],
            self._host_down[dst],
        )
        return Route(links=links, hops=3, intra_node=False)
