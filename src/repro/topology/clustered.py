"""Cluster of SMP nodes: memory bus inside, NICs + fabric between.

Models the Hitachi SR 8000 (8-way SMP nodes on a multidimensional
crossbar) and the IBM RS 6000/SP (4-way SMP nodes on the SP switch).

* intra-node message: proc tx port -> node memory bus -> proc rx port
  (marked ``intra_node`` so the net model applies shared-memory copy
  semantics).
* inter-node message: proc tx -> node NIC out -> (optional fabric
  backplane) -> node NIC in -> proc rx.

The NIC links are the scarce resource: with *sequential* rank
placement a ring keeps most neighbor pairs inside a node, with
*round-robin* placement every ring hop crosses NICs — reproducing the
paper's SR 8000 sequential vs. round-robin contrast (Table 1).
"""

from __future__ import annotations

from repro.sim.fluid import FlowNetwork
from repro.topology.base import Route, Topology


class ClusteredSMP(Topology):
    def __init__(
        self,
        num_nodes: int,
        procs_per_node: int,
        membus_bw: float,
        nic_bw: float,
        port_bw: float | None = None,
        fabric_bw: float | None = None,
        placement: str = "sequential",
    ) -> None:
        """``placement`` maps MPI ranks to processor slots.

        ``"sequential"``: ranks fill node 0 completely, then node 1, ...
        ``"round-robin"``: rank r sits on node ``r % num_nodes``.
        (Paper Sec. 4.1: the numbering has a heavy impact on ring
        bandwidth on clusters of SMPs.)
        """
        if num_nodes < 1 or procs_per_node < 1:
            raise ValueError("num_nodes and procs_per_node must be >= 1")
        super().__init__(num_nodes * procs_per_node)
        for name, value in (("membus_bw", membus_bw), ("nic_bw", nic_bw)):
            if value <= 0:
                raise ValueError(f"{name} must be positive")
        if placement not in ("sequential", "round-robin"):
            raise ValueError(f"unknown placement {placement!r}")
        self._num_nodes = num_nodes
        self.procs_per_node = procs_per_node
        self.membus_bw = membus_bw
        self.nic_bw = nic_bw
        self.port_bw = port_bw if port_bw is not None else membus_bw
        self.fabric_bw = fabric_bw
        self.placement = placement
        self._tx: list[int] = []
        self._rx: list[int] = []
        self._membus: list[int] = []
        self._nic_out: list[int] = []
        self._nic_in: list[int] = []
        self._fabric: int | None = None

    # -- placement ---------------------------------------------------------

    def node_of(self, proc: int) -> int:
        self._check_proc(proc)
        if self.placement == "sequential":
            return proc // self.procs_per_node
        return proc % self._num_nodes

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    # -- build / route -------------------------------------------------------

    def _build(self, net: FlowNetwork) -> None:
        for p in range(self.nprocs):
            self._tx.append(net.add_link(self.port_bw, name=f"smp.tx{p}"))
            self._rx.append(net.add_link(self.port_bw, name=f"smp.rx{p}"))
        for n in range(self._num_nodes):
            self._membus.append(net.add_link(self.membus_bw, name=f"smp.mem{n}"))
            self._nic_out.append(net.add_link(self.nic_bw, name=f"smp.nicO{n}"))
            self._nic_in.append(net.add_link(self.nic_bw, name=f"smp.nicI{n}"))
        if self.fabric_bw is not None:
            self._fabric = net.add_link(self.fabric_bw, name="smp.fabric")

    def route(self, src: int, dst: int) -> Route:
        self._check_attached()
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            return self._self_route()
        nsrc, ndst = self.node_of(src), self.node_of(dst)
        if nsrc == ndst:
            links = (self._tx[src], self._membus[nsrc], self._rx[dst])
            return Route(links=links, hops=0, intra_node=True)
        links = [self._tx[src], self._membus[nsrc], self._nic_out[nsrc]]
        if self._fabric is not None:
            links.append(self._fabric)
        links.extend((self._nic_in[ndst], self._membus[ndst], self._rx[dst]))
        return Route(links=tuple(links), hops=2, intra_node=False)
