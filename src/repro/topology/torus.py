"""k-ary n-cube (torus) with dimension-ordered routing.

The Cray T3E interconnect is a 3-D torus with one processor per node.
Links are unidirectional per direction per dimension; routing walks
the dimensions in order, always taking the shorter wrap-around
direction (ties go to the positive direction), which is how the T3E's
deterministic router behaves for the purposes of link-load modelling.

Ring patterns over ranks laid out in torus order travel one hop per
message; random placement produces multi-hop routes whose link
sharing is precisely the b_eff ring-vs-random gap.
"""

from __future__ import annotations

import math

from repro.sim.fluid import FlowNetwork
from repro.topology.base import Route, Topology


def balanced_dims(nprocs: int, ndims: int = 3) -> tuple[int, ...]:
    """Factor ``nprocs`` into ``ndims`` near-equal torus dimensions.

    Greedy: repeatedly divide by the largest prime factor assigned to
    the currently smallest dimension.  Matches MPI_Dims_create's goal
    (dimensions as close together as possible, decreasing order).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    if ndims < 1:
        raise ValueError("ndims must be positive")
    dims = [1] * ndims
    remaining = nprocs
    factor = 2
    factors: list[int] = []
    while remaining > 1:
        while remaining % factor == 0:
            factors.append(factor)
            remaining //= factor
        factor += 1 if factor == 2 else 2
        if factor * factor > remaining and remaining > 1:
            factors.append(remaining)
            break
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    return tuple(sorted(dims, reverse=True))


class Torus(Topology):
    def __init__(
        self,
        dims: tuple[int, ...],
        link_bw: float,
        nic_bw: float | None = None,
        node_bw: float | None = None,
        periodic: bool = True,
    ):
        """A torus of shape ``dims``; one process per node.

        ``link_bw`` is the capacity of each unidirectional fabric
        link; ``nic_bw`` caps each node's injection/ejection per
        direction (defaults to ``link_bw``); ``node_bw``, when given,
        is a *combined* per-node budget shared by all traffic entering
        and leaving the node — it models the memory-interface
        interference that makes a T3E PE under full-duplex load slower
        per message than a one-directional ping-pong.
        ``periodic=False`` turns the torus into a mesh (no wraparound
        links; routing always walks toward the target).
        """
        nprocs = math.prod(dims)
        super().__init__(nprocs)
        if any(d < 1 for d in dims):
            raise ValueError(f"bad torus dims {dims!r}")
        if link_bw <= 0:
            raise ValueError("link_bw must be positive")
        self.dims = tuple(dims)
        self.link_bw = link_bw
        self.nic_bw = nic_bw if nic_bw is not None else link_bw
        if self.nic_bw <= 0:
            raise ValueError("nic_bw must be positive")
        self.node_bw = node_bw
        if node_bw is not None and node_bw <= 0:
            raise ValueError("node_bw must be positive when given")
        self.periodic = periodic
        # link id maps: (node, dim, direction) -> link; direction in {+1,-1}
        self._fabric: dict[tuple[int, int, int], int] = {}
        self._tx: list[int] = []
        self._rx: list[int] = []
        self._node: list[int] = []

    # -- coordinates ------------------------------------------------------

    def coords(self, node: int) -> tuple[int, ...]:
        """Node index -> torus coordinates (row-major, last dim fastest)."""
        self._check_proc(node)
        out = []
        for d in reversed(self.dims):
            out.append(node % d)
            node //= d
        return tuple(reversed(out))

    def node_at(self, coords: tuple[int, ...]) -> int:
        if len(coords) != len(self.dims):
            raise ValueError("coordinate arity mismatch")
        node = 0
        for c, d in zip(coords, self.dims):
            if not (0 <= c < d):
                raise ValueError(f"coordinate {c} out of range for dim {d}")
            node = node * d + c
        return node

    # -- build / route ----------------------------------------------------

    def _build(self, net: FlowNetwork) -> None:
        for p in range(self.nprocs):
            self._tx.append(net.add_link(self.nic_bw, name=f"torus.tx{p}"))
            self._rx.append(net.add_link(self.nic_bw, name=f"torus.rx{p}"))
            if self.node_bw is not None:
                self._node.append(net.add_link(self.node_bw, name=f"torus.node{p}"))
        for node in range(self.nprocs):
            for dim, extent in enumerate(self.dims):
                if extent == 1:
                    continue
                for direction in (+1, -1):
                    # A dimension of extent 2 has a single physical cable;
                    # model it as two unidirectional links (full duplex).
                    self._fabric[(node, dim, direction)] = net.add_link(
                        self.link_bw, name=f"torus.l{node}.d{dim}{'+' if direction > 0 else '-'}"
                    )

    def _walk(self, src: int, dst: int) -> list[tuple[int, int, int]]:
        """Dimension-ordered steps (node, dim, direction) from src to dst."""
        steps = []
        cur = list(self.coords(src))
        target = self.coords(dst)
        for dim, extent in enumerate(self.dims):
            while cur[dim] != target[dim]:
                if self.periodic:
                    forward = (target[dim] - cur[dim]) % extent
                    backward = (cur[dim] - target[dim]) % extent
                    direction = +1 if forward <= backward else -1
                else:
                    direction = +1 if target[dim] > cur[dim] else -1
                node = self.node_at(tuple(cur))
                steps.append((node, dim, direction))
                cur[dim] = (cur[dim] + direction) % extent
        return steps

    def route(self, src: int, dst: int) -> Route:
        self._check_attached()
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            return self._self_route()
        steps = self._walk(src, dst)
        links = [self._tx[src]]
        if self._node:
            links.append(self._node[src])
        links.extend(self._fabric[s] for s in steps)
        if self._node:
            links.append(self._node[dst])
        links.append(self._rx[dst])
        return Route(links=tuple(links), hops=len(steps), intra_node=False)

    def distance(self, src: int, dst: int) -> int:
        """Manhattan distance in hops (wrap-aware when periodic)."""
        total = 0
        for c1, c2, d in zip(self.coords(src), self.coords(dst), self.dims):
            delta = abs(c1 - c2)
            total += min(delta, d - delta) if self.periodic else delta
        return total

    def all_fabric_links(self) -> list[int]:
        """All fabric link ids (for bisection analyses)."""
        return list(self._fabric.values())
