"""Non-blocking crossbar with per-process ports.

Models shared-memory vector machines (NEC SX-4/SX-5, HP-V, SGI SV1):
every process has an injection (tx) and an ejection (rx) port of
``port_bw`` bytes/s, and all transfers optionally share one backplane
of ``backplane_bw`` bytes/s — the aggregate memory bandwidth.  With no
backplane the fabric is fully non-blocking and only the ports limit
concurrency.
"""

from __future__ import annotations

from repro.sim.fluid import FlowNetwork
from repro.topology.base import Route, Topology


class Crossbar(Topology):
    def __init__(
        self,
        nprocs: int,
        port_bw: float,
        backplane_bw: float | None = None,
    ) -> None:
        super().__init__(nprocs)
        if port_bw <= 0:
            raise ValueError("port_bw must be positive")
        if backplane_bw is not None and backplane_bw <= 0:
            raise ValueError("backplane_bw must be positive when given")
        self.port_bw = port_bw
        self.backplane_bw = backplane_bw
        self._tx: list[int] = []
        self._rx: list[int] = []
        self._backplane: int | None = None

    def _build(self, net: FlowNetwork) -> None:
        for p in range(self.nprocs):
            self._tx.append(net.add_link(self.port_bw, name=f"xbar.tx{p}"))
            self._rx.append(net.add_link(self.port_bw, name=f"xbar.rx{p}"))
        if self.backplane_bw is not None:
            self._backplane = net.add_link(self.backplane_bw, name="xbar.backplane")

    def route(self, src: int, dst: int) -> Route:
        self._check_attached()
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            return self._self_route()
        links = [self._tx[src]]
        if self._backplane is not None:
            links.append(self._backplane)
        links.append(self._rx[dst])
        # Crossbar peers share one memory system; the transfer never
        # leaves the box, so it counts as intra-node for the net model
        # (shared-memory copy semantics apply).
        return Route(links=tuple(links), hops=1, intra_node=True)

    @property
    def num_nodes(self) -> int:
        return 1

    def node_of(self, proc: int) -> int:
        self._check_proc(proc)
        return 0
