"""repro — reproduction of the b_eff / b_eff_io benchmarks (IPPS 2001).

Koniges, Rabenseifner, Solchenbach: *Benchmark Design for
Characterization of Balanced High-Performance Architectures*.

The package provides:

* the two benchmarks — :func:`repro.beff.run_beff` (effective
  communication bandwidth) and :func:`repro.beffio.run_beffio`
  (effective I/O bandwidth) — implemented exactly as the paper
  defines them (patterns, size ladders, time-driven control,
  averaging rules);
* the entire substrate they run on, as a deterministic discrete-event
  simulation: an MPI (p2p + collectives + Cartesian topologies), a
  contention-aware interconnect (max-min fair fluid flows over routed
  topologies), a striped parallel filesystem with a write-behind
  cache, and an MPI-IO layer with two-phase collective buffering;
* calibrated models of the machines the paper measured
  (:mod:`repro.machines`), and reporting helpers that regenerate the
  paper's tables and figures (:mod:`repro.reporting`).

Quick start::

    from repro.machines import get_machine
    result = get_machine("t3e").run_beff(8)
    print(result.b_eff / 2**20, "MB/s")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
