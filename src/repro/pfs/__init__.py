"""Simulated parallel filesystem.

The model follows the architecture shared by the paper's systems
(T3E GigaRing striped RAIDs, IBM GPFS with VSD servers, NEC SFS):

* files are striped round-robin over ``num_servers`` I/O servers;
* each server has a FIFO request queue, a disk (seek + streaming
  transfer, read-modify-write penalty for accesses not aligned to the
  disk block), and a slice of the filesystem buffer cache;
* writes are absorbed into the cache at memory speed and drained to
  disk in the background — until the cache fills, after which writes
  throttle to disk speed (this produces the paper's Sec. 5.4
  observations: short-T runs report cache bandwidth, only datasets
  much larger than the cache measure the disks);
* data crosses an I/O network: one link per client, one per server,
  shared max-min fairly — the resource whose saturation produces
  Fig. 3's partition-size behavior.
"""

from repro.pfs.intervals import IntervalSet
from repro.pfs.cache import BufferCache
from repro.pfs.server import IOServer
from repro.pfs.filesystem import FileSystem, PFSConfig, PFSFile

__all__ = [
    "IntervalSet",
    "BufferCache",
    "IOServer",
    "FileSystem",
    "PFSConfig",
    "PFSFile",
]
