"""Sorted disjoint byte-interval sets.

The cache and the file allocation maps track byte ranges as
half-open intervals [start, end).  This container keeps them sorted,
disjoint, and coalesced, with the usual set operations.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right


class IntervalSet:
    """A set of bytes represented as disjoint half-open intervals."""

    __slots__ = ("_starts", "_ends")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    # -- mutation ---------------------------------------------------------

    def add(self, start: int, end: int) -> int:
        """Insert [start, end); returns the number of *new* bytes added."""
        if end < start:
            raise ValueError(f"inverted interval [{start}, {end})")
        if end == start:
            return 0
        before = self.total
        # indices of intervals overlapping or adjacent to [start, end)
        lo = bisect_left(self._ends, start)
        hi = bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        self._starts.insert(lo, start)
        self._ends.insert(lo, end)
        return self.total - before

    def remove(self, start: int, end: int) -> int:
        """Delete [start, end); returns the number of bytes removed."""
        if end < start:
            raise ValueError(f"inverted interval [{start}, {end})")
        if end == start or not self._starts:
            return 0
        before = self.total
        lo = bisect_right(self._ends, start)
        hi = bisect_left(self._starts, end)
        if lo >= hi:
            return 0
        left_keep = None
        right_keep = None
        if self._starts[lo] < start:
            left_keep = (self._starts[lo], start)
        if self._ends[hi - 1] > end:
            right_keep = (end, self._ends[hi - 1])
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        insert_at = lo
        if left_keep is not None:
            self._starts.insert(insert_at, left_keep[0])
            self._ends.insert(insert_at, left_keep[1])
            insert_at += 1
        if right_keep is not None:
            self._starts.insert(insert_at, right_keep[0])
            self._ends.insert(insert_at, right_keep[1])
        return before - self.total

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    # -- queries ----------------------------------------------------------

    @property
    def total(self) -> int:
        """Total bytes covered."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def coverage(self, start: int, end: int) -> int:
        """Bytes of [start, end) that are covered."""
        if end <= start:
            return 0
        covered = 0
        lo = bisect_right(self._ends, start)
        for s, e in zip(self._starts[lo:], self._ends[lo:]):
            if s >= end:
                break
            covered += min(e, end) - max(s, start)
        return covered

    def gaps(self, start: int, end: int) -> list[tuple[int, int]]:
        """Uncovered sub-intervals of [start, end), in order."""
        if end <= start:
            return []
        out = []
        cursor = start
        lo = bisect_right(self._ends, start)
        for s, e in zip(self._starts[lo:], self._ends[lo:]):
            if s >= end:
                break
            if s > cursor:
                out.append((cursor, s))
            cursor = max(cursor, e)
        if cursor < end:
            out.append((cursor, end))
        return out

    def contains(self, start: int, end: int) -> bool:
        """True if [start, end) is fully covered."""
        return self.coverage(start, end) == end - start

    def intervals(self) -> list[tuple[int, int]]:
        """All intervals as (start, end) pairs, ascending."""
        return list(zip(self._starts, self._ends))

    def first(self) -> tuple[int, int] | None:
        """Lowest interval, or None when empty."""
        if not self._starts:
            return None
        return (self._starts[0], self._ends[0])

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __len__(self) -> int:
        """Number of disjoint intervals."""
        return len(self._starts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"[{s},{e})" for s, e in self.intervals())
        return f"IntervalSet({inner})"
