"""Sorted disjoint byte-interval sets.

The cache and the file allocation maps track byte ranges as
half-open intervals [start, end).  This container keeps them sorted,
disjoint, and coalesced, with the usual set operations.

Mutations maintain a running byte count, so :attr:`total` is O(1) and
``add``/``remove`` return their deltas without re-summing the set
(the seed recomputed an O(n) sum twice per mutation).  Queries walk
the interval arrays by index instead of slicing copies of the tails.
Every *effective* mutation (one that changes membership) bumps
:attr:`mutation_epoch`, which lets observers — the b_eff_io
steady-state detector — check "nothing changed" across a window in
O(1) instead of snapshotting the set.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right


class IntervalSet:
    """A set of bytes represented as disjoint half-open intervals."""

    __slots__ = ("_starts", "_ends", "_total", "mutation_epoch")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._total = 0
        #: bumped on every effective mutation (delta != 0)
        self.mutation_epoch = 0

    # -- mutation ---------------------------------------------------------

    def add(self, start: int, end: int) -> int:
        """Insert [start, end); returns the number of *new* bytes added."""
        if end < start:
            raise ValueError(f"inverted interval [{start}, {end})")
        if end == start:
            return 0
        # indices of intervals overlapping or adjacent to [start, end)
        lo = bisect_left(self._ends, start)
        hi = bisect_right(self._starts, end)
        if lo < hi:
            # bytes already covered by the absorbed intervals
            absorbed = 0
            starts = self._starts
            ends = self._ends
            for i in range(lo, hi):
                absorbed += ends[i] - starts[i]
            start = min(start, starts[lo])
            end = max(end, ends[hi - 1])
            added = (end - start) - absorbed
        else:
            added = end - start
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        self._starts.insert(lo, start)
        self._ends.insert(lo, end)
        if added:
            self._total += added
            self.mutation_epoch += 1
        return added

    def remove(self, start: int, end: int) -> int:
        """Delete [start, end); returns the number of bytes removed."""
        if end < start:
            raise ValueError(f"inverted interval [{start}, {end})")
        if end == start or not self._starts:
            return 0
        lo = bisect_right(self._ends, start)
        hi = bisect_left(self._starts, end)
        if lo >= hi:
            return 0
        starts = self._starts
        ends = self._ends
        removed = 0
        for i in range(lo, hi):
            removed += min(ends[i], end) - max(starts[i], start)
        left_keep = None
        right_keep = None
        if starts[lo] < start:
            left_keep = (starts[lo], start)
        if ends[hi - 1] > end:
            right_keep = (end, ends[hi - 1])
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        insert_at = lo
        if left_keep is not None:
            self._starts.insert(insert_at, left_keep[0])
            self._ends.insert(insert_at, left_keep[1])
            insert_at += 1
        if right_keep is not None:
            self._starts.insert(insert_at, right_keep[0])
            self._ends.insert(insert_at, right_keep[1])
        if removed:
            self._total -= removed
            self.mutation_epoch += 1
        return removed

    def clear(self) -> None:
        if self._starts:
            self.mutation_epoch += 1
        self._starts.clear()
        self._ends.clear()
        self._total = 0

    # -- queries ----------------------------------------------------------

    @property
    def total(self) -> int:
        """Total bytes covered (O(1))."""
        return self._total

    def coverage(self, start: int, end: int) -> int:
        """Bytes of [start, end) that are covered."""
        if end <= start:
            return 0
        covered = 0
        starts = self._starts
        ends = self._ends
        n = len(starts)
        i = bisect_right(ends, start)
        while i < n:
            s = starts[i]
            if s >= end:
                break
            covered += min(ends[i], end) - max(s, start)
            i += 1
        return covered

    def gaps(self, start: int, end: int) -> list[tuple[int, int]]:
        """Uncovered sub-intervals of [start, end), in order."""
        if end <= start:
            return []
        out = []
        cursor = start
        starts = self._starts
        ends = self._ends
        n = len(starts)
        i = bisect_right(ends, start)
        while i < n:
            s = starts[i]
            if s >= end:
                break
            if s > cursor:
                out.append((cursor, s))
            e = ends[i]
            if e > cursor:
                cursor = e
            i += 1
        if cursor < end:
            out.append((cursor, end))
        return out

    def contains(self, start: int, end: int) -> bool:
        """True if [start, end) is fully covered."""
        return self.coverage(start, end) == end - start

    def intervals(self) -> list[tuple[int, int]]:
        """All intervals as (start, end) pairs, ascending."""
        return list(zip(self._starts, self._ends))

    def first(self) -> tuple[int, int] | None:
        """Lowest interval, or None when empty."""
        if not self._starts:
            return None
        return (self._starts[0], self._ends[0])

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __len__(self) -> int:
        """Number of disjoint intervals."""
        return len(self._starts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"[{s},{e})" for s, e in self.intervals())
        return f"IntervalSet({inner})"
