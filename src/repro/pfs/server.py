"""I/O server: ordered request service, disk model, background drain.

One server owns one disk (seek + streaming transfer + read-modify-
write penalty for block-misaligned edges) and one slice of the
filesystem buffer cache.  A single server process alternates between
foreground requests and, when idle, draining dirty cache bytes
to disk in ``drain_chunk`` pieces — so a saturated request stream
keeps the cache full and pushes writes to disk speed, while an idle
period flushes the cache in the background, exactly the dynamics
behind the paper's T-dependent b_eff_io results.

Requests are serviced in arrival-time order, but arrivals at the
*same virtual instant* are ordered by request content (kind, file,
extents) rather than by submission call order: the service loop parks
at the instant's tail (``yield Tail()``) before popping, so every
same-time submit is in the heap when the choice is made.  Service
durations depend on the disk head position and cache state the
previous request left behind, so an order set by same-instant call
sequence would make every b_eff_io number depend on scheduler
tie-breaking — exactly the hazard :mod:`repro.devtools.sanitizer`
shuffles for.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.pfs.cache import BufferCache
from repro.sim.engine import Simulator
from repro.sim.process import Process, SimEvent, Sleep, SleepUntil, Tail


@dataclass(frozen=True)
class IORequest:
    """A batch of same-file extents for one server (already striped)."""

    kind: str  # "write" | "read"
    file_id: object
    extents: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.kind not in ("write", "read"):
            raise ValueError(f"bad request kind {self.kind!r}")
        for start, end in self.extents:
            if end < start:
                raise ValueError(f"inverted extent [{start}, {end})")

    @property
    def nbytes(self) -> int:
        return sum(e - s for s, e in self.extents)


@dataclass
class ServerParams:
    """Timing constants for one I/O server."""

    disk_bw: float  # streaming disk bandwidth, bytes/s
    ingest_bw: float  # cache/memory bandwidth, bytes/s
    seek_time: float  # per discontiguous disk access, s
    request_overhead: float  # fixed service cost per request, s
    disk_block: int  # RMW alignment granularity, bytes
    cache_bytes: int  # this server's cache slice
    drain_chunk: int = 1 << 20  # writeback granularity, bytes
    drain_delay: float = 0.0  # idle time before background writeback starts, s
    #: surcharge per request whose extents are not sector-aligned —
    #: the "non-wellformed" fast-path loss (sector-level RMW, unaligned
    #: buffer handling); reads pay half
    unaligned_penalty: float = 0.0
    #: alignment granularity of the fast path (a disk sector)
    sector: int = 512

    def __post_init__(self) -> None:
        if self.disk_bw <= 0 or self.ingest_bw <= 0:
            raise ValueError("bandwidths must be positive")
        if self.seek_time < 0 or self.request_overhead < 0:
            raise ValueError("times must be >= 0")
        if self.disk_block < 1 or self.drain_chunk < 1:
            raise ValueError("disk_block and drain_chunk must be >= 1")
        if self.drain_delay < 0:
            raise ValueError("drain_delay must be >= 0")
        if self.unaligned_penalty < 0:
            raise ValueError("unaligned_penalty must be >= 0")
        if self.sector < 1:
            raise ValueError("sector must be >= 1")
        if self.cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")


class IOServer:
    def __init__(self, sim: Simulator, params: ServerParams, name: str = "ios") -> None:
        self.sim = sim
        self.params = params
        self.name = name
        self.cache = BufferCache(params.cache_bytes)
        #: (arrival time, content key, submit seq, request, done event);
        #: a heap, so same-instant arrivals pop in content order
        self._queue: list[
            tuple[float, tuple[str, str, tuple[tuple[int, int], ...]], int, IORequest, SimEvent]
        ] = []
        self._submit_seq = 0
        self._disk_pos: tuple[object, int] | None = None
        #: highest end offset ever written per file (RMW gate: only
        #: overwrites of existing data need a block read)
        self._high_water: dict[object, int] = {}
        self._wakeup: SimEvent | None = None
        self._sync_waiters: list[tuple[object, SimEvent]] = []
        #: no background writeback before this instant (last foreground
        #: service end + drain_delay).  An attribute — not a loop
        #: local — so the b_eff_io fast path can read and patch it when
        #: it skips repetitions analytically; the idle wait below
        #: re-checks it on every wake-up, making stale timers harmless.
        self._no_drain_before = 0.0
        #: crash injection: the service loop idles until this instant
        #: (``math.inf`` = dead forever).  Requests already mid-service
        #: complete — the crash boundary is request granularity.
        self._down_until = 0.0
        #: statistics
        self.bytes_to_disk = 0
        self.bytes_from_disk = 0
        self.requests_served = 0
        self.seeks = 0
        Process(sim, self._run(), name=f"{name}.loop", daemon=True)

    # -- client interface ---------------------------------------------------

    def submit(self, request: IORequest) -> SimEvent:
        """Enqueue a request; the event fires when it has been serviced.

        Same-instant submissions are serviced in (kind, file, extents)
        order regardless of which client's handler ran first, keeping
        results invariant under same-time scheduler tie-breaking.
        """
        done = SimEvent(self.sim, name=f"{self.name}.req")
        key = (request.kind, str(request.file_id), request.extents)
        heapq.heappush(
            self._queue, (self.sim.now, key, self._submit_seq, request, done)
        )
        self._submit_seq += 1
        self._kick()
        return done

    def sync(self, file_id: object) -> SimEvent:
        """Event that fires once no dirty bytes of ``file_id`` remain here."""
        done = SimEvent(self.sim, name=f"{self.name}.sync")
        if self.cache.dirty_bytes(file_id) == 0 and not self._pending_writes(file_id):
            done.trigger(self.sim.now)
        else:
            self._sync_waiters.append((file_id, done))
            self._kick()
        return done

    def _pending_writes(self, file_id: object) -> bool:
        return any(
            req.kind == "write" and req.file_id == file_id
            for _t, _key, _seq, req, _ev in self._queue
        )

    # -- fault injection ------------------------------------------------------

    def inject_crash(self, t_recover: float, lose_cache: bool = True) -> int:
        """Crash this server now; it resumes service at ``t_recover``.

        With ``lose_cache`` the volatile buffer cache is dropped —
        dirty bytes the clients believe written never reach disk.
        ``t_recover == math.inf`` models a dead server: queued and
        future requests are never serviced, so clients waiting on them
        block and the run surfaces a :class:`~repro.sim.engine.DeadlockError`
        instead of hanging.  Returns the cached bytes lost.
        """
        if t_recover < self.sim.now:
            raise ValueError(f"t_recover {t_recover!r} is in the past")
        lost = self.cache.drop_all() if lose_cache else 0
        self._disk_pos = None  # recovery starts with a cold disk head
        self._down_until = t_recover
        if lose_cache:
            # dropped dirty bytes satisfy sync waiters (the data is
            # gone, not pending) — matching a real fsync-after-crash
            self._check_sync_waiters()
        if not math.isinf(t_recover):
            self.sim.schedule_abs(t_recover, self._kick)
        return lost

    # -- service loop ---------------------------------------------------------

    def _kick(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.trigger(None)

    def _run(self):
        params = self.params
        while True:
            if self.sim.now < self._down_until:
                if math.isinf(self._down_until):
                    # dead server: block this (daemon) loop forever; the
                    # queue drains and client waiters deadlock-detect
                    yield SimEvent(self.sim, name=f"{self.name}.dead")
                    continue  # pragma: no cover - event never triggers
                yield SleepUntil(self._down_until)
                continue
            if self._queue:
                # Park at the tail of the instant before choosing: every
                # same-time submit must be in the heap so request content
                # (not handler interleaving) decides service order.
                yield Tail()
                if self.sim.now < self._down_until:
                    continue  # crashed while parked
                _t, _key, _seq, request, done = heapq.heappop(self._queue)
                duration = self._service(request)
                if duration > 0:
                    yield Sleep(duration)
                self.requests_served += 1
                done.trigger(self.sim.now)
                self._check_sync_waiters()
                self._no_drain_before = self.sim.now + params.drain_delay
            elif self.cache.dirty_total > 0:
                # Writeback waits out the idle delay — interruptibly,
                # so foreground requests arriving meanwhile are served
                # first — then parks at the instant's tail so
                # same-instant submissions win the disk over the
                # background drain.
                # The wake-up lands on _no_drain_before *exactly*
                # (schedule_abs) and the deadline is re-read after the
                # wake, so a fast-forward moving it further out just
                # causes another wait.
                if self.sim.now < self._no_drain_before:
                    wakeup = self._wakeup = SimEvent(self.sim, name=f"{self.name}.delay")
                    self.sim.schedule_abs(
                        self._no_drain_before,
                        lambda ev=wakeup: None if ev.triggered else ev.trigger(None),
                    )
                    yield wakeup
                    self._wakeup = None
                    continue
                yield Tail()
                if self._queue:
                    continue
                drained = self.cache.drain_next(params.drain_chunk)
                if drained is not None:
                    file_id, start, end = drained
                    duration = self._disk_write_time(file_id, start, end)
                    yield Sleep(duration)
                    self._check_sync_waiters()
            else:
                self._wakeup = SimEvent(self.sim, name=f"{self.name}.wake")
                yield self._wakeup
                self._wakeup = None

    def _check_sync_waiters(self) -> None:
        still = []
        for file_id, event in self._sync_waiters:
            if self.cache.dirty_bytes(file_id) == 0 and not self._pending_writes(file_id):
                event.trigger(self.sim.now)
            else:
                still.append((file_id, event))
        self._sync_waiters = still

    # -- timing pieces ----------------------------------------------------------

    def _disk_write_time(self, file_id: object, start: int, end: int) -> float:
        params = self.params
        t = 0.0
        if self._disk_pos != (file_id, start):
            t += params.seek_time
            self.seeks += 1
        t += (end - start) / params.disk_bw
        self.bytes_to_disk += end - start
        self._disk_pos = (file_id, end)
        return t

    def _disk_read_time(self, file_id: object, start: int, end: int) -> float:
        params = self.params
        t = 0.0
        if self._disk_pos != (file_id, start):
            t += params.seek_time
            self.seeks += 1
        t += (end - start) / params.disk_bw
        self.bytes_from_disk += end - start
        self._disk_pos = (file_id, end)
        return t

    def _is_sector_misaligned(self, request: IORequest) -> bool:
        sector = self.params.sector
        return any(
            start % sector != 0 or end % sector != 0
            for start, end in request.extents
        )

    def _rmw_time(self, request: IORequest) -> float:
        """Read-modify-write cost for block-misaligned *overwrites*.

        A misaligned edge needs the old block only when it cuts into
        data that already exists on the file (below its high-water
        mark) and the block is not already cached.  Appending streams
        — the initial-write access method — never trigger this; the
        rewrite pass does.
        """
        params = self.params
        block = params.disk_block
        high = self._high_water.get(request.file_id, 0)
        t = 0.0
        for start, end in request.extents:
            for edge in (start, end):
                if edge % block == 0 or edge >= high:
                    continue
                bstart = (edge // block) * block
                hit, _gaps = self.cache.read_hits(request.file_id, bstart, bstart + block)
                if hit < block:
                    t += self._disk_read_time(request.file_id, bstart, bstart + block)
                    self.cache.insert_clean(request.file_id, bstart, bstart + block)
        return t

    def _service(self, request: IORequest) -> float:
        params = self.params
        t = params.request_overhead
        misaligned = self._is_sector_misaligned(request)
        if self.cache.oplog is not None and request.extents:
            # request sentinel for the b_eff_io fast path: the alignment
            # penalty is per *request* (any misaligned extent), so the
            # extent grouping and the flag must be visible in the log;
            # extents are recorded relative to the first start, which
            # compares shift-invariantly across repetitions
            s0 = request.extents[0][0]
            self.cache.oplog.append((
                "request", request.file_id, s0, s0, request.kind, misaligned,
                tuple((s - s0, e - s0) for s, e in request.extents),
            ))
        if request.kind == "write":
            if misaligned:
                t += params.unaligned_penalty
            t += self._rmw_time(request)
            for start, end in request.extents:
                outcome = self.cache.write(request.file_id, start, end)
                cached_bytes = outcome.in_place + outcome.absorbed
                t += cached_bytes / params.ingest_bw
                if outcome.overflow:
                    # cache exhausted: the tail goes straight to disk
                    ostart = end - outcome.overflow
                    t += self._disk_write_time(request.file_id, ostart, end)
                high = self._high_water.get(request.file_id, 0)
                if end > high:
                    self._high_water[request.file_id] = end
        else:
            if misaligned:
                t += params.unaligned_penalty / 2.0
            for start, end in request.extents:
                hit, gaps = self.cache.read_hits(request.file_id, start, end)
                t += hit / params.ingest_bw
                for gs, ge in gaps:
                    t += self._disk_read_time(request.file_id, gs, ge)
                    self.cache.insert_clean(request.file_id, gs, ge)
        return t
