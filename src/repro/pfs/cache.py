"""Filesystem buffer cache with write-behind.

One instance models one I/O server's slice of the filesystem cache.
Byte ranges are tracked exactly (per-file interval sets); the
eviction policy is deterministic: clean bytes are evicted
lowest-offset-first per file, oldest file first — for the sequential
streams the benchmarks generate this approximates LRU (the tail of a
stream, i.e. the most recently written data, survives).

The paper's Sec. 5.4 cache discussion maps directly onto this model:
``MPI_File_sync`` only forces dirty bytes to the *drain queue*, a
benchmark that writes less than ~the cache size measures
``ingest_bw`` (memory speed) rather than the disks, and only datasets
much larger than the cache measure sustained disk bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pfs.intervals import IntervalSet


@dataclass(frozen=True)
class WriteOutcome:
    """How a write interacted with the cache.

    ``in_place``  bytes that overwrote already-cached data (no new space)
    ``absorbed``  new bytes accepted into the cache (write-behind)
    ``overflow``  bytes that could not be cached (must go to disk now)
    """

    in_place: int
    absorbed: int
    overflow: int


class BufferCache:
    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self._cached: dict[object, IntervalSet] = {}
        self._dirty: dict[object, IntervalSet] = {}
        self._file_order: list[object] = []  # insertion order for eviction
        self.used = 0

    # -- bookkeeping helpers ------------------------------------------------

    def _sets(self, file_id: object) -> tuple[IntervalSet, IntervalSet]:
        if file_id not in self._cached:
            self._cached[file_id] = IntervalSet()
            self._dirty[file_id] = IntervalSet()
            self._file_order.append(file_id)
        return self._cached[file_id], self._dirty[file_id]

    @property
    def dirty_total(self) -> int:
        return sum(s.total for s in self._dirty.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def dirty_bytes(self, file_id: object) -> int:
        s = self._dirty.get(file_id)
        return s.total if s is not None else 0

    def cached_bytes(self, file_id: object) -> int:
        s = self._cached.get(file_id)
        return s.total if s is not None else 0

    # -- eviction -------------------------------------------------------------

    def _evict_clean(self, needed: int) -> int:
        """Evict clean bytes until ``needed`` bytes are free (best effort).

        Returns the number of bytes actually freed.  Dirty bytes are
        pinned until drained.
        """
        freed = 0
        for file_id in self._file_order:
            if freed >= needed:
                break
            cached = self._cached[file_id]
            dirty = self._dirty[file_id]
            # clean = cached - dirty, walked lowest-offset-first
            for start, end in cached.intervals():
                if freed >= needed:
                    break
                for gs, ge in dirty.gaps(start, end):
                    take = min(ge - gs, needed - freed)
                    removed = cached.remove(gs, gs + take)
                    self.used -= removed
                    freed += removed
                    if freed >= needed:
                        break
        return freed

    # -- operations -------------------------------------------------------------

    def write(self, file_id: object, start: int, end: int) -> WriteOutcome:
        """Account a write of [start, end); data becomes dirty."""
        if end < start:
            raise ValueError("inverted range")
        nbytes = end - start
        if nbytes == 0:
            return WriteOutcome(0, 0, 0)
        cached, dirty = self._sets(file_id)
        # Mark already-cached bytes dirty *first*: dirty bytes are
        # pinned, so the eviction below cannot drop data this write is
        # overwriting in place.
        in_place = 0
        cursor = start
        for gs, ge in cached.gaps(start, end) + [(end, end)]:
            if cursor < gs:
                dirty.add(cursor, gs)
                in_place += gs - cursor
            cursor = ge
        gaps_before = cached.gaps(start, end)
        new = nbytes - in_place
        if new > self.free:
            self._evict_clean(new - self.free)
        absorbed = min(new, self.free)
        overflow = new - absorbed
        # Take the absorbed portion from the front of the uncovered gaps.
        remaining = absorbed
        for gs, ge in gaps_before:
            if remaining <= 0:
                break
            take = min(ge - gs, remaining)
            added = cached.add(gs, gs + take)
            self.used += added
            dirty.add(gs, gs + take)
            remaining -= take
        return WriteOutcome(in_place=in_place, absorbed=absorbed, overflow=overflow)

    def read_hits(self, file_id: object, start: int, end: int) -> tuple[int, list[tuple[int, int]]]:
        """(cached bytes, uncovered gaps) of [start, end)."""
        if end < start:
            raise ValueError("inverted range")
        cached = self._cached.get(file_id)
        if cached is None:
            return 0, [(start, end)] if end > start else []
        return cached.coverage(start, end), cached.gaps(start, end)

    def insert_clean(self, file_id: object, start: int, end: int) -> int:
        """Cache data fetched from disk; returns bytes actually cached."""
        if end < start:
            raise ValueError("inverted range")
        nbytes = end - start
        if nbytes == 0:
            return 0
        cached, _dirty = self._sets(file_id)
        new = nbytes - cached.coverage(start, end)
        if new > self.free:
            self._evict_clean(new - self.free)
        budget = min(new, self.free)
        inserted = 0
        for gs, ge in cached.gaps(start, end):
            if inserted >= budget:
                break
            take = min(ge - gs, budget - inserted)
            added = cached.add(gs, gs + take)
            self.used += added
            inserted += added
        return inserted

    def drain_next(self, max_bytes: int) -> tuple[object, int, int] | None:
        """Pop up to ``max_bytes`` of the lowest dirty extent for disk writeback.

        Returns (file_id, start, end) of the extent now being cleaned,
        or None when nothing is dirty.  The bytes stay cached (clean).
        """
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        for file_id in self._file_order:
            dirty = self._dirty[file_id]
            first = dirty.first()
            if first is None:
                continue
            start, end = first
            end = min(end, start + max_bytes)
            dirty.remove(start, end)
            return (file_id, start, end)
        return None

    def invalidate_file(self, file_id: object) -> None:
        """Drop every cached byte of a file (e.g. on delete)."""
        cached = self._cached.pop(file_id, None)
        if cached is not None:
            self.used -= cached.total
        self._dirty.pop(file_id, None)
        if file_id in self._file_order:
            self._file_order.remove(file_id)
