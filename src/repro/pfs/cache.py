"""Filesystem buffer cache with write-behind.

One instance models one I/O server's slice of the filesystem cache.
Byte ranges are tracked exactly (per-file interval sets); the
eviction policy is deterministic: clean bytes are evicted
lowest-offset-first per file, oldest file first — for the sequential
streams the benchmarks generate this approximates LRU (the tail of a
stream, i.e. the most recently written data, survives).

The paper's Sec. 5.4 cache discussion maps directly onto this model:
``MPI_File_sync`` only forces dirty bytes to the *drain queue*, a
benchmark that writes less than ~the cache size measures
``ingest_bw`` (memory speed) rather than the disks, and only datasets
much larger than the cache measure sustained disk bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pfs.intervals import IntervalSet


@dataclass(frozen=True)
class WriteOutcome:
    """How a write interacted with the cache.

    ``in_place``  bytes that overwrote already-cached data (no new space)
    ``absorbed``  new bytes accepted into the cache (write-behind)
    ``overflow``  bytes that could not be cached (must go to disk now)
    """

    in_place: int
    absorbed: int
    overflow: int


class BufferCache:
    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self._cached: dict[object, IntervalSet] = {}
        self._dirty: dict[object, IntervalSet] = {}
        self._file_order: list[object] = []  # insertion order for eviction
        self.used = 0
        #: per-file offset below which no clean bytes remain — eviction
        #: walks lowest-offset-first, so everything below the hint is
        #: either evicted or dirty-pinned; drains and clean inserts
        #: rewind it.  Purely an accelerator: correctness never depends
        #: on the hint being tight, only on it never over-shooting.
        self._clean_hint: dict[object, int] = {}
        #: when set to a list, every mutating operation appends a
        #: ``(method, file_id, args..., result...)`` tuple — the
        #: b_eff_io fast path records one repetition's operations,
        #: verifies the next repetition repeats them shifted by a
        #: constant offset, and then replays them for skipped
        #: repetitions.  ``None`` (the default) costs one attribute
        #: check per operation.
        self.oplog: list[tuple] | None = None

    # -- bookkeeping helpers ------------------------------------------------

    def _sets(self, file_id: object) -> tuple[IntervalSet, IntervalSet]:
        if file_id not in self._cached:
            self._cached[file_id] = IntervalSet()
            self._dirty[file_id] = IntervalSet()
            self._file_order.append(file_id)
        return self._cached[file_id], self._dirty[file_id]

    @property
    def dirty_total(self) -> int:
        return sum(s.total for s in self._dirty.values())

    def state_epoch(self) -> int:
        """Sum of the interval-set mutation epochs (O(files)).

        Unchanged epoch between two observations means the cached and
        dirty byte sets are *identical* — the steady-state check of the
        b_eff_io fast path.
        """
        return sum(s.mutation_epoch for s in self._cached.values()) + sum(
            s.mutation_epoch for s in self._dirty.values()
        )

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def dirty_bytes(self, file_id: object) -> int:
        s = self._dirty.get(file_id)
        return s.total if s is not None else 0

    def cached_bytes(self, file_id: object) -> int:
        s = self._cached.get(file_id)
        return s.total if s is not None else 0

    # -- eviction -------------------------------------------------------------

    def _evict_clean(self, needed: int) -> int:
        """Evict clean bytes until ``needed`` bytes are free (best effort).

        Returns the number of bytes actually freed.  Dirty bytes are
        pinned until drained.
        """
        from bisect import bisect_right

        freed = 0
        for file_id in self._file_order:
            if freed >= needed:
                break
            cached = self._cached[file_id]
            dirty = self._dirty[file_id]
            # O(1) skip: a file whose bytes are all dirty has nothing
            # evictable (dirty bytes are pinned until drained).
            if cached.total - dirty.total <= 0:
                continue
            hint = self._clean_hint.get(file_id, 0)
            # clean = cached - dirty, walked lowest-offset-first; start
            # at the hint — everything below it was already evicted or
            # is dirty-pinned.  starts/ends alias the live arrays, so
            # removals are visible without re-materializing tuples.
            starts, ends = cached._starts, cached._ends
            idx = bisect_right(ends, hint)
            while freed < needed and idx < len(starts):
                start = max(starts[idx], hint)
                end = ends[idx]
                gaps = dirty.gaps(start, end)
                if not gaps:
                    # interval fully dirty: nothing below its end is clean
                    hint = end
                    idx += 1
                    continue
                for gs, ge in gaps:
                    take = min(ge - gs, needed - freed)
                    removed = cached.remove(gs, gs + take)
                    self.used -= removed
                    freed += removed
                    hint = gs + take
                    if freed >= needed:
                        break
                # removals re-shuffled the arrays; re-locate from the hint
                idx = bisect_right(ends, hint)
            self._clean_hint[file_id] = hint
        return freed

    # -- operations -------------------------------------------------------------

    def write(self, file_id: object, start: int, end: int) -> WriteOutcome:
        """Account a write of [start, end); data becomes dirty."""
        if end < start:
            raise ValueError("inverted range")
        nbytes = end - start
        if nbytes == 0:
            return WriteOutcome(0, 0, 0)
        cached, dirty = self._sets(file_id)
        # Mark already-cached bytes dirty *first*: dirty bytes are
        # pinned, so the eviction below cannot drop data this write is
        # overwriting in place.
        in_place = 0
        cursor = start
        for gs, ge in cached.gaps(start, end) + [(end, end)]:
            if cursor < gs:
                dirty.add(cursor, gs)
                in_place += gs - cursor
            cursor = ge
        gaps_before = cached.gaps(start, end)
        new = nbytes - in_place
        if new > self.free:
            self._evict_clean(new - self.free)
        absorbed = min(new, self.free)
        overflow = new - absorbed
        # Take the absorbed portion from the front of the uncovered gaps.
        remaining = absorbed
        for gs, ge in gaps_before:
            if remaining <= 0:
                break
            take = min(ge - gs, remaining)
            added = cached.add(gs, gs + take)
            self.used += added
            dirty.add(gs, gs + take)
            remaining -= take
        if self.oplog is not None:
            self.oplog.append(
                ("write", file_id, start, end, in_place, absorbed, overflow)
            )
        return WriteOutcome(in_place=in_place, absorbed=absorbed, overflow=overflow)

    def read_hits(self, file_id: object, start: int, end: int) -> tuple[int, list[tuple[int, int]]]:
        """(cached bytes, uncovered gaps) of [start, end)."""
        if end < start:
            raise ValueError("inverted range")
        cached = self._cached.get(file_id)
        if cached is None:
            hit, gaps = 0, [(start, end)] if end > start else []
        else:
            hit, gaps = cached.coverage(start, end), cached.gaps(start, end)
        # pure (no state change), but logged so the b_eff_io fast path
        # sees read request streams too — their server routing rotates
        # with the stripe phase exactly like writes.  The gap structure
        # is logged relative to the request start: equal hit counts can
        # hide different fragmentation (different seek counts), and
        # relative gaps compare shift-invariantly.
        if self.oplog is not None:
            rel = tuple((gs - start, ge - start) for gs, ge in gaps)
            self.oplog.append(("read", file_id, start, end, hit, rel))
        return hit, gaps

    def insert_clean(self, file_id: object, start: int, end: int) -> int:
        """Cache data fetched from disk; returns bytes actually cached."""
        if end < start:
            raise ValueError("inverted range")
        nbytes = end - start
        if nbytes == 0:
            return 0
        cached, _dirty = self._sets(file_id)
        new = nbytes - cached.coverage(start, end)
        if new > self.free:
            self._evict_clean(new - self.free)
        budget = min(new, self.free)
        inserted = 0
        for gs, ge in cached.gaps(start, end):
            if inserted >= budget:
                break
            take = min(ge - gs, budget - inserted)
            added = cached.add(gs, gs + take)
            self.used += added
            inserted += added
        if inserted and start < self._clean_hint.get(file_id, 0):
            self._clean_hint[file_id] = start
        if self.oplog is not None:
            self.oplog.append(("insert_clean", file_id, start, end, inserted))
        return inserted

    def drain_next(self, max_bytes: int) -> tuple[object, int, int] | None:
        """Pop up to ``max_bytes`` of the lowest dirty extent for disk writeback.

        Returns (file_id, start, end) of the extent now being cleaned,
        or None when nothing is dirty.  The bytes stay cached (clean).
        """
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        for file_id in self._file_order:
            dirty = self._dirty[file_id]
            first = dirty.first()
            if first is None:
                continue
            start, end = first
            end = min(end, start + max_bytes)
            dirty.remove(start, end)
            # the drained bytes stay cached but are clean now
            if start < self._clean_hint.get(file_id, 0):
                self._clean_hint[file_id] = start
            if self.oplog is not None:
                self.oplog.append(("drain_next", file_id, start, end, None))
            return (file_id, start, end)
        return None

    def drop_all(self) -> int:
        """Volatile-loss crash model: forget everything, dirty included.

        Returns the number of cached bytes lost.  Unlike
        :meth:`invalidate_file` this also discards *dirty* bytes —
        data the clients believe is written but that never reached
        disk, exactly what a server crash with a volatile buffer cache
        loses.
        """
        lost = self.used
        if self.oplog is not None:
            self.oplog.append(("drop_all", None, 0, 0, lost))
        self._cached.clear()
        self._dirty.clear()
        self._file_order.clear()
        self._clean_hint.clear()
        self.used = 0
        return lost

    def invalidate_file(self, file_id: object) -> None:
        """Drop every cached byte of a file (e.g. on delete)."""
        if self.oplog is not None:
            self.oplog.append(("invalidate_file", file_id, 0, 0, None))
        cached = self._cached.pop(file_id, None)
        if cached is not None:
            self.used -= cached.total
        self._dirty.pop(file_id, None)
        self._clean_hint.pop(file_id, None)
        if file_id in self._file_order:
            self._file_order.remove(file_id)
