"""Striped filesystem front end.

Splits client calls into per-server extent batches, moves the data
across the I/O network (one link per client, one per server, shared
max-min fairly), and waits for server service.  This is the layer an
MPI-IO implementation sits on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.pfs.server import IORequest, IOServer, ServerParams
from repro.sim.engine import Simulator
from repro.sim.fluid import FlowNetwork
from repro.sim.process import Process, Sleep, wait_all
from repro.util import MB


@dataclass
class PFSConfig:
    """Parameters of one machine's I/O subsystem."""

    num_servers: int
    stripe_unit: int
    disk_bw: float  # per-server streaming disk bandwidth (bytes/s)
    ingest_bw: float  # per-server cache/memory bandwidth (bytes/s)
    seek_time: float  # per discontiguous disk access (s)
    request_overhead: float  # per-request server service cost (s)
    disk_block: int  # RMW granularity (bytes)
    cache_bytes: int  # TOTAL filesystem cache, split over servers
    client_bw: float  # per-client I/O network link (bytes/s)
    server_net_bw: float  # per-server I/O network link (bytes/s)
    call_overhead: float  # client-side software cost per call (s)
    drain_chunk: int = MB
    #: idle time before background writeback starts (real filesystems
    #: delay writeback so bursts of requests are not interleaved with
    #: drain seeks)
    drain_delay: float = 0.05
    #: per-request fast-path loss for non-sector-aligned extents
    unaligned_penalty: float = 0.0
    sector: int = 512

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError("need at least one I/O server")
        if self.stripe_unit < 1:
            raise ValueError("stripe_unit must be >= 1")
        if self.client_bw <= 0 or self.server_net_bw <= 0:
            raise ValueError("network bandwidths must be positive")
        if self.call_overhead < 0:
            raise ValueError("call_overhead must be >= 0")

    def server_params(self) -> ServerParams:
        return ServerParams(
            disk_bw=self.disk_bw,
            ingest_bw=self.ingest_bw,
            seek_time=self.seek_time,
            request_overhead=self.request_overhead,
            disk_block=self.disk_block,
            cache_bytes=self.cache_bytes // self.num_servers,
            drain_chunk=self.drain_chunk,
            drain_delay=self.drain_delay,
            unaligned_penalty=self.unaligned_penalty,
            sector=self.sector,
        )

    @property
    def aggregate_disk_bw(self) -> float:
        return self.disk_bw * self.num_servers


class PFSFile:
    """A file: an id for cache keys plus its current size."""

    _ids = itertools.count()

    def __init__(self, name: str) -> None:
        self.name = name
        self.file_id = next(PFSFile._ids)
        self.size = 0

    def __repr__(self) -> str:
        return f"<PFSFile {self.name!r} size={self.size}>"


class FileSystem:
    def __init__(self, sim: Simulator, config: PFSConfig, tracer=None) -> None:
        self.sim = sim
        self.config = config
        #: optional repro.sim.trace.Tracer recording every client call
        self.tracer = tracer
        self.io_net = FlowNetwork(sim)
        self.servers = [
            IOServer(sim, config.server_params(), name=f"ios{i}")
            for i in range(config.num_servers)
        ]
        self._server_in = [
            self.io_net.add_link(config.server_net_bw, name=f"srvin{i}")
            for i in range(config.num_servers)
        ]
        self._server_out = [
            self.io_net.add_link(config.server_net_bw, name=f"srvout{i}")
            for i in range(config.num_servers)
        ]
        self._client_links: dict[object, tuple[int, int]] = {}
        self._files: dict[str, PFSFile] = {}
        #: stripe-split plans keyed by (start % stripe period, length);
        #: the split is shift-equivariant under whole stripe periods,
        #: so one canonical plan serves every repetition of a pattern
        self._split_period = config.stripe_unit * config.num_servers
        self._split_plans: dict[
            tuple[int, int], tuple[tuple[int, tuple[tuple[int, int], ...]], ...]
        ] = {}

    # -- namespace ---------------------------------------------------------

    def open(self, name: str) -> PFSFile:
        """Open (creating if needed) a file by name."""
        f = self._files.get(name)
        if f is None:
            f = self._files[name] = PFSFile(name)
        return f

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        f = self._files.pop(name, None)
        if f is not None:
            for server in self.servers:
                server.cache.invalidate_file(f.file_id)

    def find_links(self, pattern: str) -> list[int]:
        """Ids of I/O-network links whose name contains ``pattern``.

        Fault-plan selector hook; client links exist lazily, so a plan
        targeting ``"cli."`` only degrades clients created before
        attach (fault plans are attached after world construction, by
        which point the benchmark layer has opened its clients).
        """
        return self.io_net.find_links(pattern)

    # -- striping ------------------------------------------------------------

    def server_of(self, offset: int) -> int:
        return (offset // self.config.stripe_unit) % self.config.num_servers

    #: cap on memoised stripe-split plans (distinct (phase, length)
    #: shapes per run are few; the cap bounds adversarial sequences)
    _SPLIT_PLAN_CAP = 8192

    def split_extent(self, start: int, end: int) -> dict[int, list[tuple[int, int]]]:
        """Partition [start, end) into per-server stripe pieces.

        Striping is periodic with period ``stripe_unit * num_servers``:
        shifting an extent by a whole period shifts every piece by the
        same amount and preserves server assignment.  Plans are
        memoised per ``(start % period, length)`` and shifted — exact
        integer arithmetic, bit-identical to the direct computation.
        """
        if end < start:
            raise ValueError("inverted extent")
        period = self._split_period
        phase = start % period
        key = (phase, end - start)
        plan = self._split_plans.get(key)
        if plan is None:
            plan = self._compute_split(phase, phase + (end - start))
            if len(self._split_plans) < self._SPLIT_PLAN_CAP:
                self._split_plans[key] = plan
        shift = start - phase
        if shift == 0:
            return {srv: list(pieces) for srv, pieces in plan}
        return {
            srv: [(s + shift, e + shift) for s, e in pieces]
            for srv, pieces in plan
        }

    def _compute_split(
        self, start: int, end: int
    ) -> tuple[tuple[int, tuple[tuple[int, int], ...]], ...]:
        unit = self.config.stripe_unit
        out: dict[int, list[tuple[int, int]]] = {}
        pos = start
        while pos < end:
            boundary = (pos // unit + 1) * unit
            piece_end = min(end, boundary)
            out.setdefault(self.server_of(pos), []).append((pos, piece_end))
            pos = piece_end
        return tuple(
            (srv, tuple(pieces)) for srv, pieces in out.items()
        )

    # -- data path -------------------------------------------------------------

    def _client(self, client_id: object) -> tuple[int, int]:
        links = self._client_links.get(client_id)
        if links is None:
            tx = self.io_net.add_link(self.config.client_bw, name=f"cli.tx.{client_id}")
            rx = self.io_net.add_link(self.config.client_bw, name=f"cli.rx.{client_id}")
            links = self._client_links[client_id] = (tx, rx)
        return links

    def submit_io(self, client_id: object, file: PFSFile, kind: str,
                  extents: list[tuple[int, int]]):
        """Generator: one filesystem call moving ``extents`` of ``file``.

        ``extents`` are (start, end) pairs in file-offset space; they
        are striped over servers, transferred over the I/O network,
        and serviced by each server concurrently.  A write call
        returns once every server has accepted the data (into cache
        or disk); durability needs :meth:`sync`.
        """
        if kind not in ("write", "read"):
            raise ValueError(f"bad kind {kind!r}")
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now, f"io-{kind}", client_id, None,
                sum(e - s for s, e in extents),
            )
        if self.config.call_overhead > 0:
            yield Sleep(self.config.call_overhead)
        per_server: dict[int, list[tuple[int, int]]] = {}
        total = 0
        for start, end in extents:
            total += end - start
            for server, pieces in self.split_extent(start, end).items():
                per_server.setdefault(server, []).extend(pieces)
        if not per_server:
            return 0
        tx, rx = self._client(client_id)
        done_events = []
        for server_idx, pieces in per_server.items():
            gen = self._server_leg(kind, file, server_idx, pieces, tx, rx)
            proc = Process(
                self.sim, gen, name=f"io.{client_id}.{kind}.s{server_idx}"
            )
            done_events.append(proc.done_event)
        yield from wait_all(done_events)
        if kind == "write":
            top = max(end for _s, end in extents)
            file.size = max(file.size, top)
        return total

    def _server_leg(self, kind: str, file: PFSFile, server_idx: int,
                    pieces: list[tuple[int, int]], tx: int, rx: int):
        server = self.servers[server_idx]
        nbytes = sum(e - s for s, e in pieces)
        request = IORequest(kind=kind, file_id=file.file_id, extents=tuple(pieces))
        if kind == "write":
            # data travels to the server, then gets serviced
            yield self.io_net.start_flow([tx, self._server_in[server_idx]], nbytes)
            yield server.submit(request)
        else:
            yield server.submit(request)
            yield self.io_net.start_flow([self._server_out[server_idx], rx], nbytes)

    def write(self, client_id: object, file: PFSFile, offset: int, nbytes: int):
        result = yield from self.submit_io(
            client_id, file, "write", [(offset, offset + nbytes)]
        )
        return result

    def read(self, client_id: object, file: PFSFile, offset: int, nbytes: int):
        result = yield from self.submit_io(
            client_id, file, "read", [(offset, offset + nbytes)]
        )
        return result

    def sync(self, client_id: object, file: PFSFile):
        """Generator: block until no server holds dirty bytes of ``file``."""
        if self.config.call_overhead > 0:
            yield Sleep(self.config.call_overhead)
        events = [server.sync(file.file_id) for server in self.servers]
        yield from wait_all(events)

    # -- statistics ---------------------------------------------------------------

    @property
    def bytes_to_disk(self) -> int:
        return sum(s.bytes_to_disk for s in self.servers)

    @property
    def bytes_from_disk(self) -> int:
        return sum(s.bytes_from_disk for s in self.servers)

    @property
    def total_dirty(self) -> int:
        return sum(s.cache.dirty_total for s in self.servers)
