"""Command-line entry points.

``repro-beff --machine t3e --procs 8`` runs the effective bandwidth
benchmark on a simulated machine and prints the measurement protocol;
``repro-beffio --machine sp --procs 4 --T 10`` does the same for the
I/O benchmark.  ``--machine list`` enumerates the library.
"""

from __future__ import annotations

import argparse
import sys

from repro.beff import MeasurementConfig, run_detail
from repro.beffio import BeffIOConfig
from repro.machines import MACHINES, get_machine
from repro.reporting import beff_protocol, beffio_pattern_table, beffio_summary
from repro.reporting.export import to_json
from repro.util import MB


def _machine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        default="t3e",
        help=f"machine key or 'list' (default t3e; known: {', '.join(sorted(MACHINES))})",
    )
    parser.add_argument("--procs", type=int, default=8, help="number of MPI processes")


def _resolve_machine(args) -> object | None:
    if args.machine == "list":
        for key in sorted(MACHINES):
            spec = MACHINES[key]()
            print(f"{key:12s} {spec.name}")
        return None
    return get_machine(args.machine)


def main_beff(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-beff", description="effective bandwidth benchmark (simulated)"
    )
    _machine_arg(parser)
    parser.add_argument(
        "--backend", choices=("des", "analytic"), default="des",
        help="event simulation (reference) or analytic round model (fast)",
    )
    parser.add_argument(
        "--methods", default="sendrecv,nonblocking,alltoallv",
        help="comma-separated subset of the three methods",
    )
    parser.add_argument("--full-protocol", action="store_true",
                        help="print every raw measurement record")
    parser.add_argument("--detail", action="store_true",
                        help="also run the non-averaged detail patterns")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the result as JSON (SKaMPI-style export)")
    args = parser.parse_args(argv)
    spec = _resolve_machine(args)
    if spec is None:
        return 0
    config = MeasurementConfig(
        methods=tuple(args.methods.split(",")),
        backend=args.backend,
    )
    result = spec.run_beff(args.procs, config)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(to_json(result, machine=args.machine))
    print(beff_protocol(result, max_rows=None if args.full_protocol else 24))
    if not args.full_protocol:
        print(f"({len(result.records)} records total; --full-protocol to see all)")
    if args.detail:
        details = run_detail(
            spec.fabric_factory(args.procs), spec.memory_per_proc,
            int_bits=spec.int_bits,
        )
        print("\ndetail patterns (not averaged):")
        for name, rec in details.items():
            print(f"  {name:18s} {rec.bandwidth / MB:10.1f} MB/s")
    return 0


def main_beffio(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-beffio", description="effective I/O bandwidth benchmark (simulated)"
    )
    _machine_arg(parser)
    parser.add_argument("--T", type=float, default=30.0,
                        help="scheduled partition time, simulated seconds "
                             "(paper: >= 900 for official numbers)")
    parser.add_argument("--types", default="0,1,2,3,4",
                        help="comma-separated pattern types to run")
    parser.add_argument("--pattern-table", action="store_true",
                        help="print the per-pattern table of every access method")
    parser.add_argument("--termination", choices=("per-iteration", "geometric"),
                        default="per-iteration",
                        help="collective-loop termination algorithm (Sec. 5.4)")
    parser.add_argument("--mode", choices=("fast", "reference"), default="fast",
                        help="fast = steady-state repetition fast-forward; "
                             "reference = every repetition simulated (bit-identical)")
    parser.add_argument("--partitions", metavar="N,N,...",
                        help="sweep these partition sizes instead of --procs and "
                             "report the system-level b_eff_io (max over partitions)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --partitions sweeps (results "
                             "are identical to a serial sweep)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the result as JSON (SKaMPI-style export)")
    args = parser.parse_args(argv)
    spec = _resolve_machine(args)
    if spec is None:
        return 0
    config = BeffIOConfig(
        T=args.T,
        pattern_types=tuple(int(t) for t in args.types.split(",")),
        termination=args.termination,
        mode=args.mode,
    )
    if args.partitions:
        from repro.beffio.sweep import run_sweep

        sweep = run_sweep(
            args.machine, [int(n) for n in args.partitions.split(",")],
            config, jobs=args.jobs,
        )
        for r in sweep.results:
            print(f"{r.nprocs:6d} procs  b_eff_io = {r.b_eff_io / MB:10.2f} MB/s")
        print(f"system b_eff_io = {sweep.system_b_eff_io / MB:.2f} MB/s "
              f"(best partition: {sweep.best_partition} procs"
              f"{', official' if sweep.official else ''})")
        return 0
    result = spec.run_beffio(args.procs, config)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(to_json(result, machine=args.machine))
    print(beffio_summary(result))
    if args.pattern_table:
        for method in ("write", "rewrite", "read"):
            print()
            print(beffio_pattern_table(result, method).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_beff())
