"""Command-line entry points.

``repro-beff --machine t3e --procs 8`` runs the effective bandwidth
benchmark on a simulated machine and prints the measurement protocol;
``repro-beffio --machine sp --procs 4 --T 10`` does the same for the
I/O benchmark.  ``--machine list`` enumerates the library.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.beff import MeasurementConfig, run_detail
from repro.beffio import BeffIOConfig
from repro.faults import FaultPlan
from repro.machines import MACHINES, get_machine
from repro.reporting import beff_protocol, beffio_pattern_table, beffio_summary
from repro.reporting.export import to_json, write_json_atomic
from repro.util import MB

#: exit code when a sweep partition fails after exhausting retries
EXIT_SWEEP_WORKER_FAILED = 3
#: exit code when --sanitize finds a same-time tie-break dependency
EXIT_SANITIZER_FAILED = 4
#: exit code when a supervised run completed but quarantined cells —
#: the results that exist are real, yet the campaign is degraded
EXIT_COMPLETED_DEGRADED = 5


def _machine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        default="t3e",
        help=f"machine key or 'list' (default t3e; known: {', '.join(sorted(MACHINES))})",
    )
    parser.add_argument("--procs", type=int, default=8, help="number of MPI processes")


def _fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", type=int, metavar="SEED", default=None,
        help="inject the deterministic severity-profile fault plan built "
             "from this seed (see repro.faults.FaultPlan.severity_profile)",
    )
    parser.add_argument(
        "--fault-severity", type=float, default=0.5, metavar="S",
        help="fault severity in [0, 1] for --faults (0 = no faults; default 0.5)",
    )


def _cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="content-addressed result store: previously simulated "
             "partitions are served byte-identically from this directory "
             "instead of re-simulated; fresh results are absorbed into it",
    )
    parser.add_argument(
        "--cache-limit", type=int, metavar="BYTES", default=None,
        help="size cap for --cache; least-recently-served entries are "
             "evicted past it (default: unbounded)",
    )


def _store_of(args) -> "object | None":
    if args.cache is None:
        if args.cache_limit is not None:
            raise SystemExit("--cache-limit requires --cache")
        return None
    from repro.runtime.store import RunStore

    return RunStore(args.cache, limit_bytes=args.cache_limit)


def _print_cache(store, fresh: int, cached: int) -> None:
    if store is not None:
        print(f"cache: {fresh} fresh + {cached} cached ({store.stats.describe()})")


def _sanitize_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the nondeterminism sanitizer: re-execute the benchmark "
             "under shuffled same-time tie-breakers (3 extra runs) and fail "
             f"with exit code {EXIT_SANITIZER_FAILED} unless every run is "
             "bit-identical (see docs/static-analysis.md)",
    )


def _sanitized_run(run, describe_result):
    """Run ``run`` under the commutativity check; returns (result, exit)."""
    from repro.devtools.sanitizer import check_commutativity

    report = check_commutativity(
        run, equal=lambda a, b: describe_result(a) == describe_result(b)
    )
    print(f"sanitizer: {report.describe()}")
    if not report.ok:
        return report.baseline_result, EXIT_SANITIZER_FAILED
    return report.baseline_result, 0


def _fault_plan(args, spec, horizon: float) -> FaultPlan | None:
    if args.faults is None:
        return None
    num_servers = spec.pfs.num_servers if spec.pfs is not None else 0
    return FaultPlan.severity_profile(
        args.faults, horizon, args.fault_severity,
        nprocs=args.procs, num_servers=num_servers,
    )


def _print_validity(validity) -> None:
    if not validity.ok:
        print(f"validity: {validity.describe()}")


def _supervision_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline", type=float, metavar="SECONDS", default=None,
        help="supervised execution: wall-clock budget per cell attempt; "
             "an overrunning worker is killed and the attempt retried",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, metavar="SECONDS", default=None,
        help="supervised execution: kill a worker silent for this long "
             "(hung-node detection; workers heartbeat continuously)",
    )
    parser.add_argument(
        "--max-failures", type=int, metavar="N", default=None,
        help="supervised execution: attempts per cell before it is "
             "quarantined as poisoned (the campaign completes; exit code "
             f"{EXIT_COMPLETED_DEGRADED} reports the degradation)",
    )
    parser.add_argument(
        "--backoff", type=float, metavar="SECONDS", default=0.0,
        help="base retry delay; grows exponentially with seeded jitter "
             "derived from the cell fingerprint (reproducible timing)",
    )


def _supervision_of(args) -> "object | None":
    """A SupervisionPolicy when any supervised-execution flag was given."""
    if (
        args.deadline is None
        and args.heartbeat_timeout is None
        and args.max_failures is None
    ):
        return None
    from repro.runtime.supervisor import SupervisionPolicy

    return SupervisionPolicy(
        deadline_s=args.deadline,
        heartbeat_timeout_s=args.heartbeat_timeout,
        max_failures=args.max_failures if args.max_failures is not None else 3,
        backoff_base_s=args.backoff,
    )


def _print_poisoned(poisoned) -> None:
    for record in poisoned:
        print(f"poisoned: {record.describe()}")


def _resolve_machine(args) -> object | None:
    if args.machine == "list":
        for key in sorted(MACHINES):
            spec = MACHINES[key]()
            print(f"{key:12s} {spec.name}")
        return None
    return get_machine(args.machine)


def main_beff(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-beff", description="effective bandwidth benchmark (simulated)",
        epilog="exit codes: 0 success, 2 usage error, "
               f"{EXIT_SWEEP_WORKER_FAILED} sweep partition failed after retries, "
               f"{EXIT_COMPLETED_DEGRADED} completed with quarantined partitions",
    )
    _machine_arg(parser)
    parser.add_argument(
        "--backend", choices=("des", "analytic"), default="des",
        help="event simulation (reference) or analytic round model (fast)",
    )
    parser.add_argument(
        "--methods", default="sendrecv,nonblocking,alltoallv",
        help="comma-separated subset of the three methods",
    )
    parser.add_argument("--full-protocol", action="store_true",
                        help="print every raw measurement record")
    parser.add_argument("--detail", action="store_true",
                        help="also run the non-averaged detail patterns")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the result as JSON (SKaMPI-style export)")
    parser.add_argument("--partitions", metavar="N,N,...",
                        help="sweep these partition sizes instead of --procs and "
                             "report the best b_eff (same journal/resume/retry "
                             "contract as repro-beffio)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --partitions sweeps (results "
                             "are identical to a serial sweep)")
    parser.add_argument("--journal", metavar="DIR",
                        help="crash-safe sweep journal directory (per-partition "
                             "results are written atomically as they complete)")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed sweep from --journal, replaying "
                             "completed partitions bit-identically")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-attempts per failed sweep partition before "
                             "giving up with exit code "
                             f"{EXIT_SWEEP_WORKER_FAILED}")
    _supervision_args(parser)
    _cache_args(parser)
    _fault_args(parser)
    _sanitize_arg(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.journal:
        parser.error("--resume requires --journal")
    if args.sanitize and args.partitions:
        parser.error("--sanitize checks a single partition; drop --partitions")
    if args.cache and not args.partitions:
        parser.error("--cache serves --partitions sweeps; drop it or add --partitions")
    supervision = _supervision_of(args)
    if supervision is not None and not args.partitions:
        parser.error("supervised execution needs --partitions")
    spec = _resolve_machine(args)
    if spec is None:
        return 0
    # fault windows are placed against a nominal 1-second horizon (the
    # whole-run link/straggler degradations are horizon-independent)
    plan = _fault_plan(args, spec, horizon=1.0)
    if plan is not None and args.backend != "des":
        parser.error("--faults requires --backend des")
    config = MeasurementConfig(
        methods=tuple(args.methods.split(",")),
        backend=args.backend,
        faults=plan,
    )
    if args.partitions:
        from repro.beff.sweep import SweepWorkerError, run_sweep

        store = _store_of(args)
        try:
            sweep = run_sweep(
                args.machine, [int(n) for n in args.partitions.split(",")],
                config, jobs=args.jobs,
                journal=args.journal, resume=args.resume, retries=args.retries,
                backoff=args.backoff, store=store, supervision=supervision,
            )
        except SweepWorkerError as exc:
            print(f"repro-beff: {exc}", file=sys.stderr)
            if exc.worker_traceback:
                print(exc.worker_traceback, file=sys.stderr, end="")
            return EXIT_SWEEP_WORKER_FAILED
        for r in sweep.results:
            print(f"{r.nprocs:6d} procs  b_eff = {r.b_eff / MB:10.1f} MB/s"
                  f"{'' if r.validity.ok else '  [' + r.validity.state + ']'}")
        _print_poisoned(sweep.poisoned)
        _print_validity(sweep.validity)
        _print_cache(store, sweep.fresh, sweep.cached)
        print(f"best b_eff = {sweep.best_b_eff / MB:.1f} MB/s "
              f"(best partition: {sweep.best_partition} procs)")
        return EXIT_COMPLETED_DEGRADED if sweep.poisoned else 0
    if args.sanitize:
        result, status = _sanitized_run(
            lambda: spec.run_beff(args.procs, config),
            lambda r: to_json(r, machine=args.machine),
        )
        if status:
            return status
    else:
        result = spec.run_beff(args.procs, config)
    if args.json:
        write_json_atomic(args.json, to_json(result, machine=args.machine))
    _print_validity(result.validity)
    print(beff_protocol(result, max_rows=None if args.full_protocol else 24))
    if not args.full_protocol:
        print(f"({len(result.records)} records total; --full-protocol to see all)")
    if args.detail:
        details = run_detail(
            spec.fabric_factory(args.procs), spec.memory_per_proc,
            int_bits=spec.int_bits,
        )
        print("\ndetail patterns (not averaged):")
        for name, rec in details.items():
            print(f"  {name:18s} {rec.bandwidth / MB:10.1f} MB/s")
    return 0


def main_beffio(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-beffio", description="effective I/O bandwidth benchmark (simulated)",
        epilog="exit codes: 0 success, 2 usage error, "
               f"{EXIT_SWEEP_WORKER_FAILED} sweep partition failed after retries, "
               f"{EXIT_COMPLETED_DEGRADED} completed with quarantined partitions",
    )
    _machine_arg(parser)
    parser.add_argument("--T", type=float, default=30.0,
                        help="scheduled partition time, simulated seconds "
                             "(paper: >= 900 for official numbers)")
    parser.add_argument("--types", default="0,1,2,3,4",
                        help="comma-separated pattern types to run")
    parser.add_argument("--pattern-table", action="store_true",
                        help="print the per-pattern table of every access method")
    parser.add_argument("--termination", choices=("per-iteration", "geometric"),
                        default="per-iteration",
                        help="collective-loop termination algorithm (Sec. 5.4)")
    parser.add_argument("--mode", choices=("fast", "reference"), default="fast",
                        help="fast = steady-state repetition fast-forward; "
                             "reference = every repetition simulated (bit-identical)")
    parser.add_argument("--partitions", metavar="N,N,...",
                        help="sweep these partition sizes instead of --procs and "
                             "report the system-level b_eff_io (max over partitions)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --partitions sweeps (results "
                             "are identical to a serial sweep)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the result as JSON (SKaMPI-style export)")
    parser.add_argument("--pattern-budget", type=float, default=None, metavar="SECONDS",
                        help="per-pattern simulated-time budget; overrunning "
                             "patterns are capped and flagged (skip-and-flag)")
    parser.add_argument("--journal", metavar="DIR",
                        help="crash-safe sweep journal directory (per-partition "
                             "results are written atomically as they complete)")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed sweep from --journal, replaying "
                             "completed partitions bit-identically")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-attempts per failed sweep partition before "
                             "giving up with exit code "
                             f"{EXIT_SWEEP_WORKER_FAILED}")
    _supervision_args(parser)
    _cache_args(parser)
    _fault_args(parser)
    _sanitize_arg(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.journal:
        parser.error("--resume requires --journal")
    if args.sanitize and args.partitions:
        parser.error("--sanitize checks a single partition; drop --partitions")
    if args.cache and not args.partitions:
        parser.error("--cache serves --partitions sweeps; drop it or add --partitions")
    supervision = _supervision_of(args)
    if supervision is not None and not args.partitions:
        parser.error("supervised execution needs --partitions")
    spec = _resolve_machine(args)
    if spec is None:
        return 0
    config = BeffIOConfig(
        T=args.T,
        pattern_types=tuple(int(t) for t in args.types.split(",")),
        termination=args.termination,
        mode=args.mode,
        faults=_fault_plan(args, spec, horizon=args.T),
        pattern_budget=args.pattern_budget,
    )
    if args.partitions:
        from repro.beffio.sweep import SweepWorkerError, run_sweep

        store = _store_of(args)
        try:
            sweep = run_sweep(
                args.machine, [int(n) for n in args.partitions.split(",")],
                config, jobs=args.jobs,
                journal=args.journal, resume=args.resume, retries=args.retries,
                backoff=args.backoff, store=store, supervision=supervision,
            )
        except SweepWorkerError as exc:
            print(f"repro-beffio: {exc}", file=sys.stderr)
            if exc.worker_traceback:
                print(exc.worker_traceback, file=sys.stderr, end="")
            return EXIT_SWEEP_WORKER_FAILED
        for r in sweep.results:
            print(f"{r.nprocs:6d} procs  b_eff_io = {r.b_eff_io / MB:10.2f} MB/s"
                  f"{'' if r.validity.ok else '  [' + r.validity.state + ']'}")
        _print_poisoned(sweep.poisoned)
        _print_validity(sweep.validity)
        _print_cache(store, sweep.fresh, sweep.cached)
        print(f"system b_eff_io = {sweep.system_b_eff_io / MB:.2f} MB/s "
              f"(best partition: {sweep.best_partition} procs"
              f"{', official' if sweep.official else ''})")
        return EXIT_COMPLETED_DEGRADED if sweep.poisoned else 0
    if args.sanitize:
        result, status = _sanitized_run(
            lambda: spec.run_beffio(args.procs, config),
            lambda r: to_json(r, machine=args.machine),
        )
        if status:
            return status
    else:
        result = spec.run_beffio(args.procs, config)
    if args.json:
        write_json_atomic(args.json, to_json(result, machine=args.machine))
    _print_validity(result.validity)
    print(beffio_summary(result))
    if args.pattern_table:
        for method in ("write", "rewrite", "read"):
            print()
            print(beffio_pattern_table(result, method).render())
    return 0


def _resolve_scenarios(names: list[str]) -> dict:
    """``--scenario`` names as per-benchmark overrides.

    At most one communication and one I/O scenario may be named; each
    applies to its own benchmark's grid cells (the other benchmark
    keeps the paper's default workload).
    """
    from repro.scenarios import CommScenario, get_scenario

    overrides: dict = {}
    for name in names:
        try:
            scenario = get_scenario(name)
        except KeyError as exc:
            raise SystemExit(f"repro: {exc.args[0]}") from None
        benchmark = "b_eff" if isinstance(scenario, CommScenario) else "b_eff_io"
        if benchmark in overrides:
            raise SystemExit(
                f"repro: both {overrides[benchmark].name!r} and "
                f"{scenario.name!r} are {benchmark} scenarios; name one"
            )
        overrides[benchmark] = scenario
    return overrides


def _cmd_scenarios(args) -> int:
    """``repro scenarios list | show <name> | validate <file>``."""
    import json as _json

    from repro.scenarios import (
        SCENARIOS,
        CommScenario,
        ScenarioError,
        get_scenario,
        scenario_from_dict,
    )

    def kind_of(s) -> str:
        return "comm" if isinstance(s, CommScenario) else "io"

    if args.action == "list":
        for name in sorted(SCENARIOS):
            s = SCENARIOS[name]
            print(f"{name:18s} {kind_of(s):5s} {s.fingerprint()[:12]}  "
                  f"{s.description}")
        return 0
    if args.action == "show":
        try:
            s = get_scenario(args.name)
        except KeyError as exc:
            print(f"repro: {exc.args[0]}", file=sys.stderr)
            return 2
        print(f"name:        {s.name}")
        print(f"grammar:     {kind_of(s)}")
        print(f"fingerprint: {s.fingerprint()}")
        print(_json.dumps(s.to_dict(), indent=2, sort_keys=True))
        return 0
    # validate: parse a JSON grammar instance, run full validation
    try:
        with open(args.name, encoding="utf-8") as fh:
            payload = _json.load(fh)
        s = scenario_from_dict(payload)
    except (OSError, ValueError, ScenarioError) as exc:
        print(f"repro: invalid scenario: {exc}", file=sys.stderr)
        return 2
    print(f"ok: {kind_of(s)} scenario {s.name!r}, "
          f"fingerprint {s.fingerprint()}")
    return 0


def main_repro(argv: list[str] | None = None) -> int:
    """Grid front-end: ``repro sweep-grid`` runs a machine-zoo grid;
    ``repro scenarios`` inspects the declarative workload layer."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="grid-scale front-end over both benchmarks",
        epilog="exit codes: 0 success, 2 usage error, "
               f"{EXIT_SWEEP_WORKER_FAILED} grid cell failed after retries, "
               f"{EXIT_COMPLETED_DEGRADED} completed with quarantined cells",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    scen = sub.add_parser(
        "scenarios",
        help="inspect the declarative scenario grammar without running "
             "a benchmark",
    )
    scen.add_argument("action", choices=("list", "show", "validate"),
                      help="list registered scenarios, show one as JSON, "
                           "or validate a JSON grammar instance from a file")
    scen.add_argument("name", nargs="?",
                      help="scenario name (show) or JSON file path (validate)")
    grid = sub.add_parser(
        "sweep-grid",
        help="run a machine-zoo × benchmark × partitions grid with "
             "content-addressed caching and dynamic scheduling",
    )
    grid.add_argument(
        "--machines", default="all",
        help="comma-separated machine keys, or 'all' for the whole library "
             f"(known: {', '.join(sorted(MACHINES))})",
    )
    grid.add_argument(
        "--benchmarks", default="b_eff,b_eff_io",
        help="comma-separated subset of b_eff,b_eff_io (b_eff_io cells on "
             "machines without a parallel filesystem are skipped)",
    )
    grid.add_argument("--partitions", default="2,4", metavar="N,N,...",
                      help="partition sizes for every grid cell")
    grid.add_argument("--jobs", type=int, default=1,
                      help="worker processes (results are identical at any jobs)")
    grid.add_argument("--policy", choices=("dynamic", "static"), default="dynamic",
                      help="dynamic = longest-expected-first balancing; "
                           "static = contiguous jobs=N chunks (baseline)")
    grid.add_argument("--backend", choices=("des", "analytic"), default="analytic",
                      help="b_eff engine for the grid's cells")
    grid.add_argument("--T", type=float, default=2.0,
                      help="scheduled time for the b_eff_io cells")
    grid.add_argument("--types", default="0",
                      help="b_eff_io pattern types for the grid's cells")
    grid.add_argument("--scenario", action="append", default=[],
                      metavar="NAME",
                      help="declarative scenario to run instead of the paper "
                           "workload (repeatable: at most one comm and one io "
                           "scenario; see 'repro scenarios list')")
    grid.add_argument("--retries", type=int, default=0,
                      help="re-attempts per failed cell before giving up with "
                           f"exit code {EXIT_SWEEP_WORKER_FAILED}")
    grid.add_argument("--journal", metavar="DIR",
                      help="journal root: every cell is recorded into the "
                           "per-(benchmark, machine) sweep journal under it")
    grid.add_argument("--out", metavar="DIR",
                      help="write each cell's envelope as canonical JSON "
                           "under this directory, plus a grid.json summary")
    _supervision_args(grid)
    _cache_args(grid)
    args = parser.parse_args(argv)
    if args.command == "scenarios":
        if args.action in ("show", "validate") and not args.name:
            scen.error(f"'{args.action}' needs a name argument")
        return _cmd_scenarios(args)
    supervision = _supervision_of(args)

    from repro.runtime.scheduler import (
        CostModel,
        GridWorkerError,
        expand_grid,
        run_grid,
    )

    machines = sorted(MACHINES) if args.machines == "all" else args.machines.split(",")
    benchmarks = args.benchmarks.split(",")
    scenario_overrides = _resolve_scenarios(args.scenario)
    configs = {
        "b_eff": MeasurementConfig(backend=args.backend),
        "b_eff_io": BeffIOConfig(
            T=args.T, pattern_types=tuple(int(t) for t in args.types.split(","))
        ),
    }
    for benchmark, scenario in scenario_overrides.items():
        configs[benchmark] = dataclasses.replace(
            configs[benchmark], scenario=scenario
        )
    specs = expand_grid(
        machines,
        benchmarks,
        [int(n) for n in args.partitions.split(",")],
        configs={b: configs[b] for b in benchmarks},
    )
    store = _store_of(args)
    try:
        outcome = run_grid(
            specs,
            jobs=args.jobs,
            store=store,
            policy=args.policy,
            cost_model=CostModel.calibrate("benchmarks/results"),
            retries=args.retries,
            backoff=args.backoff,
            journal_root=args.journal,
            supervision=supervision,
        )
    except GridWorkerError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        if exc.worker_traceback:
            print(exc.worker_traceback, file=sys.stderr, end="")
        return EXIT_SWEEP_WORKER_FAILED
    for cell in outcome.cells:
        value = cell.envelope.values.get("b_eff", cell.envelope.values.get("b_eff_io"))
        shown = f"{value / MB:10.2f} MB/s" if value is not None else "?"
        print(f"{cell.spec.benchmark:9s} {cell.spec.machine:12s} "
              f"{cell.spec.nprocs:6d} procs  {shown}  [{cell.source}]")
    _print_poisoned(outcome.poisoned)
    _print_validity(outcome.validity)
    print(f"grid: {outcome.describe()}")
    if store is not None:
        print(f"cache: {store.stats.describe()}")
    if args.out:
        import json as _json
        import pathlib

        from repro.runtime.store import canonical_envelope_text

        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        cell_names = {}
        for cell in outcome.cells:
            name = (
                f"{cell.spec.benchmark}__{cell.spec.machine}"
                f"__{cell.spec.nprocs}.json"
            )
            cell_names[name] = cell.spec.fingerprint()
            write_json_atomic(
                out_dir / name, canonical_envelope_text(cell.envelope)
            )
        # content-only summary (no fresh/cached counters, no wall times)
        # so a resumed or cache-served run exports byte-identical trees
        summary = {
            "schema": 1,
            "cells": cell_names,
            "validity": outcome.validity.to_dict(),
            "poisoned": [record.to_export_dict() for record in outcome.poisoned],
        }
        write_json_atomic(
            out_dir / "grid.json",
            _json.dumps(summary, indent=2, sort_keys=True),
        )
        print(f"wrote {len(outcome.cells)} envelope(s) to {out_dir}")
    return EXIT_COMPLETED_DEGRADED if outcome.poisoned else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_beff())
