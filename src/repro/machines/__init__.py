"""Calibrated machine models for every system the paper evaluates.

Each :class:`~repro.machines.spec.MachineSpec` bundles a topology
factory, network cost constants, (optionally) an I/O-subsystem
configuration, and the published constants used for calibration
(memory per processor, R_max per processor for the balance factor).

Calibration sources are the paper's own numbers — Table 1 ping-pong
and per-process bandwidths, Sec. 5.2's filesystem descriptions (T3E:
10 striped RAID disks on a GigaRing, ~300 MB/s aggregate; IBM SP:
GPFS with 20 VSD servers, ~950 MB/s read / ~690 MB/s write peaks;
NEC SX-5: four striped RAID-3 arrays, a 2 GB filesystem cache and
4 MB cluster size).  We match *shapes*, not absolute values.

Beyond the paper's systems, the library carries a small modern zoo
(dragonfly, oversubscribed fat tree, clustered GPU nodes, a
burst-buffer PFS) for scenario-grammar what-if sweeps; their
constants are class-representative, not calibrated to published runs.
"""

from repro.machines.spec import MachineSpec
from repro.machines.library import (
    MACHINES,
    burst_buffer_pfs,
    cray_t3e_900,
    dragonfly_xc,
    fattree_oversubscribed,
    gpu_cluster,
    hitachi_sr2201,
    hitachi_sr8000,
    hp_v9000,
    ibm_sp_blue,
    nec_sx4,
    nec_sx5,
    sgi_cray_sv1,
    get_machine,
)

__all__ = [
    "MachineSpec",
    "MACHINES",
    "get_machine",
    "cray_t3e_900",
    "hitachi_sr8000",
    "hitachi_sr2201",
    "nec_sx5",
    "nec_sx4",
    "hp_v9000",
    "sgi_cray_sv1",
    "ibm_sp_blue",
    "dragonfly_xc",
    "fattree_oversubscribed",
    "gpu_cluster",
    "burst_buffer_pfs",
]
