"""MachineSpec: one simulated machine, ready to benchmark."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.beff.benchmark import BeffResult, run_beff
from repro.beff.measurement import MeasurementConfig
from repro.beffio.benchmark import BeffIOConfig, BeffIOResult, run_beffio
from repro.mpi.comm import World
from repro.net.model import Fabric, NetParams
from repro.pfs.filesystem import FileSystem, PFSConfig
from repro.sim.engine import Simulator
from repro.topology.base import Topology


@dataclass(frozen=True)
class MachineSpec:
    """A machine model: topology + network constants + I/O subsystem."""

    name: str
    #: memory per MPI process, bytes (drives L_max and M_PART)
    memory_per_proc: int
    #: C int width of the original system (the 128 MB L_max cap)
    int_bits: int
    #: Linpack R_max per processor, flops (balance factor, Fig. 1);
    #: None when the paper gives no basis for an estimate
    rmax_per_proc: float | None
    #: builds the interconnect for a given process count
    make_topology: Callable[[int], Topology]
    net: NetParams
    #: I/O subsystem; None for machines the paper only ran b_eff on
    pfs: PFSConfig | None = None
    #: the process counts the paper reports for this machine
    procs_choices: tuple[int, ...] = ()
    notes: str = ""

    # -- factories -----------------------------------------------------------

    def fabric_factory(self, nprocs: int) -> Callable[[], Fabric]:
        """A zero-arg factory building a fresh fabric (own simulator)."""
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")

        def make() -> Fabric:
            sim = Simulator()
            return Fabric(sim, self.make_topology(nprocs), self.net)

        return make

    def io_env_factory(self, nprocs: int) -> Callable[[], tuple[World, FileSystem]]:
        """A zero-arg factory building (World, FileSystem) sharing one sim."""
        if self.pfs is None:
            raise ValueError(f"{self.name} has no I/O subsystem configured")
        fabric_factory = self.fabric_factory(nprocs)

        def make() -> tuple[World, FileSystem]:
            fabric = fabric_factory()
            world = World(fabric)
            fs = FileSystem(fabric.sim, self.pfs)
            return world, fs

        return make

    # -- convenience runners ---------------------------------------------------

    def run_beff(self, nprocs: int, config: MeasurementConfig | None = None) -> BeffResult:
        """b_eff on this machine with ``nprocs`` processes."""
        return run_beff(
            self.fabric_factory(nprocs),
            self.memory_per_proc,
            config,
            int_bits=self.int_bits,
        )

    def run_beffio(self, nprocs: int, config: BeffIOConfig | None = None) -> BeffIOResult:
        """One b_eff_io partition on this machine."""
        return run_beffio(
            self.io_env_factory(nprocs),
            self.memory_per_proc,
            config,
        )

    def rmax(self, nprocs: int) -> float:
        """System R_max for ``nprocs`` processors, flops."""
        if self.rmax_per_proc is None:
            raise ValueError(f"no R_max estimate for {self.name}")
        return self.rmax_per_proc * nprocs
