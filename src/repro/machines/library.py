"""The paper's machines, calibrated from its published numbers.

Calibration cheat-sheet (all from the paper unless noted):

Cray T3E/900-512 — 3-D torus, 128 MB/PE (L_max = 1 MB), ping-pong
    ~330 MB/s, ring-pattern per-PE ~193-210 MB/s (=> a ~420 MB/s
    combined per-node injection+ejection budget), random patterns
    clearly below rings (torus hop contention).  R_max/PE ~0.47 GF
    (TOP500 Nov 2000: 447 GF for 512 PEs was the 1200-PE entry;
    the 900-series entry scales to ~0.47 GF/PE).
Hitachi SR 8000 — 8-way SMP nodes on an inter-node network;
    sequential placement ping-pong 954 MB/s (shared-memory copy),
    round-robin 741-776 MB/s (NIC); ring per-proc 400 (sequential,
    memory-bus bound) vs 105-110 (round-robin, NIC bound / 8 procs).
Hitachi SR 2201 — 16 PEs, L_max 2 MB, ring per-PE ~96 MB/s.
NEC SX-5/8B — 4-CPU shared-memory vector node: ring per-proc at
    L_max ~8.76 GB/s => ~17.5 GB/s copy bandwidth per CPU (halved by
    the shared-memory MPI buffering).
NEC SX-4/32 — ring per-proc ~3.55 GB/s; 16-CPU aggregate backplane
    ~51 GB/s (b_eff at L_max 50250 MB/s).
HP-V 9000 — ring per-proc ~162 MB/s.
SGI Cray SV1 — ping-pong 994 MB/s, ring per-proc ~375 MB/s at 15
    CPUs => ~5.6 GB/s shared backplane.
IBM SP "Blue Pacific" — 4-way 332 MHz SMP nodes, SP switch; GPFS
    with 20 VSD servers (~950 MB/s read / ~690 MB/s write peak).
T3E I/O — tmp filesystem, 10 striped RAID disks on a GigaRing,
    ~300 MB/s aggregate hardware peak; I/O is a global resource
    (b_eff_io flat in the partition size, max near 32 PEs).
NEC SX-5 I/O — 4 striped RAID-3 arrays on fibre channel; SFS with
    4 MB cluster size and a 2 GB filesystem cache.
"""

from __future__ import annotations

import difflib

from repro.machines.spec import MachineSpec
from repro.net.model import NetParams
from repro.pfs.filesystem import PFSConfig
from repro.topology.clustered import ClusteredSMP
from repro.topology.crossbar import Crossbar
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus, balanced_dims
from repro.util import GB, KB, MB


def _torus_factory(link_bw: float, nic_bw: float, ndims: int = 3,
                   node_bw: float | None = None):
    def make(nprocs: int):
        return Torus(
            balanced_dims(nprocs, ndims),
            link_bw=link_bw,
            nic_bw=nic_bw,
            node_bw=node_bw,
        )

    return make


def cray_t3e_900() -> MachineSpec:
    """Cray T3E/900: one PE per node on a 3-D torus."""
    return MachineSpec(
        name="Cray T3E/900",
        memory_per_proc=128 * MB,  # L_max = 1 MB (Table 1)
        int_bits=64,
        rmax_per_proc=0.47e9,
        make_topology=_torus_factory(
            link_bw=330 * MB, nic_bw=400 * MB, node_bw=420 * MB
        ),
        net=NetParams(
            latency=14e-6,
            per_hop_latency=0.3e-6,
            intra_node_latency=14e-6,
            eager_threshold=4 * KB,
            rendezvous_latency=8e-6,
            msg_rate_cap=330 * MB,  # the paper's asymptotic ping-pong
        ),
        pfs=PFSConfig(
            num_servers=10,  # 10 striped RAID disks on the GigaRing
            stripe_unit=64 * KB,
            disk_bw=30 * MB,  # ~300 MB/s aggregate hardware peak
            ingest_bw=400 * MB,
            seek_time=6e-3,
            request_overhead=2e-4,
            disk_block=16 * KB,
            cache_bytes=2 * GB,
            client_bw=100 * MB,
            # the GigaRing is the shared global resource: ~320 MB/s
            # aggregate into the I/O servers, independent of partition size
            server_net_bw=32 * MB,
            call_overhead=8e-5,
            unaligned_penalty=2.5e-3,  # T3E's huge wellformed/+8 gap
        ),
        procs_choices=(2, 24, 64, 128, 256, 512),
        notes="distributed memory; rings map to torus neighbors",
    )


def hitachi_sr8000(placement: str = "round-robin") -> MachineSpec:
    """Hitachi SR 8000: 8-way SMP nodes; placement matters (Table 1)."""

    def make(nprocs: int):
        if nprocs % 8 == 0:
            nodes = nprocs // 8
            per_node = 8
        else:
            nodes = 1
            per_node = nprocs
        return ClusteredSMP(
            max(nodes, 1),
            per_node,
            membus_bw=3.3 * GB,
            nic_bw=850 * MB,
            port_bw=2.2 * GB,
            placement=placement,
        )

    return MachineSpec(
        name=f"Hitachi SR 8000 ({placement})",
        memory_per_proc=1 * GB,  # L_max = 8 MB (Table 1)
        int_bits=64,
        rmax_per_proc=0.93e9,
        make_topology=make,
        net=NetParams(
            latency=18e-6,
            intra_node_latency=6e-6,
            eager_threshold=8 * KB,
            rendezvous_latency=10e-6,
            copy_bw=1.91 * GB,  # sequential ping-pong ~954 MB/s = copy/2
            msg_rate_cap=780 * MB,  # round-robin ping-pong
        ),
        pfs=PFSConfig(
            num_servers=8,
            stripe_unit=256 * KB,
            disk_bw=45 * MB,
            ingest_bw=900 * MB,
            seek_time=5e-3,
            request_overhead=1.5e-4,
            disk_block=16 * KB,
            cache_bytes=1 * GB,
            client_bw=90 * MB,
            server_net_bw=180 * MB,
            call_overhead=6e-5,
            unaligned_penalty=1e-3,
        ),
        procs_choices=(24, 128),
        notes="cluster of 8-way SMP nodes; sequential vs round-robin numbering",
    )


def hitachi_sr2201() -> MachineSpec:
    """Hitachi SR 2201: older MPP, 2-D crossbar-ish network."""
    return MachineSpec(
        name="Hitachi SR 2201",
        memory_per_proc=256 * MB,  # L_max = 2 MB
        int_bits=32,
        rmax_per_proc=0.23e9,
        make_topology=_torus_factory(link_bw=300 * MB, nic_bw=105 * MB, ndims=2),
        net=NetParams(
            latency=30e-6,
            per_hop_latency=0.5e-6,
            intra_node_latency=30e-6,
            eager_threshold=4 * KB,
            rendezvous_latency=15e-6,
            msg_rate_cap=280 * MB,
        ),
        procs_choices=(16,),
    )


def nec_sx5() -> MachineSpec:
    """NEC SX-5/8B: shared-memory vector node (4 CPUs measured)."""
    return MachineSpec(
        name="NEC SX-5/8B",
        memory_per_proc=256 * MB,  # L_max = 2 MB
        int_bits=64,
        rmax_per_proc=7.2e9,
        make_topology=lambda n: Crossbar(n, port_bw=8.76 * GB, backplane_bw=64 * GB),
        net=NetParams(
            latency=6e-6,
            intra_node_latency=6e-6,
            eager_threshold=32 * KB,
            rendezvous_latency=4e-6,
            copy_bw=17.5 * GB,  # ring per-proc ~8.76 GB/s = copy/2
        ),
        pfs=PFSConfig(
            num_servers=4,  # 4 striped RAID-3 arrays (DS 1200)
            stripe_unit=4 * MB,  # SFS cluster size
            disk_bw=90 * MB,
            ingest_bw=2 * GB,
            seek_time=4e-3,
            request_overhead=1e-4,
            disk_block=64 * KB,
            cache_bytes=2 * GB,  # the 2 GB filesystem cache
            client_bw=500 * MB,
            server_net_bw=250 * MB,
            call_overhead=5e-5,
            unaligned_penalty=4e-4,
        ),
        procs_choices=(4,),
        notes="shared-memory; b_eff reflects half the copy bandwidth",
    )


def nec_sx4() -> MachineSpec:
    """NEC SX-4/32 (4, 8, 16 CPUs measured)."""
    return MachineSpec(
        name="NEC SX-4/32",
        memory_per_proc=256 * MB,
        int_bits=64,
        rmax_per_proc=1.8e9,
        make_topology=lambda n: Crossbar(n, port_bw=3.56 * GB, backplane_bw=50.5 * GB),
        net=NetParams(
            latency=8e-6,
            intra_node_latency=8e-6,
            eager_threshold=32 * KB,
            rendezvous_latency=5e-6,
            copy_bw=7.1 * GB,  # ring per-proc ~3.55 GB/s = copy/2
        ),
        procs_choices=(4, 8, 16),
    )


def hp_v9000() -> MachineSpec:
    """HP-V 9000 (7 CPUs measured)."""
    return MachineSpec(
        name="HP-V 9000",
        memory_per_proc=1 * GB,  # L_max = 8 MB
        int_bits=64,
        rmax_per_proc=0.72e9,
        make_topology=lambda n: Crossbar(n, port_bw=162 * MB, backplane_bw=2.5 * GB),
        net=NetParams(
            latency=12e-6,
            intra_node_latency=12e-6,
            eager_threshold=8 * KB,
            rendezvous_latency=8e-6,
            copy_bw=324 * MB,  # ring per-proc ~162 MB/s = copy/2
        ),
        procs_choices=(7,),
    )


def sgi_cray_sv1() -> MachineSpec:
    """SGI Cray SV1-B/16-8 (15 CPUs measured)."""
    return MachineSpec(
        name="SGI Cray SV1",
        memory_per_proc=512 * MB,  # L_max = 4 MB
        int_bits=64,
        rmax_per_proc=1.0e9,
        make_topology=lambda n: Crossbar(n, port_bw=4 * GB, backplane_bw=5.6 * GB),
        net=NetParams(
            latency=10e-6,
            intra_node_latency=10e-6,
            eager_threshold=16 * KB,
            rendezvous_latency=6e-6,
            copy_bw=1.99 * GB,  # ping-pong 994 MB/s = copy/2
        ),
        procs_choices=(15,),
    )


def ibm_sp_blue() -> MachineSpec:
    """IBM RS 6000/SP "Blue Pacific": GPFS benchmarks used one I/O
    process per 4-way SMP node, so the model is one process per node
    on the SP switch."""
    return MachineSpec(
        name="IBM SP (Blue Pacific)",
        memory_per_proc=1536 * MB,  # ~1.5 GB per node -> M_PART = 12 MB
        int_bits=32,
        rmax_per_proc=1.0e9,  # 4 x 332 MHz PowerPC 604e per node
        make_topology=lambda n: ClusteredSMP(
            n, 1, membus_bw=1.3 * GB, nic_bw=150 * MB, port_bw=1.3 * GB
        ),
        net=NetParams(
            latency=22e-6,
            intra_node_latency=8e-6,
            eager_threshold=8 * KB,
            rendezvous_latency=12e-6,
            copy_bw=1.0 * GB,
            msg_rate_cap=140 * MB,
        ),
        pfs=PFSConfig(
            num_servers=20,  # 20 VSD servers
            stripe_unit=256 * KB,  # GPFS block size
            disk_bw=40 * MB,  # ~690-950 MB/s aggregate peak
            ingest_bw=500 * MB,
            seek_time=5e-3,
            request_overhead=2.5e-4,
            disk_block=256 * KB,
            cache_bytes=1 * GB,
            client_bw=35 * MB,  # per-node I/O injection: scales w/ nodes
            server_net_bw=60 * MB,
            call_overhead=1e-4,
            unaligned_penalty=1.5e-3,
        ),
        procs_choices=(4, 16, 64, 128),
        notes="I/O bandwidth tracks the number of nodes until it saturates",
    )


# ---------------------------------------------------------------------------
# the modern zoo: machine shapes the 2001 paper could not include,
# here for scenario-grammar what-if sweeps rather than calibration.
# Constants are representative of the respective system classes
# (vendor datasheet ballpark), not reproductions of published runs.
# ---------------------------------------------------------------------------


def dragonfly_xc() -> MachineSpec:
    """Cray XC-style dragonfly: 4 hosts/router, 8 routers/group,
    global links tapered to a quarter of a group's local capacity."""
    return MachineSpec(
        name="Dragonfly (XC-style)",
        memory_per_proc=4 * GB,  # M_PART = 32 MB
        int_bits=64,
        rmax_per_proc=1.2e12,
        make_topology=lambda n: Dragonfly(
            n,
            hosts_per_router=4,
            routers_per_group=8,
            host_bw=10 * GB,
            local_bw=25 * GB,
            global_bw=50 * GB,  # vs 8 * 25 GB/s local: a 4x taper
        ),
        net=NetParams(
            latency=1.5e-6,
            per_hop_latency=0.3e-6,
            intra_node_latency=1.5e-6,
            eager_threshold=16 * KB,
            rendezvous_latency=1e-6,
            msg_rate_cap=10 * GB,
        ),
        pfs=PFSConfig(
            num_servers=16,  # Lustre-style OSTs
            stripe_unit=1 * MB,
            disk_bw=500 * MB,
            ingest_bw=5 * GB,
            seek_time=8e-3,
            request_overhead=5e-5,
            disk_block=64 * KB,
            cache_bytes=8 * GB,
            client_bw=2 * GB,
            server_net_bw=2 * GB,
            call_overhead=2e-5,
            unaligned_penalty=2e-4,
        ),
        procs_choices=(16, 64, 256),
        notes="hierarchical: router < group < global taper; placement-sensitive",
    )


def fattree_oversubscribed() -> MachineSpec:
    """Commodity cluster on a 2:1 oversubscribed two-level fat tree —
    the ablation partner for the fully-provisioned tree baked into
    :class:`~repro.topology.fattree.FatTree`."""
    return MachineSpec(
        name="Fat tree (2:1 oversubscribed)",
        memory_per_proc=2 * GB,  # M_PART = 16 MB
        int_bits=64,
        rmax_per_proc=0.5e12,
        make_topology=lambda n: FatTree(
            n, radix=8, downlink_bw=12.5 * GB, oversubscription=2.0
        ),
        net=NetParams(
            latency=2e-6,
            per_hop_latency=0.5e-6,
            intra_node_latency=2e-6,
            eager_threshold=16 * KB,
            rendezvous_latency=1.5e-6,
            msg_rate_cap=12.5 * GB,
        ),
        procs_choices=(16, 64),
        notes="cross-switch traffic sees half the injection bandwidth",
    )


def gpu_cluster() -> MachineSpec:
    """Clustered GPU nodes: 4 accelerators per node behind a fat
    intra-node interconnect (NVLink-class memory bus), one
    HDR-class NIC pair per node — the modern extreme of the SR 8000's
    inside/outside bandwidth gap."""
    return MachineSpec(
        name="GPU cluster (4-way nodes)",
        memory_per_proc=16 * GB,  # M_PART = 128 MB
        int_bits=64,
        rmax_per_proc=20e12,
        make_topology=lambda n: ClusteredSMP(
            max(n // 4, 1),
            4 if n % 4 == 0 and n >= 4 else n,
            membus_bw=300 * GB,
            nic_bw=25 * GB,
            port_bw=100 * GB,
            placement="sequential",
        ),
        net=NetParams(
            latency=4e-6,
            intra_node_latency=1e-6,
            eager_threshold=32 * KB,
            rendezvous_latency=2e-6,
            copy_bw=600 * GB,
            msg_rate_cap=25 * GB,
        ),
        procs_choices=(8, 32),
        notes="balance probe: enormous R_max against one NIC per 4 ranks",
    )


def burst_buffer_pfs() -> MachineSpec:
    """Two-tier I/O: an NVMe burst buffer absorbing bursts at memory
    speed in front of modest spinning-disk backing stores.  The tiers
    map onto the PFS model's cache: a burst fits ``cache_bytes`` and
    is acknowledged at ``ingest_bw``; the background drain to
    ``disk_bw`` (throttled by ``drain_delay``) is what a b_eff_io
    rewrite pass eventually waits for."""
    return MachineSpec(
        name="Burst-buffer PFS cluster",
        memory_per_proc=2 * GB,  # M_PART = 16 MB
        int_bits=64,
        rmax_per_proc=1.0e12,
        make_topology=lambda n: FatTree(n, radix=16, downlink_bw=12.5 * GB),
        net=NetParams(
            latency=2e-6,
            per_hop_latency=0.4e-6,
            intra_node_latency=2e-6,
            eager_threshold=16 * KB,
            rendezvous_latency=1.5e-6,
            msg_rate_cap=12.5 * GB,
        ),
        pfs=PFSConfig(
            num_servers=8,
            stripe_unit=1 * MB,
            disk_bw=150 * MB,  # the thin backing tier
            ingest_bw=8 * GB,  # NVMe absorb rate
            seek_time=6e-3,
            request_overhead=4e-5,
            disk_block=64 * KB,
            cache_bytes=64 * GB,  # the burst-buffer tier itself
            client_bw=4 * GB,
            server_net_bw=4 * GB,
            call_overhead=2e-5,
            drain_delay=0.2,  # writeback waits out the burst
            unaligned_penalty=1e-4,
        ),
        procs_choices=(8, 32),
        notes="write bursts land at NVMe speed; sustained rates drain at disk speed",
    )


MACHINES = {
    "t3e": cray_t3e_900,
    "sr8000": hitachi_sr8000,
    "sr8000-seq": lambda: hitachi_sr8000("sequential"),
    "sr2201": hitachi_sr2201,
    "sx5": nec_sx5,
    "sx4": nec_sx4,
    "hpv": hp_v9000,
    "sv1": sgi_cray_sv1,
    "sp": ibm_sp_blue,
    "dragonfly": dragonfly_xc,
    "fattree-2to1": fattree_oversubscribed,
    "gpucluster": gpu_cluster,
    "bbpfs": burst_buffer_pfs,
}


def get_machine(key: str) -> MachineSpec:
    """Look up a machine by its short key (see ``MACHINES``).

    An unknown key raises a KeyError that lists every available key
    and, when the name is a near miss ("dragonfIy", "se8000"),
    suggests the closest one.
    """
    try:
        return MACHINES[key]()
    except KeyError:
        close = difflib.get_close_matches(key, MACHINES, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise KeyError(
            f"unknown machine {key!r}; available: {sorted(MACHINES)}{hint}"
        ) from None
