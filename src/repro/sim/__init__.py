"""Deterministic discrete-event simulation kernel.

Everything in the reproduction runs on this kernel: simulated MPI
ranks are generator coroutines scheduled here, message transfers are
flows in the max-min fair fluid network, and the parallel filesystem's
disks and servers are event-driven resources.

The kernel is intentionally small and dependency-free:

* :class:`~repro.sim.engine.Simulator` — the event heap and virtual clock.
* :class:`~repro.sim.process.Process` / primitives ``Sleep`` and
  :class:`~repro.sim.process.SimEvent` — cooperative processes.
* :class:`~repro.sim.fluid.FlowNetwork` — bandwidth sharing among
  concurrent transfers with progressive-filling max-min fairness.
"""

from repro.sim.engine import Simulator, DeadlockError, EventBudgetError
from repro.sim.process import Process, SimEvent, Sleep, SleepUntil, Tail, on_trigger, wait_all
from repro.sim.fluid import FlowNetwork, Flow, Link, maxmin_allocate
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "DeadlockError",
    "EventBudgetError",
    "Process",
    "SimEvent",
    "Sleep",
    "SleepUntil",
    "Tail",
    "on_trigger",
    "wait_all",
    "FlowNetwork",
    "Flow",
    "Link",
    "maxmin_allocate",
    "TraceEvent",
    "Tracer",
]
