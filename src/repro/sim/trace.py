"""Optional event tracing for debugging and workload analysis.

Attach a :class:`Tracer` to a :class:`repro.net.Fabric` and/or a
:class:`repro.pfs.FileSystem` to capture every message transfer and
filesystem call with its virtual timestamp.  Tracing is off unless an
object is passed explicitly, so the hot paths stay observer-free by
default.

Typical uses: verifying that a benchmark produces the traffic its
definition promises (message counts per pattern), building
communication matrices, and explaining timing anomalies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str  # "msg" | "io-write" | "io-read"
    src: object  # sender rank / client id
    dst: object  # receiver rank / None for I/O
    nbytes: int


class Tracer:
    """Bounded event recorder with simple aggregations."""

    __slots__ = ("limit", "events", "dropped")

    def __init__(self, limit: int | None = 100_000) -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 or None")
        self.limit = limit
        self.events: list[TraceEvent] = []
        #: events seen beyond the storage limit (still counted)
        self.dropped = 0

    def record(self, time: float, kind: str, src: object, dst: object,
               nbytes: int) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, kind, src, dst, nbytes))

    # -- aggregations -------------------------------------------------------

    def count(self, kind: str | None = None) -> int:
        """Recorded events, optionally of one kind (plus dropped ones)."""
        if kind is None:
            return len(self.events) + self.dropped
        return sum(1 for e in self.events if e.kind == kind)

    def bytes_moved(self, kind: str | None = None) -> int:
        return sum(e.nbytes for e in self.events if kind is None or e.kind == kind)

    def message_matrix(self) -> dict[tuple[object, object], int]:
        """(src, dst) -> message count for the "msg" events."""
        counts: Counter = Counter()
        for e in self.events:
            if e.kind == "msg":
                counts[(e.src, e.dst)] += 1
        return dict(counts)

    def summary(self) -> str:
        kinds = Counter(e.kind for e in self.events)
        lines = [f"{len(self.events)} events recorded"
                 + (f" ({self.dropped} dropped)" if self.dropped else "")]
        for kind, n in sorted(kinds.items()):
            lines.append(f"  {kind:9s} {n:8d} events, "
                         f"{self.bytes_moved(kind):12d} bytes")
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
