"""Vectorized progressive-filling max-min solver (CSR incidence).

# repro-lint: hot-kernel

This is the large-component / large-round allocation kernel: the same
progressive-filling algorithm as :func:`repro.sim.fluid.maxmin_allocate`
(the retained reference oracle), evaluated with whole-array numpy
operations over a link×flow incidence in CSR form so a 65k-rank round
costs a handful of array passes instead of a Python scan per
saturation round.

Bit-identity argument
---------------------
The kernel reproduces the oracle's rates ``float.hex``-exactly, not
approximately.  Per saturation round the oracle computes

* ``share = residual[l] / count[l]`` per link and the minimum share —
  elementwise IEEE-754 float64 division and an exact minimum, both of
  which numpy evaluates with the identical operations (no fast-math,
  no reassociation);
* a saturation scan ``residual[l]/count <= bottleneck * (1 + 1e-12)``
  over links **in first-touch order with live counts**: fixing the
  members of an earlier saturated link shrinks a later link's count,
  which *raises* its share (the residual is frozen during the scan),
  so a later tie candidate can drop back out.  Counts only shrink, so
  the set of links saturated under *frozen* counts is a superset of
  the truly saturated ones: the kernel computes that candidate set
  with one vectorized pass and replays only those few links
  sequentially, recomputing the live count per link — the exact
  divisions the oracle performs, in the exact order.
* per newly-fixed flow, ``residual[l] = max(0.0, residual[l] - b)``
  for every link on its route.  Every subtraction of a round uses the
  *same* ``b``, so a link's residual after the round depends only on
  the **count** of subtractions applied to it (the clamp makes the
  identical op idempotent at zero), not on the flow order.  The kernel
  therefore applies ``max(0.0, residual - b)`` whole-array once per
  multiplicity level — the same number of identical operations per
  link, in a different (irrelevant) order across links.

``FlowNetwork._solve_component`` — the incremental engine's in-place
variant and the second oracle this kernel replaces — differs from the
pure function in exactly one way: its saturation scan tests the
*frozen* per-round counts (the live decrements happen after the
scan).  ``tie_counts="frozen"`` reproduces that semantics; the default
``"live"`` matches :func:`maxmin_allocate`.  Summation never occurs
on the float path (member counts are integer ``bincount``\\ s), so
there is no accumulation-order hazard at all.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]
BoolArray = NDArray[np.bool_]

_NEVER = 1 << 62


class RouteIncidence:
    """Link×flow incidence of a set of routes, in CSR form.

    Built once (per memoised round model, or per solved component) and
    reused across solver invocations: the arrays are the *structure*;
    capacities and active-flow subsets vary per call.  Duplicate link
    ids within a route are preserved — the oracles count them with
    multiplicity, so the kernel must too.
    """

    __slots__ = (
        "n_flows",
        "n_links",
        "link_ids",
        "flow_cols",
        "flow_rows",
        "flow_ptr",
        "link_ptr",
        "link_rows",
        "empty",
        "has_duplicate_pairs",
    )

    def __init__(
        self,
        routes: Sequence[tuple[int, ...]],
        link_ids: Sequence[int] | None = None,
    ) -> None:
        #: column order: caller-supplied link universe, or first-touch
        if link_ids is None:
            seen: dict[int, None] = {}
            for route in routes:
                for link in route:
                    if link not in seen:
                        seen[link] = None
            link_ids = list(seen)
        self.link_ids: list[int] = list(link_ids)
        col_of = {link: col for col, link in enumerate(self.link_ids)}
        self.n_flows = len(routes)
        self.n_links = len(self.link_ids)
        lengths = np.asarray([len(route) for route in routes], dtype=np.int64)
        #: dense column per incidence entry, flows concatenated in order
        self.flow_cols: IntArray = np.asarray(
            [col_of[link] for route in routes for link in route], dtype=np.int64
        )
        #: row (flow) index per incidence entry, aligned with flow_cols
        self.flow_rows: IntArray = np.repeat(
            np.arange(self.n_flows, dtype=np.int64), lengths
        )
        #: flow -> its slice of flow_cols (CSR over rows, route order)
        fptr = np.zeros(self.n_flows + 1, dtype=np.int64)
        np.cumsum(lengths, out=fptr[1:])
        self.flow_ptr: IntArray = fptr
        #: link -> member flow indices (CSR over columns, dups preserved)
        order = np.argsort(self.flow_cols, kind="stable")
        self.link_rows: IntArray = self.flow_rows[order]
        ptr = np.zeros(self.n_links + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.flow_cols, minlength=self.n_links), out=ptr[1:])
        self.link_ptr: IntArray = ptr
        #: flows with no links (rate = inf, excluded from filling)
        self.empty: BoolArray = lengths == 0
        #: True when some route crosses the same link twice; per-link
        #: aggregate helpers that must count each flow once cannot be
        #: used on such structures (the solver itself handles dups fine)
        if len(self.link_rows) > 1:
            cols_sorted = self.flow_cols[order]
            self.has_duplicate_pairs = bool(
                np.any(
                    (cols_sorted[1:] == cols_sorted[:-1])
                    & (self.link_rows[1:] == self.link_rows[:-1])
                )
            )
        else:
            self.has_duplicate_pairs = False

    def link_totals(self, per_flow: FloatArray) -> FloatArray:
        """Per-link sums of a per-flow quantity (e.g. allocated rates).

        Accumulates in incidence order — flow-major, so within each
        link the same ascending-flow order a Python loop over the
        member table uses; ``np.bincount`` adds sequentially, making
        the float sums bit-identical to that loop.  Only valid when
        :attr:`has_duplicate_pairs` is False.
        """
        return np.bincount(
            self.flow_cols, weights=per_flow[self.flow_rows], minlength=self.n_links
        )

    def solve(
        self,
        capacities: FloatArray,
        active: BoolArray | None = None,
        tie_counts: str = "live",
    ) -> FloatArray:
        """Max-min rates, bit-identical to the selected reference oracle.

        ``capacities`` is indexed by column (aligned with
        :attr:`link_ids`).  ``active`` restricts the computation to a
        flow subset — exactly as if the oracle were called on the
        sub-list — with inactive flows reported at rate 0.0 (callers
        ignore those slots).  ``tie_counts`` selects the saturation-scan
        semantics: ``"live"`` for :func:`~repro.sim.fluid.maxmin_allocate`
        (counts shrink as the scan fixes flows), ``"frozen"`` for
        ``FlowNetwork._solve_component`` (the scan tests the counts
        captured at round start).
        """
        if tie_counts not in ("live", "frozen"):
            raise ValueError(f"unknown tie_counts {tie_counts!r}")
        n_flows, n_links = self.n_flows, self.n_links
        rates = np.zeros(n_flows, dtype=np.float64)
        if active is None:
            unfixed = ~self.empty
        else:
            unfixed = active & ~self.empty
            rates[active & self.empty] = math.inf
        if active is None:
            rates[self.empty] = math.inf
        if n_links == 0 or not bool(unfixed.any()):
            return rates

        rows, cols = self.flow_rows, self.flow_cols
        residual = capacities.astype(np.float64, copy=True)
        counts: IntArray = np.bincount(cols[unfixed[rows]], minlength=n_links)
        scan_rank = self._scan_rank(unfixed) if tie_counts == "live" else None
        shares = np.empty(n_links, dtype=np.float64)
        while True:
            in_play = counts > 0
            if not bool(in_play.any()):  # pragma: no cover - defensive
                rates[unfixed] = math.inf
                break
            shares.fill(math.inf)
            np.divide(residual, counts, out=shares, where=in_play)
            bottleneck = float(shares.min())
            if math.isinf(bottleneck):  # pragma: no cover - defensive
                rates[unfixed] = math.inf
                break
            tol = bottleneck * (1.0 + 1e-12)
            candidates = in_play & (shares <= tol)
            if scan_rank is None:
                # frozen-count semantics: every candidate saturates
                touch = np.zeros(n_flows, dtype=bool)
                touch[rows[candidates[cols]]] = True
                newly = touch & unfixed
            else:
                newly = self._live_scan(candidates, unfixed, residual, tol, scan_rank)
            rates[newly] = bottleneck
            # per-link subtraction multiplicity: how many times the
            # oracle's per-flow loop hits each link this round
            mult: IntArray = np.bincount(cols[newly[rows]], minlength=n_links)
            counts = counts - mult
            pending = mult > 0
            while bool(pending.any()):
                residual[pending] = np.maximum(0.0, residual[pending] - bottleneck)
                mult[pending] -= 1
                pending = mult > 0
            unfixed &= ~newly
            if not bool(unfixed.any()):
                break
        return rates

    def _scan_rank(self, unfixed: BoolArray) -> IntArray:
        """Per-column scan position: first touch over the active flows.

        The oracle's saturation scan walks ``link_members`` in dict
        insertion order — the order links are first seen while
        enumerating the (active) routes.  Restricting to the active
        flows matters: the oracle is invoked on the sub-list, so its
        insertion order is the sub-list's.
        """
        vals = self.flow_cols[unfixed[self.flow_rows]]
        uniq, first = np.unique(vals, return_index=True)
        rank = np.full(self.n_links, _NEVER, dtype=np.int64)
        rank[uniq] = first
        return rank

    def _live_scan(
        self,
        candidates: BoolArray,
        unfixed: BoolArray,
        residual: FloatArray,
        tol: float,
        scan_rank: IntArray,
    ) -> BoolArray:
        """The oracle's sequential saturation scan over the candidates.

        Counts only shrink while the scan fixes flows, so shares only
        grow: links outside the frozen-count candidate set can never
        saturate mid-round, and the scan needs to replay *only* the
        candidates (usually a handful), in first-touch order, testing
        the live count exactly as the oracle does.
        """
        before = unfixed.copy()
        cand_cols = np.nonzero(candidates)[0]
        if len(cand_cols) > 1:
            cand_cols = cand_cols[np.argsort(scan_rank[cand_cols], kind="stable")]
        ptr, link_rows = self.link_ptr, self.link_rows
        for col in cand_cols.tolist():
            members = link_rows[ptr[col]:ptr[col + 1]]
            live = int(np.count_nonzero(unfixed[members]))
            if live == 0:
                continue
            if float(residual[col]) / live <= tol:
                unfixed[members] = False
        newly = before & ~unfixed
        # the caller subtracts via `unfixed &= ~newly`; restore here so
        # that update sees the pre-scan mask it expects
        unfixed |= before
        return newly


def maxmin_allocate_vec(
    capacities: dict[int, float],
    routes: list[tuple[int, ...]],
) -> list[float]:
    """Drop-in vectorized equivalent of ``fluid.maxmin_allocate``.

    Builds the incidence, solves, and returns plain Python floats.
    Exists mostly as the oracle-pinning surface for the property tests;
    hot paths build a :class:`RouteIncidence` once and call
    :meth:`RouteIncidence.solve` with varying capacities.
    """
    inc = RouteIncidence(routes)
    caps = np.asarray(
        [capacities[link] for link in inc.link_ids], dtype=np.float64
    )
    out: list[float] = inc.solve(caps).tolist()
    return out
