"""Cooperative processes on top of the event engine.

A simulated program is a Python generator.  It performs blocking
simulated operations by yielding *primitives*:

* ``Sleep(duration)`` — advance virtual time.
* ``Tail()`` — park until the tail of the current instant: every
  ordinary event at the current timestamp runs first.
* :class:`SimEvent` — park until someone calls :meth:`SimEvent.trigger`;
  the trigger value becomes the result of the ``yield``.

Higher layers (MPI calls, filesystem requests) are themselves
generators that the user code delegates to with ``yield from``, so the
kernel only ever sees the two primitives.  This is the SimPy execution
model re-implemented in ~100 lines, with strictly deterministic
scheduling (FIFO resumption via the engine's sequence numbers).
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable
from dataclasses import dataclass

from repro.sim.engine import Simulator


@dataclass(frozen=True, slots=True)
class Sleep:
    """Primitive: suspend the yielding process for ``duration`` seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative sleep duration: {self.duration!r}")


@dataclass(frozen=True, slots=True)
class Tail:
    """Primitive: suspend until the tail of the current instant.

    The process resumes at the same virtual time, after every ordinary
    event scheduled for this instant — including zero-delay events
    those handlers add (see :meth:`Simulator.schedule_tail`).  Service
    loops yield this before consuming a request queue so that the set
    of same-instant arrivals is complete, and their *content* — not
    the scheduler's tie-breaking — decides service order.
    """


@dataclass(frozen=True, slots=True)
class SleepUntil:
    """Primitive: suspend until *exactly* absolute virtual ``time``.

    Dispatches through :meth:`Simulator.schedule_abs`, so the process
    resumes at the given float verbatim rather than at
    ``now + (time - now)`` — the bit-exact landing the b_eff_io
    fast-forward needs.
    """

    time: float


class SimEvent:
    """One-shot event carrying a value.

    Processes wait by yielding the event; once triggered the event
    stays triggered, so late waiters resume immediately (this is what
    makes sequential waiting on a set of events equivalent to a
    wait-all).
    """

    __slots__ = ("sim", "triggered", "value", "_waiters", "name")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.triggered = False
        self.value: object = None
        self.name = name
        self._waiters: list[Process] = []

    def trigger(self, value: object = None) -> None:
        """Fire the event, resuming all waiters at the current time."""
        if self.triggered:
            raise RuntimeError(f"SimEvent {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume_later(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else f"{len(self._waiters)} waiting"
        return f"<SimEvent {self.name!r} {state}>"


def wait_all(events: Iterable[SimEvent]) -> Generator[SimEvent, object, list[object]]:
    """Wait until every event in ``events`` has triggered.

    Returns the list of event values in input order.  Because events
    stay triggered, waiting on them one after another completes at the
    time of the last trigger — exactly a wait-all.
    """
    values: list[object] = []
    for ev in events:
        values.append((yield ev))
    return values


def on_trigger(event: SimEvent, callback: Callable[[object], object]) -> None:
    """Invoke ``callback(value)`` when ``event`` triggers.

    If the event has already triggered, the callback runs at the
    current time via the event queue (never synchronously), keeping
    ordering deterministic.  This is the lightweight alternative to a
    full Process for glue code that chains events.
    """
    if event.triggered:
        event.sim.schedule(0.0, lambda: callback(event.value))
    else:
        event._waiters.append(_CallbackWaiter(event.sim, callback))


class _CallbackWaiter:
    """Adapter giving a plain callable the Process waiter protocol."""

    __slots__ = ("sim", "callback")

    def __init__(self, sim: Simulator, callback: Callable[[object], object]) -> None:
        self.sim = sim
        self.callback = callback

    def _resume_later(self, value: object) -> None:
        self.sim.schedule(0.0, lambda: self.callback(value))


class Process:
    """Drives a generator as a simulated process."""

    __slots__ = ("sim", "name", "_gen", "finished", "result", "done_event", "daemon")

    def __init__(
        self,
        sim: Simulator,
        gen: Generator[object, object, object],
        name: str = "proc",
        daemon: bool = False,
    ) -> None:
        self.sim = sim
        self.name = name
        self._gen = gen
        self.finished = False
        #: daemon processes (service loops) may stay blocked at shutdown
        self.daemon = daemon
        self.result: object = None
        #: triggers with the generator's return value when it finishes
        self.done_event = SimEvent(sim, name=f"{name}.done")
        sim.processes.append(self)
        # Start lazily so process creation order does not advance time;
        # the first step runs at the current time via the event queue.
        sim.schedule(0.0, lambda: self._step(None))

    def _resume_later(self, value: object) -> None:
        self.sim.schedule(0.0, lambda: self._step(value))

    def _step(self, value: object) -> None:
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done_event.trigger(stop.value)
            return
        if isinstance(command, Sleep):
            self.sim.schedule(command.duration, lambda: self._step(None))
        elif isinstance(command, SleepUntil):
            self.sim.schedule_abs(command.time, lambda: self._step(None))
        elif isinstance(command, Tail):
            self.sim.schedule_tail(lambda: self._step(None))
        elif isinstance(command, SimEvent):
            if command.triggered:
                self._resume_later(command.value)
            else:
                command._waiters.append(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {command!r}; only Sleep, "
                "SleepUntil, Tail and SimEvent are valid primitives (did "
                "you forget 'yield from'?)"
            )

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"
