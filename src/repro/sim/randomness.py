"""Deterministic named random streams.

The benchmarks need randomness in exactly two places: the random
process placement of b_eff's random patterns, and optional timing
jitter.  Each consumer draws from its own named stream derived from a
master seed so that, e.g., adding jitter does not perturb the random
pattern permutations between runs.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """Factory of independent, reproducible ``numpy`` generators."""

    __slots__ = ("master_seed",)

    def __init__(self, master_seed: int = 20010423) -> None:
        # Default seed: the IPPS 2001 conference date, purely a constant.
        self.master_seed = int(master_seed)

    def stream(self, name: str) -> np.random.Generator:
        """A generator whose sequence depends only on (master_seed, name)."""
        seq = np.random.SeedSequence(
            self.master_seed, spawn_key=tuple(name.encode("utf-8"))
        )
        return np.random.default_rng(seq)

    def permutation(self, name: str, n: int) -> list[int]:
        """A reproducible permutation of range(n) for stream ``name``."""
        return [int(x) for x in self.stream(name).permutation(n)]
