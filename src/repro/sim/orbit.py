"""Exact float-grid arithmetic for steady-state orbit fast-forwards.

Both fast-forwards (``repro.beffio.fastforward`` for the b_eff_io
timed slices, ``repro.beff.fastforward`` for the b_eff repetition
loops) rest on the same exactness argument: within one floating-point
binade ``[2^p, 2^(p+1))`` every float is a multiple of the grid unit
``u = 2^(p-53)``, so the difference ``d`` of two same-binade boundary
times is an exact multiple of ``u`` and adding ``d`` to any
same-binade float is *exact* (no rounding).  A periodic event cascade
whose boundary clocks advance by ``d`` can therefore be replayed
analytically — ``x + k*d`` computed on the integer grid lands on the
bit-exact instant the event engine would have produced — as long as no
tracked float crosses its binade (the callers cap skips with
:func:`steps_in_binade` plus a safety margin).

This module is the shared primitive layer: three pure functions, no
engine state.
"""

from __future__ import annotations

import math


def grid_delta(v0: float, v1: float, v2: float) -> tuple[float, int] | None:
    """Per-repetition delta of three boundary samples, or None.

    Returns ``(d, e)`` with ``d = v1 - v0 = v2 - v1`` exactly and all
    three samples in the same binade (unit ``2**e``), which makes the
    subtraction and any further same-binade additions of ``d`` exact.
    """
    if not (v0 <= v1 <= v2):
        return None
    d = v1 - v0
    if v2 - v1 != d:
        return None
    if d == 0.0:
        return (0.0, 0)
    if v0 <= 0.0 or math.frexp(v0)[1] != math.frexp(v2)[1]:
        return None
    e = math.frexp(v2)[1] - 53
    k = math.ldexp(d, -e)
    if k != int(k):  # pragma: no cover - same-binade diffs are on-grid
        return None
    return (d, e)


def advance(x: float, d: float, e: int, steps: int) -> float:
    """``x + steps*d`` computed exactly on the binade grid ``2**e``."""
    if steps == 0 or d == 0.0:
        return x
    kx = int(math.ldexp(x, -e))
    kd = int(math.ldexp(d, -e))
    return math.ldexp(kx + steps * kd, e)


def steps_in_binade(x: float, d: float, e: int) -> int:
    """How many ``+d`` steps keep ``x`` strictly inside its binade."""
    if d == 0.0:
        return 1 << 62
    kx = int(math.ldexp(x, -e))
    kd = int(math.ldexp(d, -e))
    return max(0, ((1 << 53) - 1 - kx) // kd)
