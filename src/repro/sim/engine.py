"""Event heap and virtual clock.

The simulator is a plain binary-heap event loop.  Events are ordered
by ``(time, sequence)`` where the sequence number is a monotonically
increasing tiebreaker, which makes every run bit-for-bit
deterministic regardless of callback identity or hashing.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable


class DeadlockError(RuntimeError):
    """Raised when the event queue drains while processes are still blocked."""


class EventBudgetError(RuntimeError):
    """Raised when a guarded run exhausts its event budget with work pending.

    This is the engine-level "never hang" guard for fault-injected
    runs: a fault that keeps the simulation spinning (instead of
    deadlocking, which :meth:`Simulator.run_to_completion` already
    detects) trips the budget and surfaces as a flagged partial
    result rather than an unbounded loop.
    """


class Simulator:
    """Virtual-time discrete-event scheduler.

    Callbacks are zero-argument callables.  Time is a float in
    seconds of *virtual* time; the simulator never consults the wall
    clock.
    """

    __slots__ = ("_now", "_seq", "_heap", "_live", "processes")

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        #: heap entries are mutable [time, seq, callback] triples so a
        #: cancellation can null the callback in place; ``_live`` maps a
        #: pending handle to its entry and is the *only* per-handle
        #: state, so firing or cancelling a handle leaves nothing behind
        #: (the seed kept cancelled seqs in a set forever when the
        #: handle had already fired).
        self._heap: list[list] = []
        self._live: dict[int, list] = {}
        #: live processes registered by :class:`repro.sim.process.Process`
        self.processes: list = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` after ``delay`` seconds of virtual time.

        Returns a handle usable with :meth:`cancel`.  Negative delays
        are rejected — the simulator never travels backwards.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._seq += 1
        entry = [self._now + delay, self._seq, callback]
        heapq.heappush(self._heap, entry)
        self._live[self._seq] = entry
        return self._seq

    def schedule_at(self, time: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` at absolute virtual ``time`` (>= now)."""
        return self.schedule(time - self._now, callback)

    def schedule_abs(self, time: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` at *exactly* the absolute float ``time``.

        Unlike :meth:`schedule_at` — which round-trips through a delay
        and may land an ulp off ``time`` after ``now + (time - now)``
        re-rounds — the heap entry carries ``time`` verbatim.  The
        b_eff_io fast path depends on this to make wake-ups land on
        bit-exact extrapolated instants.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time!r} < now={self._now!r})"
            )
        self._seq += 1
        entry = [time, self._seq, callback]
        heapq.heappush(self._heap, entry)
        self._live[self._seq] = entry
        return self._seq

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (no-op if already fired)."""
        entry = self._live.pop(handle, None)
        if entry is not None:
            entry[2] = None

    def peek(self) -> float | None:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0][2] is None:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        while self._heap:
            time, seq, callback = heapq.heappop(self._heap)
            if callback is None:
                continue
            del self._live[seq]
            self._now = time
            callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains (or ``until`` / ``max_events``).

        With ``until``, the clock is advanced to exactly ``until`` even
        if the last event is earlier, matching the convention of other
        DES kernels.
        """
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                return
            nxt = self.peek()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self._now = until
                return
            self.step()
            count += 1
        if until is not None and until > self._now:
            self._now = until

    def run_to_completion(self, max_events: int | None = None) -> None:
        """Run until the queue drains; raise if any process is still blocked.

        This is the entry point the benchmarks use: a blocked process
        after the queue drains means an MPI message was never matched
        or an I/O completion was lost — a genuine deadlock in the
        simulated program.  ``max_events`` bounds the run: exhausting
        it with events still pending raises :class:`EventBudgetError`
        (the guard resilient fault-injected runs use to turn a
        runaway simulation into a flagged result).
        """
        self.run(max_events=max_events)
        if max_events is not None and self.peek() is not None:
            raise EventBudgetError(
                f"event budget of {max_events} exhausted at t={self._now:g} "
                "with events still pending"
            )
        stuck = [p for p in self.processes if not p.finished and not p.daemon]
        if stuck:
            names = ", ".join(str(p) for p in stuck[:8])
            raise DeadlockError(
                f"{len(stuck)} process(es) blocked with no pending events: {names}"
            )
