"""Event heap and virtual clock.

The simulator is a plain binary-heap event loop.  Events are ordered
by ``(time, lane, tie_key, sequence)`` where, normally, ``tie_key``
*is* the monotonically increasing sequence number — which makes every
run bit-for-bit deterministic regardless of callback identity or
hashing.

``lane`` separates ordinary events (lane 0) from *end-of-instant*
events (lane 1, :meth:`Simulator.schedule_tail`): a tail event runs
only after every ordinary event at the same timestamp — including
ones scheduled *while* the instant executes.  Subsystems that batch
same-instant work (the fluid network's allocation flush, the I/O
server's queue pop) use the tail lane so the batch boundary is a
property of virtual time, not of handler arrival order.

The ``tie_key`` ordering component exists for the nondeterminism sanitizer
(:mod:`repro.devtools.sanitizer`): under an instrumented run the tie
key is a seed-derived mix of the sequence number, which deterministically
*permutes* the execution order of same-timestamp events (within each
lane — a shuffled tail event still runs after every ordinary event of
its instant) while leaving the time axis untouched.  A simulation whose results survive that
shuffle has provably commutative same-time handlers; one whose
results change has a latent tie-break dependency.  Instrumentation is
opt-in (explicitly via :meth:`Simulator.instrument`, globally via the
sanitizer's context manager, or by the ``REPRO_TIE_SHUFFLE``
environment variable) and costs an un-instrumented run nothing but
one ``is None`` test per scheduled event.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import Any

import heapq

#: hook installed by repro.devtools.sanitizer: called with every new
#: Simulator so a sanitized region can instrument engines it never
#: sees constructed (machine factories build their own).  None when no
#: sanitizer context is active.
_instrument_hook: Callable[["Simulator"], None] | None = None

#: environment toggle: when set to an integer, every Simulator shuffles
#: same-time tie-breakers under that seed (see the sanitizer docs)
TIE_SHUFFLE_ENV = "REPRO_TIE_SHUFFLE"

_MASK64 = (1 << 64) - 1


def _mix64(seed: int, seq: int) -> int:
    """SplitMix64-style avalanche of (seed, seq) — a deterministic,
    hash-salt-free permutation key for same-time event shuffling."""
    z = (seq + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class DeadlockError(RuntimeError):
    """Raised when the event queue drains while processes are still blocked."""


class EventBudgetError(RuntimeError):
    """Raised when a guarded run exhausts its event budget with work pending.

    This is the engine-level "never hang" guard for fault-injected
    runs: a fault that keeps the simulation spinning (instead of
    deadlocking, which :meth:`Simulator.run_to_completion` already
    detects) trips the budget and surfaces as a flagged partial
    result rather than an unbounded loop.
    """


class Simulator:
    """Virtual-time discrete-event scheduler.

    Callbacks are zero-argument callables.  Time is a float in
    seconds of *virtual* time; the simulator never consults the wall
    clock.
    """

    __slots__ = ("_now", "_seq", "_heap", "_live", "processes",
                 "_tie_seed", "_recorder")

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        #: heap entries are mutable [time, lane, tie_key, seq, callback]
        #: quintuples so a cancellation can null the callback in place;
        #: ``_live`` maps a pending handle to its entry and is the
        #: *only* per-handle state, so firing or cancelling a handle
        #: leaves nothing behind (the seed kept cancelled seqs in a set
        #: forever when the handle had already fired).
        self._heap: list[list[Any]] = []
        self._live: dict[int, list[Any]] = {}
        #: live processes registered by :class:`repro.sim.process.Process`
        self.processes: list[Any] = []
        #: sanitizer state: None = plain FIFO tie-breaking (tie_key == seq)
        self._tie_seed: int | None = None
        #: sanitizer trace sink: callback(time, seq, event_callback)
        self._recorder: Callable[[float, int, Callable[[], None]], None] | None = None
        if _instrument_hook is not None:
            _instrument_hook(self)
        elif TIE_SHUFFLE_ENV in os.environ:
            self._tie_seed = int(os.environ[TIE_SHUFFLE_ENV])

    def instrument(
        self,
        recorder: Callable[[float, int, Callable[[], None]], None] | None = None,
        tie_shuffle_seed: int | None = None,
    ) -> None:
        """Opt into sanitizer instrumentation (see the module docstring).

        ``recorder`` is invoked as ``recorder(time, seq, callback)``
        for every executed event; ``tie_shuffle_seed`` deterministically
        permutes the execution order of same-timestamp events.  Must be
        called before any event is scheduled — re-keying a live heap
        would corrupt its ordering.
        """
        if self._heap or self._seq:
            raise RuntimeError("cannot instrument a simulator with scheduled events")
        if recorder is not None:
            self._recorder = recorder
        if tie_shuffle_seed is not None:
            self._tie_seed = tie_shuffle_seed

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def _push(self, time: float, callback: Callable[[], None], lane: int = 0) -> int:
        self._seq += 1
        seq = self._seq
        key = seq if self._tie_seed is None else _mix64(self._tie_seed, seq)
        entry: list[Any] = [time, lane, key, seq, callback]
        heapq.heappush(self._heap, entry)
        self._live[seq] = entry
        return seq

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` after ``delay`` seconds of virtual time.

        Returns a handle usable with :meth:`cancel`.  Negative delays
        are rejected — the simulator never travels backwards.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        return self._push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` at absolute virtual ``time`` (>= now)."""
        return self.schedule(time - self._now, callback)

    def schedule_abs(self, time: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` at *exactly* the absolute float ``time``.

        Unlike :meth:`schedule_at` — which round-trips through a delay
        and may land an ulp off ``time`` after ``now + (time - now)``
        re-rounds — the heap entry carries ``time`` verbatim.  The
        b_eff_io fast path depends on this to make wake-ups land on
        bit-exact extrapolated instants.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time!r} < now={self._now!r})"
            )
        return self._push(time, callback)

    def schedule_tail(self, callback: Callable[[], None]) -> int:
        """Run ``callback`` at the *tail* of the current instant.

        The callback fires at the current virtual time, but only after
        every ordinary event scheduled for this instant has run —
        including events those handlers schedule with zero delay.
        Batching subsystems use this so "everything that happens at
        time t" is a well-defined set before they act on it, making
        the batch boundary invariant under same-time tie-breaking
        (tail events shuffle only among themselves under the
        sanitizer).  Returns a handle usable with :meth:`cancel`.
        """
        return self._push(self._now, callback, lane=1)

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (no-op if already fired)."""
        entry = self._live.pop(handle, None)
        if entry is not None:
            entry[4] = None

    def peek(self) -> float | None:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0][4] is None:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return float(self._heap[0][0])

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        while self._heap:
            time, _lane, _key, seq, callback = heapq.heappop(self._heap)
            if callback is None:
                continue
            del self._live[seq]
            self._now = time
            if self._recorder is not None:
                self._recorder(time, seq, callback)
            callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains (or ``until`` / ``max_events``).

        With ``until``, the clock is advanced to exactly ``until`` even
        if the last event is earlier, matching the convention of other
        DES kernels.
        """
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                return
            nxt = self.peek()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self._now = until
                return
            self.step()
            count += 1
        if until is not None and until > self._now:
            self._now = until

    def run_to_completion(self, max_events: int | None = None) -> None:
        """Run until the queue drains; raise if any process is still blocked.

        This is the entry point the benchmarks use: a blocked process
        after the queue drains means an MPI message was never matched
        or an I/O completion was lost — a genuine deadlock in the
        simulated program.  ``max_events`` bounds the run: exhausting
        it with events still pending raises :class:`EventBudgetError`
        (the guard resilient fault-injected runs use to turn a
        runaway simulation into a flagged result).
        """
        self.run(max_events=max_events)
        if max_events is not None and self.peek() is not None:
            raise EventBudgetError(
                f"event budget of {max_events} exhausted at t={self._now:g} "
                "with events still pending"
            )
        stuck = [p for p in self.processes if not p.finished and not p.daemon]
        if stuck:
            names = ", ".join(str(p) for p in stuck[:8])
            raise DeadlockError(
                f"{len(stuck)} process(es) blocked with no pending events: {names}"
            )
