"""Max-min fair fluid-flow network (incremental engine).

Concurrent message transfers are modelled as *flows*: a flow has a
route (a list of link ids), a byte count, and — at any instant — a
rate assigned by progressive-filling max-min fairness over the links
it crosses.  Whenever the set of active flows changes, all flows'
progress is settled at the current virtual time and rates are
recomputed.

This is the mechanism that distinguishes b_eff from a ping-pong
benchmark: when every process communicates at once, flows share
links, per-flow bandwidth drops, and the drop depends on the
topology and on where the communication partners sit — exactly the
effect the paper's ring vs. random comparison measures.

The engine comes in two modes:

``incremental`` (default)
    The production path.  Membership changes are *batched*: flows
    started (or finished) at the same virtual instant are absorbed
    into one end-of-instant "allocation pending" flush (the engine's
    tail lane), so the N simultaneous ``start_flow`` calls that follow
    a barrier trigger one allocation, not N — however the instant's
    handlers interleave.  Each flush re-solves only the connected
    component of links the changed flows touch (max-min fairness
    decomposes exactly over link-connected components), using cached
    per-link member tables and live member *counts* instead of the
    reference solver's per-round membership rescans.  Progress
    settling charges per-link byte counters from per-link aggregate
    rates maintained on membership change, and completions pop from a
    min-heap of finish times instead of a scan over all flows.

``reference``
    The seed behaviour, kept as the correctness (and wall-clock
    "before") oracle: every membership change immediately re-runs the
    pure :func:`maxmin_allocate` over *all* active flows, settling
    walks every flow's route, and the completion timer scans every
    flow.  ``benchmarks/test_bench_fluid_scaling.py`` asserts the two
    modes agree to float precision and records their speed ratio.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.kernel import RouteIncidence
from repro.sim.process import SimEvent

#: residual bytes below which a flow counts as finished (guards float error)
_EPS_BYTES = 1e-3
#: slack when completing flows at a shared finish instant
_EPS_TIME = 1e-12
#: component size from which the vectorized CSR kernel beats the
#: per-round Python scan (small sendrecv components stay on the dict path)
_VEC_FLOWS = 64

_MODES = ("incremental", "reference")


def maxmin_allocate(
    capacities: dict[int, float],
    routes: list[tuple[int, ...]],
) -> list[float]:
    """Progressive-filling max-min fair rates for ``routes``.

    ``capacities`` maps link id -> bytes/s; each route is the tuple of
    link ids one flow crosses.  Returns one rate per route.  A flow
    with an empty route gets ``math.inf``.  This is the *reference
    oracle* for :class:`FlowNetwork`'s incremental solver and is also
    used directly by the analytic round model of b_eff
    (``repro.beff.analytic``).
    """
    rates = [0.0] * len(routes)
    residual: dict[int, float] = {}
    link_members: dict[int, list[int]] = {}
    unfixed: set[int] = set()
    for idx, route in enumerate(routes):
        if not route:
            rates[idx] = math.inf
            continue
        unfixed.add(idx)
        for link_id in route:
            residual[link_id] = capacities[link_id]
            link_members.setdefault(link_id, []).append(idx)

    while unfixed:
        bottleneck = math.inf
        for link_id, members in link_members.items():
            count = sum(1 for i in members if i in unfixed)
            if count == 0:
                continue
            share = residual[link_id] / count
            if share < bottleneck:
                bottleneck = share
        if math.isinf(bottleneck):  # pragma: no cover - defensive
            for i in sorted(unfixed):
                rates[i] = math.inf
            break
        tol = bottleneck * (1.0 + 1e-12)
        newly_fixed: list[int] = []
        for link_id, members in link_members.items():
            count = sum(1 for i in members if i in unfixed)
            if count == 0:
                continue
            if residual[link_id] / count <= tol:
                for i in members:
                    if i in unfixed:
                        newly_fixed.append(i)
                        unfixed.discard(i)
        for i in newly_fixed:
            rates[i] = bottleneck
            for link_id in routes[i]:
                residual[link_id] = max(0.0, residual[link_id] - bottleneck)
    return rates


@dataclass(slots=True)
class Link:
    """A unidirectional capacity shared by the flows routed across it."""

    capacity: float  # bytes per second
    name: str = ""

    def __post_init__(self) -> None:
        if not (self.capacity > 0.0) or math.isinf(self.capacity):
            raise ValueError(f"link capacity must be finite and positive: {self.capacity!r}")


@dataclass(slots=True)
class Flow:
    """An in-flight transfer; internal bookkeeping for FlowNetwork."""

    flow_id: int
    route: tuple[int, ...]
    remaining: float
    total_bytes: float
    event: SimEvent
    rate: float = 0.0
    finish_time: float = math.inf
    private_link: int | None = None
    meta: object = None


class FlowNetwork:
    """Shared-bandwidth network with progressive-filling allocation.

    Links are created once (usually by a :mod:`repro.topology` builder)
    and flows come and go as messages are transferred.  A single
    pending "next completion" timer is maintained; any membership
    change settles progress and recomputes the allocation — batched
    and component-local in ``incremental`` mode, immediate and global
    in ``reference`` mode (see the module docstring).
    """

    __slots__ = (
        "sim",
        "mode",
        "_incremental",
        "_links",
        "_next_link_id",
        "_flows",
        "_next_flow_id",
        "_last_settle",
        "_timer",
        "bytes_completed",
        "flows_completed",
        "_link_bytes",
        "_members",
        "_rate_slot",
        "_rate_arr",
        "_bytes_arr",
        "_slots_used",
        "_free_slots",
        "_retired_bytes",
        "_pending_totals",
        "_dirty_links",
        "_flush_handle",
        "_finish_heap",
        "allocations",
        "flows_solved",
    )

    def __init__(self, sim: Simulator, mode: str = "incremental") -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown fluid mode {mode!r}; expected one of {_MODES}")
        self.sim = sim
        self.mode = mode
        self._incremental = mode == "incremental"
        self._links: dict[int, Link] = {}
        self._next_link_id = 0
        self._flows: dict[int, Flow] = {}
        self._next_flow_id = 0
        self._last_settle = 0.0
        self._timer: int | None = None
        #: statistics: total bytes completed, flow count
        self.bytes_completed = 0.0
        self.flows_completed = 0
        #: bytes carried per link in reference mode (hot-link analysis);
        #: the incremental engine keeps the same totals in slotted arrays
        self._link_bytes: dict[int, float] = {}
        #: link id -> {flow_id: None} of flows crossing it (insertion order)
        self._members: dict[int, dict[int, None]] = {}
        # Incremental-mode settle accounting is slotted: links with a
        # non-zero aggregate rate occupy a slot in a pair of dense numpy
        # arrays so one whole-array `bytes += rate * dt` replaces the
        # per-link Python loop.  Slots are recycled via a free list
        # (private per-flow cap links would otherwise grow the arrays
        # without bound); a link's accumulated bytes are folded into
        # ``_retired_bytes`` when its slot is released and seeded back
        # when it re-enters, so the addition chain per link is exactly
        # the one the dict-based accounting performed.
        #: link id -> slot index in the rate/bytes arrays
        self._rate_slot: dict[int, int] = {}
        self._rate_arr: np.ndarray = np.zeros(0, dtype=np.float64)
        self._bytes_arr: np.ndarray = np.zeros(0, dtype=np.float64)
        self._slots_used = 0
        self._free_slots: list[int] = []
        #: bytes carried by links whose slot has been released
        self._retired_bytes: dict[int, float] = {}
        #: per-link aggregate rates handed from the vectorized solver
        #: to the same flush (avoids re-summing member rates in Python)
        self._pending_totals: dict[int, float] | None = None
        #: links whose membership changed since the last flush
        self._dirty_links: set[int] = set()
        #: pending zero-delay allocation flush (batches same-instant changes)
        self._flush_handle: int | None = None
        #: lazy min-heap of (finish_time, flow_id); stale entries skipped
        self._finish_heap: list[tuple[float, int]] = []
        #: observability: solver invocations and flows re-solved
        self.allocations = 0
        self.flows_solved = 0

    # -- links ---------------------------------------------------------

    def add_link(self, capacity: float, name: str = "") -> int:
        """Register a link and return its id for use in routes."""
        link_id = self._next_link_id
        self._next_link_id += 1
        self._links[link_id] = Link(capacity, name)
        return link_id

    def link(self, link_id: int) -> Link:
        return self._links[link_id]

    def set_capacity(self, link_id: int, capacity: float) -> None:
        """Change a link's capacity mid-run (fault injection hook).

        In-flight flows are settled at the current instant and the
        allocation is recomputed — component-local and batched with
        any other same-instant changes in ``incremental`` mode,
        immediately and globally in ``reference`` mode, so both modes
        see the new capacity from the same virtual time onwards.
        """
        if not (capacity > 0.0) or math.isinf(capacity):
            raise ValueError(f"link capacity must be finite and positive: {capacity!r}")
        link = self._links[link_id]
        if link.capacity == capacity:
            return
        if self._incremental:
            link.capacity = capacity
            self._dirty_links.add(link_id)
            self._request_flush()
        else:
            self._settle()
            link.capacity = capacity
            self._reallocate_reference()

    def link_ids(self) -> list[int]:
        """All public (non-private-cap) link ids, ascending."""
        return sorted(
            link_id for link_id, link in self._links.items()
            if not link.name.startswith("cap:")
        )

    def find_links(self, pattern: str) -> list[int]:
        """Ids of public links whose name contains ``pattern``, ascending."""
        return sorted(
            link_id
            for link_id, link in self._links.items()
            if not link.name.startswith("cap:") and pattern in link.name
        )

    @property
    def num_links(self) -> int:
        return len(self._links)

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def link_bytes(self) -> dict[int, float]:
        """Bytes carried per link (hot-link analysis).

        Reference mode returns the live accounting dict; incremental
        mode materializes the same totals from the slotted arrays plus
        the retired-slot carryover.
        """
        if not self._incremental:
            return self._link_bytes
        out = dict(self._retired_bytes)
        barr = self._bytes_arr
        for link_id, slot in self._rate_slot.items():
            carried = float(barr[slot])
            if carried != 0.0:
                out[link_id] = carried
        return out

    # -- slotted rate/byte accounting (incremental mode) -----------------

    def _slot_for(self, link_id: int) -> int:
        """Slot of ``link_id``, allocating (and seeding) one if needed."""
        slot = self._rate_slot.get(link_id)
        if slot is None:
            free = self._free_slots
            if free:
                slot = free.pop()
            else:
                slot = self._slots_used
                if slot == len(self._rate_arr):
                    cap = max(64, 2 * len(self._rate_arr))
                    for name in ("_rate_arr", "_bytes_arr"):
                        old = getattr(self, name)
                        grown = np.zeros(cap, dtype=np.float64)
                        grown[: len(old)] = old
                        setattr(self, name, grown)
                self._slots_used += 1
            self._rate_slot[link_id] = slot
            self._rate_arr[slot] = 0.0
            # continue this link's accumulation chain bit-exactly
            self._bytes_arr[slot] = self._retired_bytes.pop(link_id, 0.0)
        return slot

    def _drop_slot(self, link_id: int) -> None:
        """Release a link's slot, folding its bytes into the carryover."""
        slot = self._rate_slot.pop(link_id, None)
        if slot is None:
            return
        carried = float(self._bytes_arr[slot])
        if carried != 0.0:
            self._retired_bytes[link_id] = carried
        self._rate_arr[slot] = 0.0
        self._bytes_arr[slot] = 0.0
        self._free_slots.append(slot)

    # -- flows ---------------------------------------------------------

    def start_flow(
        self,
        route: list[int] | tuple[int, ...],
        nbytes: float,
        rate_cap: float | None = None,
        meta: object = None,
    ) -> SimEvent:
        """Begin transferring ``nbytes`` across ``route``.

        Returns a :class:`SimEvent` that triggers when the last byte
        arrives.  ``rate_cap`` bounds this flow's rate regardless of
        link shares (models a NIC or memory-copy engine limit); it is
        implemented as a private link appended to the route so the
        fairness computation stays uniform.

        An empty route or zero bytes completes immediately (zero-cost
        local transfer).
        """
        if nbytes < 0:
            raise ValueError(f"negative flow size: {nbytes!r}")
        event = SimEvent(self.sim, name=f"flow{self._next_flow_id}")
        if nbytes == 0 or (not route and rate_cap is None):
            self.sim.schedule(0.0, lambda: event.trigger(0.0))
            return event
        for link_id in route:
            if link_id not in self._links:
                raise KeyError(f"unknown link id {link_id!r} in route")
        private = None
        full_route = tuple(route)
        if rate_cap is not None:
            private = self.add_link(rate_cap, name=f"cap:flow{self._next_flow_id}")
            full_route = full_route + (private,)
        flow = Flow(
            flow_id=self._next_flow_id,
            route=full_route,
            remaining=float(nbytes),
            total_bytes=float(nbytes),
            event=event,
            private_link=private,
            meta=meta,
        )
        self._next_flow_id += 1
        if self._incremental:
            # Rates only matter once time advances, so joining flows can
            # wait for the end-of-instant flush; N simultaneous starts
            # then cost one allocation.
            self._flows[flow.flow_id] = flow
            for link_id in full_route:
                self._members.setdefault(link_id, {})[flow.flow_id] = None
            self._dirty_links.update(full_route)
            self._request_flush()
        else:
            # seed behaviour: settle + immediate full reallocation (the
            # member table is an incremental-mode structure; the
            # reference solver rebuilds membership from scratch)
            self._settle()
            self._flows[flow.flow_id] = flow
            self._reallocate_reference()
        return event

    def current_rates(self) -> dict[int, float]:
        """Allocated rate per active flow id (forces any pending flush).

        Test/inspection hook: in incremental mode rates assigned at
        the current instant may still be pending in the batched flush;
        this applies them first so the returned allocation is exactly
        what the next time advance will use.
        """
        if self._flush_handle is not None:
            self.sim.cancel(self._flush_handle)
            self._flush()
        return {fid: flow.rate for fid, flow in self._flows.items()}

    # -- internals -----------------------------------------------------

    def _settle(self) -> None:
        """Advance every active flow's remaining bytes to the current time."""
        now = self.sim.now
        dt = now - self._last_settle
        self._last_settle = now
        if dt <= 0.0:
            return
        if not self._incremental:
            link_bytes = self._link_bytes
            for flow in self._flows.values():
                moved = min(flow.rate * dt, flow.remaining)
                flow.remaining -= moved
                if moved > 0.0:
                    for link_id in flow.route:
                        link_bytes[link_id] = link_bytes.get(link_id, 0.0) + moved
            return
        # Charge links from the slotted aggregate rates: one whole-array
        # op instead of a Python loop over active links.  Released slots
        # carry rate 0.0, so their `+= 0.0 * dt` contribution is exact.
        used = self._slots_used
        if used:
            self._bytes_arr[:used] += self._rate_arr[:used] * dt
        # ... then advance flows, refunding the (float-slop) overshoot of
        # any flow that ran out of bytes before the interval ended.
        slot_of = self._rate_slot
        barr = self._bytes_arr
        for flow in self._flows.values():
            moved = flow.rate * dt
            if moved >= flow.remaining:
                excess = moved - flow.remaining
                flow.remaining = 0.0
                if excess > 0.0:
                    for link_id in flow.route:
                        barr[slot_of[link_id]] -= excess
            else:
                flow.remaining -= moved

    def _request_flush(self) -> None:
        # Tail lane: the flush runs after *every* ordinary event of the
        # current instant, so one allocation absorbs all of the
        # instant's membership changes no matter how its handlers were
        # interleaved (same-time tie-breaking included).
        if self._flush_handle is None:
            self._flush_handle = self.sim.schedule_tail(self._flush)

    def _flush(self) -> None:
        """Apply batched membership changes: re-solve the affected component.

        Max-min fairness decomposes over connected components of the
        flow/link sharing graph, so only flows reachable (via shared
        links) from a dirty link can see their rate change; everyone
        else keeps rate and finish time untouched.
        """
        self._flush_handle = None
        self._settle()
        dirty, self._dirty_links = self._dirty_links, set()
        members = self._members
        if not self._flows:
            for link_id in list(self._rate_slot):
                self._drop_slot(link_id)
            self._arm_timer()
            return
        # Affected component: BFS links <-> member flows from the dirty set.
        comp_links: list[int] = []
        seen_links: set[int] = set()
        comp_flows: list[int] = []
        seen_flows: set[int] = set()
        stack = sorted(link_id for link_id in dirty if link_id in members)
        while stack:
            link_id = stack.pop()
            if link_id in seen_links:
                continue
            seen_links.add(link_id)
            comp_links.append(link_id)
            for fid in members[link_id]:
                if fid not in seen_flows:
                    seen_flows.add(fid)
                    comp_flows.append(fid)
                    for other in self._flows[fid].route:
                        if other not in seen_links:
                            stack.append(other)
        if comp_flows:
            comp_flows.sort()
            rates = self._solve_component(comp_flows)
            now = self.sim.now
            heap = self._finish_heap
            for fid in comp_flows:
                flow = self._flows[fid]
                rate = rates[fid]
                flow.rate = rate
                if rate <= 0.0 or math.isinf(rate):  # pragma: no cover - defensive
                    flow.finish_time = math.inf
                    continue
                if flow.remaining <= _EPS_BYTES:
                    flow.finish_time = now
                else:
                    flow.finish_time = now + flow.remaining / rate
                heapq.heappush(heap, (flow.finish_time, fid))
            flows = self._flows
            rate_arr = self._rate_arr
            pending, self._pending_totals = self._pending_totals, None
            for link_id in comp_links:
                if pending is not None:
                    total = pending[link_id]
                else:
                    total = sum(flows[fid].rate for fid in members[link_id])
                if total > 0.0:
                    slot = self._rate_slot.get(link_id)
                    if slot is None:
                        slot = self._slot_for(link_id)
                        rate_arr = self._rate_arr  # may have grown
                    rate_arr[slot] = total
                else:  # pragma: no cover - defensive
                    self._drop_slot(link_id)
        self._arm_timer()

    def _solve_component(self, flow_ids: list[int]) -> dict[int, float]:
        """Progressive filling over one component, with cached counts.

        Same arithmetic as :func:`maxmin_allocate` (identical bottleneck
        divisions and residual subtractions in the same per-link order)
        but the per-round ``sum(1 for i in members if i in unfixed)``
        rescans are replaced by live member counts maintained as flows
        are fixed.
        """
        self.allocations += 1
        self.flows_solved += len(flow_ids)
        if len(flow_ids) >= _VEC_FLOWS:
            return self._solve_component_vec(flow_ids)
        flows = self._flows
        links = self._links
        members = self._members
        residual: dict[int, float] = {}
        counts: dict[int, int] = {}
        for fid in flow_ids:
            for link_id in flows[fid].route:
                if link_id in residual:
                    counts[link_id] += 1
                else:
                    residual[link_id] = links[link_id].capacity
                    counts[link_id] = 1
        rates: dict[int, float] = {}
        unfixed = dict.fromkeys(flow_ids)
        while unfixed:
            bottleneck = math.inf
            for link_id, count in counts.items():
                if count == 0:
                    continue
                share = residual[link_id] / count
                if share < bottleneck:
                    bottleneck = share
            if math.isinf(bottleneck):  # pragma: no cover - defensive
                for fid in unfixed:
                    rates[fid] = math.inf
                break
            tol = bottleneck * (1.0 + 1e-12)
            newly_fixed: list[int] = []
            for link_id, count in counts.items():
                if count == 0:
                    continue
                if residual[link_id] / count <= tol:
                    for fid in members[link_id]:
                        if fid in unfixed:
                            newly_fixed.append(fid)
                            del unfixed[fid]
            for fid in newly_fixed:
                rates[fid] = bottleneck
                for link_id in flows[fid].route:
                    residual[link_id] = max(0.0, residual[link_id] - bottleneck)
                    counts[link_id] -= 1
        return rates

    def _solve_component_vec(self, flow_ids: list[int]) -> dict[int, float]:
        """Large components: the CSR kernel with this solver's semantics.

        ``tie_counts="frozen"`` selects the cached-count saturation scan
        that :meth:`_solve_component`'s Python loop performs, so the
        dispatch threshold cannot change any allocation — the kernel is
        bit-identical (see ``repro.sim.kernel``'s property tests).
        """
        flows = self._flows
        links = self._links
        routes = [flows[fid].route for fid in flow_ids]
        incidence = RouteIncidence(routes)
        caps = np.fromiter(
            (links[link_id].capacity for link_id in incidence.link_ids),
            dtype=np.float64,
            count=incidence.n_links,
        )
        rate_vec = incidence.solve(caps, tie_counts="frozen")
        if not incidence.has_duplicate_pairs:
            # hand the flush the per-link aggregate rates too: the
            # bincount accumulates each link's members in the same
            # ascending-flow order the Python loop would
            totals = incidence.link_totals(rate_vec).tolist()
            self._pending_totals = dict(zip(incidence.link_ids, totals))
        return dict(zip(flow_ids, rate_vec.tolist()))

    def _arm_timer(self) -> None:
        """(Re)schedule the single completion timer from the finish heap."""
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        heap = self._finish_heap
        flows = self._flows
        while heap:
            finish, fid = heap[0]
            flow = flows.get(fid)
            if flow is None or flow.finish_time != finish:
                heapq.heappop(heap)  # stale: flow gone or re-allocated
                continue
            delay = finish - self.sim.now
            self._timer = self.sim.schedule(delay if delay > 0.0 else 0.0, self._on_timer)
            return

    def _retire(self, flow: Flow) -> None:
        """Remove a completed flow from all bookkeeping tables."""
        del self._flows[flow.flow_id]
        if self._incremental:
            for link_id in flow.route:
                entry = self._members.get(link_id)
                if entry is not None:
                    entry.pop(flow.flow_id, None)
                    if not entry:
                        del self._members[link_id]
                        self._drop_slot(link_id)
                self._dirty_links.add(link_id)
        if flow.private_link is not None:
            del self._links[flow.private_link]
            self._dirty_links.discard(flow.private_link)
        self.bytes_completed += flow.total_bytes
        self.flows_completed += 1

    def hottest_links(self, top: int = 10) -> list[tuple[str, float]]:
        """The most-trafficked links as (name, bytes), descending.

        Private per-flow cap links are excluded; use this to explain
        contention results (e.g. which torus links the random
        placement saturates).
        """
        ranked = sorted(self.link_bytes.items(), key=lambda kv: -kv[1])
        out: list[tuple[str, float]] = []
        for link_id, nbytes in ranked:
            link = self._links.get(link_id)
            if link is None or link.name.startswith("cap:"):
                continue
            out.append((link.name or str(link_id), nbytes))
            if len(out) >= top:
                break
        return out

    def _on_timer(self) -> None:
        self._timer = None
        self._settle()
        now = self.sim.now
        if not self._incremental:
            done = [
                f
                for f in self._flows.values()
                if f.remaining <= _EPS_BYTES or f.finish_time <= now + _EPS_TIME
            ]
            for flow in done:
                self._retire(flow)
            self._reallocate_reference()
            for flow in done:
                flow.event.trigger(now)
            return
        heap = self._finish_heap
        flows = self._flows
        done: list[Flow] = []
        while heap:
            finish, fid = heap[0]
            flow = flows.get(fid)
            if flow is None or flow.finish_time != finish:
                heapq.heappop(heap)
                continue
            if finish <= now + _EPS_TIME or flow.remaining <= _EPS_BYTES:
                heapq.heappop(heap)
                # retire immediately so a duplicate heap entry for this
                # flow (same finish time pushed by two flushes) reads as
                # stale rather than completing the flow twice
                self._retire(flow)
                done.append(flow)
            else:
                break
        if done:
            # Batch the departures (and any flows the resumed waiters
            # start at this instant) into one allocation flush.
            self._request_flush()
        else:  # pragma: no cover - stale timer
            self._arm_timer()
        for flow in done:
            flow.event.trigger(now)

    # -- reference (seed) path -----------------------------------------

    def _reallocate_reference(self) -> None:
        """Seed behaviour: full-network oracle allocation + flow scan."""
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        if not self._flows:
            return
        self.allocations += 1
        self.flows_solved += len(self._flows)

        flows = list(self._flows.values())
        capacities = {
            link_id: self._links[link_id].capacity
            for flow in flows
            for link_id in flow.route
        }
        rates = maxmin_allocate(capacities, [flow.route for flow in flows])
        for flow, rate in zip(flows, rates):
            flow.rate = rate

        # Completion times and the single pending timer.
        now = self.sim.now
        earliest = math.inf
        for flow in self._flows.values():
            if flow.rate <= 0.0:  # pragma: no cover - defensive
                flow.finish_time = math.inf
                continue
            flow.finish_time = now + flow.remaining / flow.rate
            if flow.finish_time < earliest:
                earliest = flow.finish_time
        if not math.isinf(earliest):
            self._timer = self.sim.schedule(earliest - now, self._on_timer)
