"""Max-min fair fluid-flow network.

Concurrent message transfers are modelled as *flows*: a flow has a
route (a list of link ids), a byte count, and — at any instant — a
rate assigned by progressive-filling max-min fairness over the links
it crosses.  Whenever the set of active flows changes, all flows'
progress is settled at the current virtual time and rates are
recomputed.

This is the mechanism that distinguishes b_eff from a ping-pong
benchmark: when every process communicates at once, flows share
links, per-flow bandwidth drops, and the drop depends on the
topology and on where the communication partners sit — exactly the
effect the paper's ring vs. random comparison measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sim.engine import Simulator
from repro.sim.process import SimEvent

#: residual bytes below which a flow counts as finished (guards float error)
_EPS_BYTES = 1e-3
#: slack when completing flows at a shared finish instant
_EPS_TIME = 1e-12


def maxmin_allocate(
    capacities: dict[int, float],
    routes: list[tuple[int, ...]],
) -> list[float]:
    """Progressive-filling max-min fair rates for ``routes``.

    ``capacities`` maps link id -> bytes/s; each route is the tuple of
    link ids one flow crosses.  Returns one rate per route.  A flow
    with an empty route gets ``math.inf``.  This is the static core of
    :class:`FlowNetwork` and is also used directly by the analytic
    round model of b_eff (``repro.beff.analytic``).
    """
    rates = [0.0] * len(routes)
    residual = {}
    link_members: dict[int, list[int]] = {}
    unfixed: set[int] = set()
    for idx, route in enumerate(routes):
        if not route:
            rates[idx] = math.inf
            continue
        unfixed.add(idx)
        for link_id in route:
            residual[link_id] = capacities[link_id]
            link_members.setdefault(link_id, []).append(idx)

    while unfixed:
        bottleneck = math.inf
        for link_id, members in link_members.items():
            count = sum(1 for i in members if i in unfixed)
            if count == 0:
                continue
            share = residual[link_id] / count
            if share < bottleneck:
                bottleneck = share
        if math.isinf(bottleneck):  # pragma: no cover - defensive
            for i in unfixed:
                rates[i] = math.inf
            break
        tol = bottleneck * (1.0 + 1e-12)
        newly_fixed: list[int] = []
        for link_id, members in link_members.items():
            count = sum(1 for i in members if i in unfixed)
            if count == 0:
                continue
            if residual[link_id] / count <= tol:
                for i in members:
                    if i in unfixed:
                        newly_fixed.append(i)
                        unfixed.discard(i)
        for i in newly_fixed:
            rates[i] = bottleneck
            for link_id in routes[i]:
                residual[link_id] = max(0.0, residual[link_id] - bottleneck)
    return rates


@dataclass
class Link:
    """A unidirectional capacity shared by the flows routed across it."""

    capacity: float  # bytes per second
    name: str = ""

    def __post_init__(self) -> None:
        if not (self.capacity > 0.0) or math.isinf(self.capacity):
            raise ValueError(f"link capacity must be finite and positive: {self.capacity!r}")


@dataclass
class Flow:
    """An in-flight transfer; internal bookkeeping for FlowNetwork."""

    flow_id: int
    route: tuple[int, ...]
    remaining: float
    total_bytes: float
    event: SimEvent
    rate: float = 0.0
    finish_time: float = math.inf
    private_link: int | None = None
    meta: object = None
    _dirty: bool = field(default=False, repr=False)


class FlowNetwork:
    """Shared-bandwidth network with progressive-filling allocation.

    Links are created once (usually by a :mod:`repro.topology` builder)
    and flows come and go as messages are transferred.  A single
    pending "next completion" timer is maintained; any membership
    change settles progress and recomputes the allocation.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._links: dict[int, Link] = {}
        self._next_link_id = 0
        self._flows: dict[int, Flow] = {}
        self._next_flow_id = 0
        self._last_settle = 0.0
        self._timer: int | None = None
        #: statistics: total bytes completed, flow count
        self.bytes_completed = 0.0
        self.flows_completed = 0
        #: bytes carried per link (hot-link analysis)
        self.link_bytes: dict[int, float] = {}

    # -- links ---------------------------------------------------------

    def add_link(self, capacity: float, name: str = "") -> int:
        """Register a link and return its id for use in routes."""
        link_id = self._next_link_id
        self._next_link_id += 1
        self._links[link_id] = Link(capacity, name)
        return link_id

    def link(self, link_id: int) -> Link:
        return self._links[link_id]

    @property
    def num_links(self) -> int:
        return len(self._links)

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    # -- flows ---------------------------------------------------------

    def start_flow(
        self,
        route: list[int] | tuple[int, ...],
        nbytes: float,
        rate_cap: float | None = None,
        meta: object = None,
    ) -> SimEvent:
        """Begin transferring ``nbytes`` across ``route``.

        Returns a :class:`SimEvent` that triggers when the last byte
        arrives.  ``rate_cap`` bounds this flow's rate regardless of
        link shares (models a NIC or memory-copy engine limit); it is
        implemented as a private link appended to the route so the
        fairness computation stays uniform.

        An empty route or zero bytes completes immediately (zero-cost
        local transfer).
        """
        if nbytes < 0:
            raise ValueError(f"negative flow size: {nbytes!r}")
        event = SimEvent(self.sim, name=f"flow{self._next_flow_id}")
        if nbytes == 0 or (not route and rate_cap is None):
            self.sim.schedule(0.0, lambda: event.trigger(0.0))
            return event
        for link_id in route:
            if link_id not in self._links:
                raise KeyError(f"unknown link id {link_id!r} in route")
        private = None
        full_route = tuple(route)
        if rate_cap is not None:
            private = self.add_link(rate_cap, name=f"cap:flow{self._next_flow_id}")
            full_route = full_route + (private,)
        flow = Flow(
            flow_id=self._next_flow_id,
            route=full_route,
            remaining=float(nbytes),
            total_bytes=float(nbytes),
            event=event,
            private_link=private,
            meta=meta,
        )
        self._next_flow_id += 1
        self._settle()
        self._flows[flow.flow_id] = flow
        self._reallocate()
        return event

    # -- internals -----------------------------------------------------

    def _settle(self) -> None:
        """Advance every active flow's remaining bytes to the current time."""
        now = self.sim.now
        dt = now - self._last_settle
        if dt > 0.0:
            for flow in self._flows.values():
                moved = min(flow.rate * dt, flow.remaining)
                flow.remaining -= moved
                if moved > 0.0:
                    for link_id in flow.route:
                        self.link_bytes[link_id] = (
                            self.link_bytes.get(link_id, 0.0) + moved
                        )
        self._last_settle = now

    def _reallocate(self) -> None:
        """Progressive-filling max-min allocation + completion timer."""
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        if not self._flows:
            return

        flows = list(self._flows.values())
        capacities = {
            link_id: self._links[link_id].capacity
            for flow in flows
            for link_id in flow.route
        }
        rates = maxmin_allocate(capacities, [flow.route for flow in flows])
        for flow, rate in zip(flows, rates):
            flow.rate = rate

        # Completion times and the single pending timer.
        now = self.sim.now
        earliest = math.inf
        for flow in self._flows.values():
            if flow.rate <= 0.0:  # pragma: no cover - defensive
                flow.finish_time = math.inf
                continue
            flow.finish_time = now + flow.remaining / flow.rate
            if flow.finish_time < earliest:
                earliest = flow.finish_time
        if not math.isinf(earliest):
            self._timer = self.sim.schedule(earliest - now, self._on_timer)

    def hottest_links(self, top: int = 10) -> list[tuple[str, float]]:
        """The most-trafficked links as (name, bytes), descending.

        Private per-flow cap links are excluded; use this to explain
        contention results (e.g. which torus links the random
        placement saturates).
        """
        ranked = sorted(self.link_bytes.items(), key=lambda kv: -kv[1])
        out = []
        for link_id, nbytes in ranked:
            link = self._links.get(link_id)
            if link is None or link.name.startswith("cap:"):
                continue
            out.append((link.name or str(link_id), nbytes))
            if len(out) >= top:
                break
        return out

    def _on_timer(self) -> None:
        self._timer = None
        self._settle()
        now = self.sim.now
        done = [
            f
            for f in self._flows.values()
            if f.remaining <= _EPS_BYTES or f.finish_time <= now + _EPS_TIME
        ]
        for flow in done:
            del self._flows[flow.flow_id]
            if flow.private_link is not None:
                del self._links[flow.private_link]
            self.bytes_completed += flow.total_bytes
            self.flows_completed += 1
        self._reallocate()
        for flow in done:
            flow.event.trigger(now)
