"""Message-transfer cost model on top of topology + fluid network.

:class:`~repro.net.model.Fabric` binds a topology to a simulator and
prices individual transfers: startup latency (per message, plus per
fabric hop), a max-min-fair bandwidth phase, shared-memory copy
semantics for intra-node messages, and an eager/rendezvous protocol
threshold used by the MPI point-to-point layer.
"""

from repro.net.model import Fabric, NetParams

__all__ = ["Fabric", "NetParams"]
