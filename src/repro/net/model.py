"""Transfer pricing: latency + shared-bandwidth phase per message.

Two modelling decisions come straight from the paper:

* **Shared-memory halving** (Sec. 4.1): "On shared memory platforms,
  the results generally reflect half of the memory-to-memory copy
  bandwidth because most MPI implementations have to buffer the
  message in a shared memory section."  Intra-node transfers are
  therefore rate-capped at ``copy_bw * copy_penalty`` with
  ``copy_penalty = 0.5`` by default.

* **Per-message protocol cap**: an MPI stack rarely drives a link at
  hardware speed (T3E: ~330 MB/s ping-pong on faster physical links),
  so a single message's rate is capped at ``msg_rate_cap`` even when
  the fluid allocation would give it more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.fluid import FlowNetwork
from repro.sim.process import SimEvent, on_trigger
from repro.topology.base import Route, Topology


@dataclass(frozen=True, slots=True)
class NetParams:
    """Cost-model constants for one machine's interconnect + MPI stack."""

    #: per-message startup latency for inter-node transfers (seconds)
    latency: float = 10e-6
    #: additional latency per fabric hop (seconds)
    per_hop_latency: float = 0.0
    #: startup latency for intra-node (shared-memory) transfers
    intra_node_latency: float = 2e-6
    #: messages <= this many bytes use the eager protocol
    eager_threshold: int = 8 * 1024
    #: extra handshake delay for rendezvous-protocol messages (seconds)
    rendezvous_latency: float = 10e-6
    #: memory-copy bandwidth of one processor (bytes/s); None = uncapped
    copy_bw: float | None = None
    #: fraction of copy_bw usable by shared-memory MPI (paper: 1/2)
    copy_penalty: float = 0.5
    #: per-message bandwidth cap through the fabric (bytes/s); None = links only
    msg_rate_cap: float | None = None
    #: relative timing noise on per-message startup latency (0 = exact).
    #: Real machines jitter, which is why the paper's b_eff takes the
    #: maximum over three repetitions; enable this to watch that
    #: mechanism matter (drawn deterministically from a seeded stream).
    jitter: float = 0.0

    def __post_init__(self) -> None:
        for name in ("latency", "per_hop_latency", "intra_node_latency", "rendezvous_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")
        if self.copy_bw is not None and self.copy_bw <= 0:
            raise ValueError("copy_bw must be positive when given")
        if not (0.0 < self.copy_penalty <= 1.0):
            raise ValueError("copy_penalty must be in (0, 1]")
        if self.msg_rate_cap is not None and self.msg_rate_cap <= 0:
            raise ValueError("msg_rate_cap must be positive when given")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")


class Fabric:
    """Prices and executes transfers over an attached topology."""

    __slots__ = (
        "sim", "topology", "params", "tracer", "fluid_mode", "flows",
        "_route_cache", "_jitter_rng", "faults", "messages_sent", "bytes_sent",
    )

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        params: NetParams,
        jitter_seed: int = 20010423,
        tracer=None,
        fluid_mode: str = "incremental",
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.params = params
        #: optional repro.sim.trace.Tracer recording every transfer
        self.tracer = tracer
        #: "incremental" (batched, component-local allocation) or
        #: "reference" (seed full-oracle reallocation per event); see
        #: repro.sim.fluid — results agree, only wall-clock differs
        self.fluid_mode = fluid_mode
        self.flows = FlowNetwork(sim, mode=fluid_mode)
        topology.attach(self.flows)
        #: (src, dst) -> Route; benchmark loops re-send the same pairs
        #: thousands of times, so routing is computed once per pair
        self._route_cache: dict[tuple[int, int], Route] = {}
        self._jitter_rng = None
        if params.jitter > 0.0:
            from repro.sim.randomness import RandomStreams

            self._jitter_rng = RandomStreams(jitter_seed).stream("fabric.jitter")
        #: attached repro.faults.inject.FaultInjector, or None (the
        #: default) — kept None-checked on the hot path so undisturbed
        #: runs pay one attribute test per message
        self.faults = None
        #: transfer statistics
        self.messages_sent = 0
        self.bytes_sent = 0

    def _jittered(self, latency: float) -> float:
        if self._jitter_rng is None:
            return latency
        factor = 1.0 + self.params.jitter * float(self._jitter_rng.uniform(-1.0, 1.0))
        return latency * factor

    # -- cost queries -----------------------------------------------------

    def route(self, src: int, dst: int) -> Route:
        """Cached topology route from ``src`` to ``dst``."""
        key = (src, dst)
        route = self._route_cache.get(key)
        if route is None:
            route = self._route_cache[key] = self.topology.route(src, dst)
        return route

    def startup_latency(self, route: Route) -> float:
        """Latency before the first byte moves (no rendezvous handshake)."""
        if route.intra_node:
            return self.params.intra_node_latency
        return self.params.latency + self.params.per_hop_latency * route.hops

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.params.eager_threshold

    def rendezvous_delay(self, route: Route) -> float:
        """Extra handshake time for a non-eager message on this route."""
        return self.params.rendezvous_latency + self.params.per_hop_latency * route.hops

    def rate_cap_for(self, route: Route) -> float | None:
        """Per-message rate cap on this route (copy/protocol limits)."""
        if route.intra_node:
            if self.params.copy_bw is None:
                return self.params.msg_rate_cap
            return self.params.copy_bw * self.params.copy_penalty
        return self.params.msg_rate_cap

    # -- execution --------------------------------------------------------

    def transfer_event(self, src: int, dst: int, nbytes: int) -> SimEvent:
        """Start a transfer *now*; the returned event fires on arrival.

        The event triggers after startup latency plus the fluid
        bandwidth phase.  Rendezvous handshakes are the p2p layer's
        job (they need receiver state); this method only moves bytes.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes!r}")
        route = self.route(src, dst)
        done = SimEvent(self.sim, name=f"xfer:{src}->{dst}:{nbytes}")
        latency = self.startup_latency(route)
        if self.faults is not None:
            latency = self.faults.adjust_latency(src, dst, latency)
        latency = self._jittered(latency)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "msg", src, dst, nbytes)

        def begin_flow() -> None:
            flow_done = self.flows.start_flow(
                list(route.links), nbytes, rate_cap=self.rate_cap_for(route)
            )
            on_trigger(flow_done, lambda _value: done.trigger(self.sim.now))

        self.sim.schedule(latency, begin_flow)
        return done

    def transfer(self, src: int, dst: int, nbytes: int):
        """Generator form of :meth:`transfer_event` for ``yield from``."""
        yield self.transfer_event(src, dst, nbytes)
