"""b_eff_io aggregation (paper Sec. 5.1).

* pattern-type value: transferred bytes / (time from open to close);
* access-method value: average of the pattern types with the
  scattering type (type 0) double-weighted;
* partition value: 25 % initial write + 25 % rewrite + 50 % read;
* system value: maximum over partitions (with T >= 15 min for an
  official number — we record T so callers can enforce that).

The weights and the reduction structure live in
:mod:`repro.runtime.formulas`; this module maps
:class:`TypeResult` lists onto keyed leaves, evaluates the tree, and
keeps the legacy function surface as thin shims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults.validity import RunValidity, classify
from repro.runtime.formulas import (
    ACCESS_METHODS,
    METHOD_WEIGHTS,
    beffio_formula,
)
from repro.runtime.reduce import (
    Formula,
    Key,
    evaluate,
    evaluate_partial,
    max_over,
    weighted_avg,
)

__all__ = [
    "ACCESS_METHODS",
    "METHOD_WEIGHTS",
    "TypeResult",
    "method_value",
    "partition_value",
    "aggregate",
    "aggregate_partial",
    "cache_rule",
    "bytes_per_method",
    "system_value",
]


@dataclass(frozen=True)
class TypeResult:
    """One pattern type under one access method."""

    method: str
    pattern_type: int
    nbytes: int  # total across processes
    time: float  # open-to-close seconds
    reps: int  # total repetitions across patterns

    @property
    def bandwidth(self) -> float:
        if self.time <= 0:
            raise ValueError("non-positive open-to-close time")
        return self.nbytes / self.time


def _leaves(type_results: list[TypeResult]) -> list[tuple[Key, float]]:
    """Type results as formula leaves keyed (method, pattern type)."""
    return [((t.method, t.pattern_type), t.bandwidth) for t in type_results]


def method_value(
    type_results: list[TypeResult],
    formula: Formula | None = None,
) -> float:
    """Weighted average over pattern types; scatter type counts twice
    under the default (paper) formula, per-scenario weights otherwise."""
    if not type_results:
        raise ValueError("no pattern types measured")
    methods = {t.method for t in type_results}
    if len(methods) != 1:
        raise ValueError(f"mixed access methods {methods}")
    type_step = (formula or beffio_formula()).steps[1]
    values = [t.bandwidth for t in type_results]
    weights = [type_step.weight_of(t.pattern_type) for t in type_results]
    return weighted_avg(values, weights)


def partition_value(method_values: dict[str, float]) -> float:
    """25 % write, 25 % rewrite, 50 % read."""
    missing = [m for m in ACCESS_METHODS if m not in method_values]
    if missing:
        raise ValueError(f"missing access methods: {missing}")
    values = [method_values[m] for m in ACCESS_METHODS]
    weights = [METHOD_WEIGHTS[m] for m in ACCESS_METHODS]
    return weighted_avg(values, weights)


def aggregate(
    type_results: list[TypeResult],
    formula: Formula | None = None,
) -> tuple[dict[str, float], float]:
    """(method values, b_eff_io) of a complete, undisturbed run.

    ``formula`` is a per-scenario reduction tree
    (:meth:`repro.scenarios.grammar.IOScenario.formula`); None
    evaluates the paper's :func:`beffio_formula` — which is exactly
    what the paper scenario's own tree reduces to.
    """
    ev = evaluate(formula or beffio_formula(), _leaves(type_results))
    method_values = {m: ev.table("type")[(m,)] for m in ACCESS_METHODS}
    return method_values, ev.value


def aggregate_partial(
    type_results: list[TypeResult],
    expected: list[tuple[str, int]],
    flagged: tuple[str, ...] = (),
    failure: str = "",
    formula: Formula | None = None,
) -> tuple[dict[str, float], float, RunValidity]:
    """Best-effort (method values, b_eff_io, validity) of a faulted run.

    ``expected`` lists every (access method, pattern type) pair the
    configuration scheduled.  Both aggregation steps — the per-method
    type average and the 1/1/2 method weighting — are *averages*, so a
    missing pair makes its method value (and hence b_eff_io) ``nan``
    and the run ``invalid``; surviving method values are exactly what
    :func:`method_value` computes from complete methods.  A complete
    but ``flagged`` (over-budget) run keeps exact values and is merely
    ``degraded``.
    """
    expected_set = set(expected)
    leaves = [
        ((t.method, t.pattern_type), t.bandwidth)
        for t in type_results
        if (t.method, t.pattern_type) in expected_set
    ]
    ev = evaluate_partial(formula or beffio_formula(), leaves, list(expected))
    method_values = {
        m: ev.table("type").get((m,), math.nan) for m in ACCESS_METHODS
    }
    skipped = tuple(f"{m}/t{pt}" for m, pt in ev.missing)
    validity = classify(skipped, tuple(flagged), failure)
    return method_values, ev.value, validity


def cache_rule(nbytes_per_method: dict[str, int], cache_bytes: int,
               factor: float = 20.0) -> dict[str, bool]:
    """The paper's Sec. 5.4 disk-residency rule, per access method.

    "One must write a dataset 20 times larger than the memory cache
    length of the filesystem.  This can be controlled by verifying
    that the datasize accessed by each b_eff_io access method is
    larger than 20 times of the filesystems' cache length."

    Returns ``{method: rule_satisfied}``; a False means the method's
    bandwidth may be cache-inflated.
    """
    if cache_bytes < 0:
        raise ValueError("cache_bytes must be >= 0")
    if factor <= 0:
        raise ValueError("factor must be positive")
    return {
        method: nbytes >= factor * cache_bytes
        for method, nbytes in nbytes_per_method.items()
    }


def bytes_per_method(type_results: list[TypeResult]) -> dict[str, int]:
    """Total bytes each access method moved (input to :func:`cache_rule`)."""
    out: dict[str, int] = {}
    for t in type_results:
        out[t.method] = out.get(t.method, 0) + t.nbytes
    return out


def system_value(partition_values: dict[int, float], minimum_T: float | None = None,
                 Ts: dict[int, float] | None = None) -> float:
    """Max over partitions; optionally only those with T >= minimum_T."""
    if not partition_values:
        raise ValueError("no partitions measured")
    eligible = partition_values
    if minimum_T is not None:
        if Ts is None:
            raise ValueError("need per-partition T values to filter")
        eligible = {
            n: v for n, v in partition_values.items() if Ts.get(n, 0.0) >= minimum_T
        }
        if not eligible:
            raise ValueError(f"no partition ran with T >= {minimum_T}")
    return max_over(eligible.values())
