"""The full b_eff_io benchmark for one partition.

Execution order (paper Sec. 5.1): for each access method (initial
write, rewrite, read), for each pattern type, open an individual
file, run the type's patterns under the time-driven scheduler, sync
(write methods, after every pattern loop) and close; the open-to-
close wall time and the transferred bytes give the pattern-type
bandwidth.  The segmented types (3, 4) get their per-process segment
size from the repetition factors measured for types 0-2.

The rewrite and read passes never run a pattern for more repetitions
than the initial write recorded, so they always access data the
write pass produced.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.beffio import analysis
from repro.beffio.analysis import ACCESS_METHODS, TypeResult
from repro.beffio.patterns import (
    SUM_U,
    IOPattern,
    build_patterns,
    extension_patterns,
    mpart_for,
    patterns_of_type,
)
from repro.beffio.fastforward import FFSession
from repro.beffio.scheduler import (
    collective_timed_loop,
    counted_loop,
    geometric_timed_loop,
    local_timed_loop,
    pattern_time,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.validity import VALID, RunValidity
from repro.sim.engine import DeadlockError, EventBudgetError
from repro.sim.randomness import RandomStreams
from repro.beffio.segments import estimate_segment_size
from repro.mpi.comm import World
from repro.mpiio.file import IOFile
from repro.mpiio.fileview import ContiguousView, StridedView
from repro.pfs.filesystem import FileSystem
from repro.util import MB

if TYPE_CHECKING:
    from repro.scenarios.grammar import IOScenario


@dataclass(frozen=True)
class BeffIOConfig:
    """Knobs of one b_eff_io partition run."""

    #: scheduled time for the partition, seconds (paper: >= 900 for
    #: official numbers; scaled-down values preserve the shapes)
    T: float = 900.0
    pattern_types: tuple[int, ...] = (0, 1, 2, 3, 4)
    #: run only the wellformed (power-of-two sized) rows of Table 2;
    #: each pattern keeps its own T/3 * U/sum(U) schedule share, the
    #: non-wellformed rows simply do not run.  The paper reports the
    #: two families separately, and they behave very differently under
    #: the fast path: a non-wellformed repetition advances the file by
    #: an offset that is not a multiple of the stripe period, so its
    #: per-server request stream rotates with a period usually far
    #: beyond :data:`repro.beffio.fastforward.MAX_PERIOD`
    wellformed_only: bool = False
    #: False = MPI_File_sync only publishes (**paper semantics**, the
    #: Sec. 5.4 caveat; also the default of ``mpiio.file.open_file``);
    #: True = sync waits for disk writeback
    sync_drains: bool = False
    cb_buffer: int = 4 * MB
    num_aggregators: int | None = None
    file_prefix: str = "beffio"
    segment_fallback_reps: float = 8.0
    #: optional cap on the per-process segment (the 2/n GB rule)
    max_segment: int | None = None
    #: collective-loop termination: "per-iteration" is the paper's
    #: released algorithm (barrier+bcast every repetition);
    #: "geometric" is its Sec. 5.4 proposed improvement
    termination: str = "per-iteration"
    #: seed for the random access pattern extension (type 5)
    random_seed: int = 20010423
    #: "fast" arms the steady-state repetition fast-forward (see
    #: :mod:`repro.beffio.fastforward`); "reference" simulates every
    #: repetition event for event — the bit-identity oracle
    mode: str = "fast"
    #: fault plan injected into the simulated machine; a non-empty
    #: plan forces reference-mode loops (mid-run fault transitions
    #: break the fast-forward's periodicity proofs)
    faults: FaultPlan | None = None
    #: per-pattern simulated-seconds cap; caps each timed loop's
    #: deadline and flags patterns that still overran (skip-and-flag)
    pattern_budget: float | None = None
    #: hard cap on simulation events (never-hang guard under faults)
    event_budget: int | None = None
    #: declarative workload override (:mod:`repro.scenarios`): None
    #: runs the paper's pinned Table 2; an
    #: :class:`~repro.scenarios.grammar.IOScenario` compiles its own
    #: rows, scheduling denominator and reduction tree, and hashes
    #: into the run's store fingerprint.  ``pattern_types`` then
    #: *selects among* the scenario's types.
    scenario: "IOScenario | None" = None

    def __post_init__(self) -> None:
        if self.scenario is not None:
            from repro.scenarios.grammar import IOScenario

            if not isinstance(self.scenario, IOScenario):
                raise TypeError(
                    f"b_eff_io scenarios must be IOScenario, "
                    f"got {type(self.scenario).__name__}"
                )
        if self.T <= 0:
            raise ValueError("T must be positive")
        if not self.pattern_types:
            raise ValueError("need at least one pattern type")
        for t in self.pattern_types:
            if not (0 <= t <= 5):
                raise ValueError(f"bad pattern type {t}")
        if len(set(self.pattern_types)) != len(self.pattern_types):
            raise ValueError("duplicate pattern types")
        if self.cb_buffer < 1:
            raise ValueError("cb_buffer must be >= 1")
        if self.termination not in ("per-iteration", "geometric"):
            raise ValueError(f"unknown termination {self.termination!r}")
        if self.mode not in ("fast", "reference"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.pattern_budget is not None and self.pattern_budget <= 0:
            raise ValueError("pattern_budget must be positive when given")
        if self.event_budget is not None and self.event_budget < 1:
            raise ValueError("event_budget must be >= 1 when given")


@dataclass(frozen=True)
class PatternRun:
    """One pattern under one access method (a point in Fig. 4)."""

    method: str
    number: int
    pattern_type: int
    l: int
    L: int
    wellformed: bool
    reps: int  # loop repetitions (max across processes)
    nbytes: int  # transferred bytes, total across processes
    time: float  # loop duration, max across processes
    #: the loop overran its configured pattern budget (skip-and-flag)
    over_budget: bool = False

    @property
    def bandwidth(self) -> float:
        return self.nbytes / self.time if self.time > 0 else 0.0


@dataclass
class BeffIOResult:
    nprocs: int
    T: float
    mpart: int
    segment_size: int | None
    pattern_runs: list[PatternRun]
    type_results: list[TypeResult]
    method_values: dict[str, float]
    b_eff_io: float  # bytes/s for this partition
    #: trustworthiness of the aggregates (resilient runs may lose
    #: whole pattern types); ``valid`` for an undisturbed complete run
    validity: RunValidity = VALID
    #: the engine that actually ran the loops ("fast" | "reference";
    #: fault plans force "reference" regardless of the configured mode)
    engine_mode: str = "fast"
    #: seed of the injected fault plan (None for undisturbed runs)
    fault_seed: int | None = None

    def type_result(self, method: str, ptype: int) -> TypeResult:
        for t in self.type_results:
            if t.method == method and t.pattern_type == ptype:
                return t
        raise KeyError(f"no result for method={method!r} type={ptype}")

    def pattern_table(self, method: str) -> list[PatternRun]:
        """Fig. 4's rows: per-pattern bandwidths of one access method."""
        return [r for r in self.pattern_runs if r.method == method]


class _RunState:
    """Cross-rank shared state of one partition run."""

    def __init__(self) -> None:
        self.handles: dict[tuple[str, int], object] = {}
        self.write_reps: dict[tuple[int, int], int] = {}  # (pattern, rank) -> reps
        self.write_extent: dict[int, int] = {}  # pattern -> file bytes consumed (type 0)
        self.segment_size: int | None = None
        self.pattern_runs: list[PatternRun] = []
        self.type_results: list[TypeResult] = []
        #: fast-forward context (None in reference mode)
        self.ff_session: FFSession | None = None


def run_beffio(
    env_factory: Callable[[], tuple[World, FileSystem]],
    memory_per_proc: int,
    config: BeffIOConfig | None = None,
) -> BeffIOResult:
    """Run one b_eff_io partition; the process count comes from the world."""
    config = config or BeffIOConfig()
    world, fs = env_factory()
    comm = world.comm_world
    n = comm.size
    mpart = mpart_for(memory_per_proc)
    if config.scenario is not None:
        # the scenario owns the rows, the scheduling denominator and
        # the reduction tree; ``pattern_types`` selects among its types
        scenario = config.scenario
        patterns = scenario.compile(memory_per_proc)
        available = scenario.pattern_types() + scenario.extension_types()
        ptypes = tuple(t for t in config.pattern_types if t in available)
        if not ptypes:
            raise ValueError(
                f"scenario {scenario.name!r} provides pattern types "
                f"{available}; none selected by "
                f"pattern_types={config.pattern_types}"
            )
        sum_u = scenario.sum_u
        formula = scenario.formula()
    else:
        patterns = build_patterns(memory_per_proc)
        if 5 in config.pattern_types:
            patterns = patterns + extension_patterns(memory_per_proc)
        ptypes = config.pattern_types
        sum_u = SUM_U
        formula = None
    state = _RunState()
    # Mid-run fault transitions break the fast-forward's loop
    # periodicity proofs, so a non-empty plan forces reference loops.
    if config.mode == "fast" and not config.faults:
        state.ff_session = FFSession(world, fs)
    if config.faults:
        injector = FaultInjector(config.faults)
        injector.attach(world.sim, fabric=world.fabric, fs=fs)
    singleton_comms = [comm.create([r]) for r in range(n)]

    def program(rank_comm):
        yield from _partition_pass(
            rank_comm, fs, patterns, config, state, singleton_comms, mpart,
            ptypes, sum_u,
        )

    failure = ""
    try:
        world.run(program, max_events=config.event_budget)
    except (DeadlockError, EventBudgetError) as exc:
        if not (config.faults or config.event_budget):
            raise
        failure = f"{type(exc).__name__}: {exc}"

    flagged = tuple(
        f"{r.method}/t{r.pattern_type}/p{r.number}"
        for r in state.pattern_runs
        if r.over_budget
    )
    expected = [(m, pt) for m in ACCESS_METHODS for pt in ptypes]
    complete = {(t.method, t.pattern_type) for t in state.type_results} >= set(expected)
    if complete and not flagged and not failure:
        # undisturbed path: the exact seed aggregation, bit-identical
        method_values, beffio = analysis.aggregate(state.type_results, formula=formula)
        validity = VALID
    else:
        method_values, beffio, validity = analysis.aggregate_partial(
            state.type_results, expected, flagged=flagged, failure=failure,
            formula=formula,
        )
    return BeffIOResult(
        nprocs=n,
        T=config.T,
        mpart=mpart,
        segment_size=state.segment_size,
        pattern_runs=state.pattern_runs,
        type_results=state.type_results,
        method_values=method_values,
        b_eff_io=beffio,
        validity=validity,
        engine_mode="fast" if state.ff_session is not None else "reference",
        fault_seed=config.faults.seed if config.faults else None,
    )


# ---------------------------------------------------------------------------
# rank program
# ---------------------------------------------------------------------------


def _partition_pass(comm, fs, patterns, config, state, singleton_comms, mpart,
                    ptypes, sum_u):
    n = comm.size
    rank = comm.rank
    for method in ACCESS_METHODS:
        for ptype in ptypes:
            tp_patterns = patterns_of_type(patterns, ptype)
            if config.wellformed_only:
                tp_patterns = [
                    p for p in tp_patterns if p.wellformed or p.fill_segment
                ]
            if ptype in (3, 4, 5) and state.segment_size is None:
                state.segment_size = estimate_segment_size(
                    state.pattern_runs,
                    [p for p in tp_patterns if not p.fill_segment],
                    fallback_reps=config.segment_fallback_reps,
                    max_segment=config.max_segment,
                )
            yield from comm.barrier()
            t_open = comm.wtime()
            handles = _open_type(state, method, ptype, comm, fs, config, singleton_comms)
            base = 0  # type-0 file offset consumed by earlier patterns
            type_bytes = 0
            type_reps = 0
            for p in tp_patterns:
                run = yield from _run_pattern(
                    comm, handles, p, method, config, state, base, sum_u
                )
                if p.pattern_type == 0:
                    base += state.write_extent.get(p.number, 0)
                if rank == 0 and run is not None:
                    state.pattern_runs.append(run)
                    type_bytes += run.nbytes
                    type_reps += run.reps
            yield from _close_type(handles, comm)
            yield from comm.barrier()
            t_close = comm.wtime()
            if rank == 0:
                state.type_results.append(
                    TypeResult(
                        method=method,
                        pattern_type=ptype,
                        nbytes=type_bytes,
                        time=t_close - t_open,
                        reps=type_reps,
                    )
                )


def _open_type(state, method, ptype, comm, fs, config, singleton_comms):
    """Open the type's file(s); idempotent across ranks (first one wins)."""
    key = (method, ptype)
    handles = state.handles.get(key)
    if handles is None:
        name = f"{config.file_prefix}.t{ptype}"
        kwargs = dict(
            cb_buffer=config.cb_buffer,
            num_aggregators=config.num_aggregators,
            sync_drains=config.sync_drains,
        )
        if ptype == 2:
            files = [
                IOFile(singleton_comms[r], fs, f"{name}.{r}", **kwargs)
                for r in range(comm.size)
            ]
            handles = ("per-rank", files)
        else:
            handles = ("single", IOFile(comm.comm, fs, name, **kwargs))
        state.handles[key] = handles
    return handles


def _close_type(handles, comm):
    kind, obj = handles
    if kind == "per-rank":
        yield from obj[comm.rank].close(0)
    else:
        yield from obj.close(comm.rank)


def _sync_pattern(handles, comm):
    kind, obj = handles
    if kind == "per-rank":
        yield from obj[comm.rank].sync(0)
    else:
        yield from obj.sync(comm.rank)


def _run_pattern(comm, handles, p: IOPattern, method, config, state, base, sum_u):
    """Execute one pattern's timed loop; returns a PatternRun on rank 0."""
    n = comm.size
    rank = comm.rank
    kind, obj = handles
    seg = state.segment_size

    # -- configure views / bodies per pattern type -------------------------
    if p.pattern_type == 0:
        f: IOFile = obj
        f.set_view(rank, StridedView(base + rank * p.l, p.l, n * p.l))
        call_bytes = p.L
        if method == "read":
            body = lambda: f.read_all(rank, p.L)
        else:
            body = lambda: f.write_all(rank, p.L)
        collective = True
    elif p.pattern_type == 1:
        f = obj
        call_bytes = p.l
        if method == "read":
            body = lambda: f.read_ordered(rank, p.l)
        else:
            body = lambda: f.write_ordered(rank, p.l)
        collective = True
    elif p.pattern_type == 2:
        f = obj[rank]
        call_bytes = p.l
        if method == "read":
            body = lambda: f.read(0, p.l)
        else:
            body = lambda: f.write(0, p.l)
        collective = False
    elif p.pattern_type == 5:
        # random access extension: chunk-aligned random offsets inside
        # the rank's segment; the offset stream depends only on
        # (seed, pattern, rank) so rewrite and read revisit the
        # initial write's locations
        f = obj
        call_bytes = p.l
        collective = False
        slots = max(1, seg // p.l)
        rng = RandomStreams(config.random_seed).stream(
            f"beffio.t5.p{p.number}.r{rank}"
        )
        base_disp = rank * seg

        def body(f=f, rng=rng, slots=slots, base=base_disp, l=p.l, rd=(method == "read")):
            offset = base + int(rng.integers(0, slots)) * l
            if rd:
                yield from f.read_at(rank, offset, l)
            else:
                yield from f.write_at(rank, offset, l)
    else:  # 3 and 4: segmented file
        f = obj
        # Install the segment view exactly once per (method, type) per
        # rank — set_view rewinds the pointer, and patterns of a type
        # continue where the previous pattern stopped.
        view = f.view(rank)
        if not isinstance(view, ContiguousView) or view.disp != rank * seg:
            f.set_view(rank, ContiguousView(rank * seg))
        call_bytes = p.l
        collective = p.pattern_type == 4
        if collective:
            if method == "read":
                body = lambda: f.read_all(rank, p.l)
            else:
                body = lambda: f.write_all(rank, p.l)
        else:
            if method == "read":
                body = lambda: f.read(rank, p.l)
            else:
                body = lambda: f.write(rank, p.l)

    # -- repetition limits ---------------------------------------------------
    # A limit of 0 means "run no repetitions" — the rank still takes
    # part in the sync and the reductions below, so collectives stay
    # matched across ranks.
    max_reps: int | None = None
    if p.U == 0 and not p.fill_segment:
        max_reps = 1
    if p.fill_segment:
        # size-driven: fill the remaining segment with fixed chunks
        max_reps = max(0, (seg - f.tell(rank)) // p.l)
    if p.pattern_type in (3, 4) and not p.fill_segment:
        capacity = max(0, (seg - f.tell(rank)) // p.l)
        max_reps = capacity if max_reps is None else min(max_reps, capacity)
    if method != "write":
        written = state.write_reps.get((p.number, rank))
        if written is not None:
            max_reps = written if max_reps is None else min(max_reps, written)

    # -- the fast-forward controller (shared across the loop's ranks) --------
    # The random type never settles into a shift-periodic orbit, the
    # geometric loop already amortizes its termination rounds, and
    # short capped loops are not worth the tracking — all of those run
    # plain.  Reference mode disables the whole machinery.
    geometric = collective and not p.fill_segment and config.termination == "geometric"
    ff = None
    session = state.ff_session
    if (
        session is not None
        and p.pattern_type != 5
        and not geometric
        and (max_reps is None or max_reps >= 8)
    ):
        ff_kind = (
            "count" if p.fill_segment else ("collective" if collective else "local")
        )
        ff = session.loop_for((method, p.number), handles, n, ff_kind)

    # -- the timed loop --------------------------------------------------------
    # The budget caps the loop's own deadline (the root still decides
    # termination collectively, so the schedule stays matched); a
    # pattern that overruns anyway — one slow body, a U=0 single shot —
    # is flagged from the allreduced loop time below.
    if p.U > 0:
        share = pattern_time(config.T, p.U, sum_u)
        if config.pattern_budget is not None and share > config.pattern_budget:
            share = config.pattern_budget
        t_end = comm.wtime() + share
    else:
        t_end = comm.wtime()
    t_start = comm.wtime()
    if max_reps == 0:
        reps = 0
    elif p.fill_segment:
        reps = yield from counted_loop(comm, body, max_reps, ff=ff)
    elif collective:
        if geometric:
            reps = yield from geometric_timed_loop(comm, t_end, body, max_reps)
        else:
            reps = yield from collective_timed_loop(comm, t_end, body, max_reps, ff=ff)
    else:
        reps = yield from local_timed_loop(comm, t_end, body, max_reps, ff=ff)
    if ff is not None:
        ff.finish()
    if method != "read":
        yield from _sync_pattern(handles, comm)
    local_time = comm.wtime() - t_start

    # -- bookkeeping (reductions make values identical on all ranks) ----------
    local_bytes = reps * call_bytes
    total_bytes = yield from comm.allreduce(8, local_bytes, lambda a, b: a + b)
    max_time = yield from comm.allreduce(8, local_time, max)
    max_reps_seen = yield from comm.allreduce(8, reps, max)
    if method == "write":
        state.write_reps[(p.number, rank)] = reps
        if p.pattern_type == 0:
            # file region consumed: all ranks interleave reps*L each
            state.write_extent[p.number] = comm.size * reps * p.L
    if rank == 0:
        # ``max_time`` is allreduced, so the flag is rank-independent.
        over = config.pattern_budget is not None and max_time > config.pattern_budget
        return PatternRun(
            method=method,
            number=p.number,
            pattern_type=p.pattern_type,
            l=p.l,
            L=p.L,
            wellformed=p.wellformed,
            reps=max_reps_seen,
            nbytes=total_bytes,
            time=max_time,
            over_budget=over,
        )
    return None
