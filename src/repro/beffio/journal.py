"""Crash-safe journal for resumable b_eff_io sweeps (compat shim).

The journal implementation lives in :mod:`repro.runtime.sweep` — one
directory layout (``manifest.json`` + atomic ``partition_<n>.json``
envelopes) shared by both benchmarks.  This module keeps the legacy
b_eff_io import surface.
"""

from __future__ import annotations

from repro.beffio.benchmark import BeffIOConfig
from repro.runtime.spec import sweep_fingerprint
from repro.runtime.sweep import (
    JOURNAL_SCHEMA,
    JournalMismatchError,
    SweepJournal,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalMismatchError",
    "SweepJournal",
    "config_fingerprint",
]


def config_fingerprint(machine: str, config: BeffIOConfig) -> str:
    """Stable hash of (machine, config) pinning what a journal recorded.

    Delegates to the unified :func:`repro.runtime.spec.
    sweep_fingerprint`, which hashes the engine mode and fault-plan
    seed explicitly on top of the flattened config.
    """
    return sweep_fingerprint("b_eff_io", machine, config)
