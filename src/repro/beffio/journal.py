"""Crash-safe journal for resumable b_eff_io sweeps.

A journal is a directory: ``manifest.json`` pins the machine and a
fingerprint of the :class:`~repro.beffio.benchmark.BeffIOConfig`, and
each completed partition is one ``partition_<n>.json`` written
atomically (temp file + ``os.replace``) the moment it finishes.  A
killed sweep therefore leaves either a complete partition file or
none — never a torn one — and ``--resume`` replays the completed
partitions bit-identically (JSON float serialization round-trips
exactly) while running only the missing ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

from repro.beffio.benchmark import BeffIOConfig, BeffIOResult

#: journal layout version
JOURNAL_SCHEMA = 1


class JournalMismatchError(RuntimeError):
    """Resume attempted against a journal from a different sweep."""


def config_fingerprint(machine: str, config: BeffIOConfig) -> str:
    """Stable hash of (machine, config) pinning what a journal recorded.

    ``dataclasses.asdict`` recurses into a nested
    :class:`~repro.faults.plan.FaultPlan`, so two configs differing
    only in their fault schedule get different fingerprints.
    """
    payload = {"machine": machine, "config": dataclasses.asdict(config)}
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


class SweepJournal:
    """One sweep's on-disk state."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.path / "manifest.json"

    def partition_path(self, nprocs: int) -> pathlib.Path:
        return self.path / f"partition_{nprocs}.json"

    # -- lifecycle -----------------------------------------------------

    def start(self, machine: str, fingerprint: str) -> None:
        """Begin a fresh sweep: wipe stale partitions, pin the manifest."""
        from repro.reporting.export import write_json_atomic

        self.path.mkdir(parents=True, exist_ok=True)
        for stale in self.path.glob("partition_*.json"):
            stale.unlink()
        write_json_atomic(
            self.manifest_path,
            {"schema": JOURNAL_SCHEMA, "machine": machine, "fingerprint": fingerprint},
        )

    def check(self, machine: str, fingerprint: str) -> None:
        """Verify this journal belongs to (machine, config) before resuming."""
        if not self.manifest_path.exists():
            raise JournalMismatchError(
                f"no journal manifest at {self.manifest_path} — nothing to resume"
            )
        manifest = json.loads(self.manifest_path.read_text())
        if manifest.get("schema") != JOURNAL_SCHEMA:
            raise JournalMismatchError(
                f"journal schema {manifest.get('schema')!r} != {JOURNAL_SCHEMA}"
            )
        if manifest.get("machine") != machine or manifest.get("fingerprint") != fingerprint:
            raise JournalMismatchError(
                f"journal at {self.path} was written by a different sweep "
                f"(machine {manifest.get('machine')!r}, or the config changed); "
                "refusing to mix results"
            )

    # -- partition records ---------------------------------------------

    def record(self, result: BeffIOResult, machine: str) -> None:
        """Atomically persist one completed partition."""
        from repro.reporting.export import beffio_to_dict, write_json_atomic

        write_json_atomic(
            self.partition_path(result.nprocs), beffio_to_dict(result, machine)
        )

    def completed(self) -> dict[int, BeffIOResult]:
        """Load every journaled partition, keyed by process count."""
        from repro.reporting.export import beffio_from_dict

        out: dict[int, BeffIOResult] = {}
        for path in sorted(self.path.glob("partition_*.json")):
            result = beffio_from_dict(json.loads(path.read_text()))
            out[result.nprocs] = result
        return out
