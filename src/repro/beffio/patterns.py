"""The Table 2 pattern list.

Five pattern types (paper Fig. 2):

* type 0 — strided collective access scattering memory chunks of L
  bytes to/from disk chunks of l bytes in a single MPI-IO call;
* type 1 — shared file pointer, collective, one call per disk chunk;
* type 2 — noncollective access to one file per MPI process;
* type 3 — the separate files assembled into one *segmented* file,
  noncollective;
* type 4 — the segmented file accessed with collective routines.

Chunk sizes are 1 kB, 32 kB, 1 MB and M_PART = max(2 MB, memory per
process / 128); each wellformed (power-of-two) size also appears in a
*non-wellformed* variant with 8 bytes added.  Every pattern carries a
time-unit weight U; the scheduled time of a pattern is
T/3 * U / sum(U) with sum(U) = 64.  Patterns with U = 0 run exactly
one repetition (they seed the access sequence of their type without
consuming scheduled time).

The table itself lives in the scenario layer: the factory functions
here are thin shims compiling the pinned
:data:`repro.scenarios.paper_table2.PAPER_TABLE2` grammar instance
(which golden parity tests prove bit-identical to the historic
hard-coded rows), while :class:`IOPattern` and the size rules stay
here for the scenario layer to import.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import KB, MB

#: total time units of the whole pattern list (paper Table 2)
SUM_U = 64

#: sentinel for the M_PART chunk size (resolved per machine)
MPART = "M_PART"

#: sentinel for "fill up segment" (pattern 33 and its type-4 mirror)
FILL_SEGMENT = "FILL"


def mpart_for(memory_per_proc: int) -> int:
    """M_PART = max(2 MB, memory of one node per MPI process / 128)."""
    if memory_per_proc <= 0:
        raise ValueError("memory_per_proc must be positive")
    return max(2 * MB, memory_per_proc // 128)


@dataclass(frozen=True)
class IOPattern:
    """One row of Table 2, with sizes resolved to bytes."""

    number: int  # paper numbering 0..42
    pattern_type: int  # 0..4
    l: int  # contiguous chunk on disk (bytes)
    L: int  # contiguous chunk in memory per call (bytes)
    U: int  # time units
    wellformed: bool
    fill_segment: bool = False

    def __post_init__(self) -> None:
        # types 0-4 are the paper's; type 5 is the random-access
        # extension its Sec. 6 proposes to examine
        if not (0 <= self.pattern_type <= 5):
            raise ValueError(f"bad pattern type {self.pattern_type}")
        if self.l < 1 or self.L < self.l:
            raise ValueError(f"bad sizes l={self.l} L={self.L}")
        if self.U < 0:
            raise ValueError("U must be >= 0")

    @property
    def chunks_per_call(self) -> int:
        """Disk chunks accessed by one call (> 1 only for type 0)."""
        return self.L // self.l

    @property
    def label(self) -> str:
        if self.wellformed:
            return _size_label(self.l)
        return f"{_size_label(self.l - 8)}+8"


def _size_label(nbytes: int) -> str:
    if nbytes % MB == 0:
        return f"{nbytes // MB} MB"
    if nbytes >= MB:
        return f"{nbytes / MB:.6g} MB"
    if nbytes % KB == 0:
        return f"{nbytes // KB} kB"
    return f"{nbytes} B"


def build_patterns(memory_per_proc: int) -> list[IOPattern]:
    """The full Table 2 list (43 rows; 36 with U > 0, sum(U) = 64).

    A thin shim compiling the core phases of the pinned
    :data:`repro.scenarios.paper_table2.PAPER_TABLE2` grammar
    instance; golden parity tests prove the rows bit-identical to the
    historic hard-coded table.
    """
    from repro.scenarios.paper_table2 import PAPER_TABLE2

    patterns = PAPER_TABLE2.compile(memory_per_proc)[: PAPER_TABLE2.num_core_rows]
    assert sum(p.U for p in patterns) == SUM_U
    return patterns


def extension_patterns(memory_per_proc: int) -> list[IOPattern]:
    """Pattern type 5: random access (the paper's Sec. 6 outlook).

    "Although [Crandall et al.] stated that 'the majority of the
    request patterns are sequential', we should examine whether random
    access patterns can be included into the b_eff_io benchmark."

    Type 5 mirrors the noncollective chunk rows of type 2, but each
    access lands at a *random* chunk-aligned offset inside the
    process's segment of a shared segmented file.  These patterns are
    NOT part of the standard Table 2 list (sum(U) stays 64); enabling
    them extends the scheduled time by their own U budget.  Compiled
    from the *extension* phase of the same pinned grammar instance as
    :func:`build_patterns`.
    """
    from repro.scenarios.paper_table2 import PAPER_TABLE2

    return PAPER_TABLE2.compile(memory_per_proc)[PAPER_TABLE2.num_core_rows :]


def patterns_of_type(patterns: list[IOPattern], ptype: int) -> list[IOPattern]:
    return [p for p in patterns if p.pattern_type == ptype]


def active_pattern_count(patterns: list[IOPattern]) -> int:
    """Patterns with scheduled time (the paper's '36 patterns')."""
    return sum(1 for p in patterns if p.U > 0)
