"""The Table 2 pattern list.

Five pattern types (paper Fig. 2):

* type 0 — strided collective access scattering memory chunks of L
  bytes to/from disk chunks of l bytes in a single MPI-IO call;
* type 1 — shared file pointer, collective, one call per disk chunk;
* type 2 — noncollective access to one file per MPI process;
* type 3 — the separate files assembled into one *segmented* file,
  noncollective;
* type 4 — the segmented file accessed with collective routines.

Chunk sizes are 1 kB, 32 kB, 1 MB and M_PART = max(2 MB, memory per
process / 128); each wellformed (power-of-two) size also appears in a
*non-wellformed* variant with 8 bytes added.  Every pattern carries a
time-unit weight U; the scheduled time of a pattern is
T/3 * U / sum(U) with sum(U) = 64.  Patterns with U = 0 run exactly
one repetition (they seed the access sequence of their type without
consuming scheduled time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import KB, MB

#: total time units of the whole pattern list (paper Table 2)
SUM_U = 64

#: sentinel for the M_PART chunk size (resolved per machine)
MPART = "M_PART"

#: sentinel for "fill up segment" (pattern 33 and its type-4 mirror)
FILL_SEGMENT = "FILL"


def mpart_for(memory_per_proc: int) -> int:
    """M_PART = max(2 MB, memory of one node per MPI process / 128)."""
    if memory_per_proc <= 0:
        raise ValueError("memory_per_proc must be positive")
    return max(2 * MB, memory_per_proc // 128)


@dataclass(frozen=True)
class IOPattern:
    """One row of Table 2, with sizes resolved to bytes."""

    number: int  # paper numbering 0..42
    pattern_type: int  # 0..4
    l: int  # contiguous chunk on disk (bytes)
    L: int  # contiguous chunk in memory per call (bytes)
    U: int  # time units
    wellformed: bool
    fill_segment: bool = False

    def __post_init__(self) -> None:
        # types 0-4 are the paper's; type 5 is the random-access
        # extension its Sec. 6 proposes to examine
        if not (0 <= self.pattern_type <= 5):
            raise ValueError(f"bad pattern type {self.pattern_type}")
        if self.l < 1 or self.L < self.l:
            raise ValueError(f"bad sizes l={self.l} L={self.L}")
        if self.U < 0:
            raise ValueError("U must be >= 0")

    @property
    def chunks_per_call(self) -> int:
        """Disk chunks accessed by one call (> 1 only for type 0)."""
        return self.L // self.l

    @property
    def label(self) -> str:
        if self.wellformed:
            return _size_label(self.l)
        return f"{_size_label(self.l - 8)}+8"


def _size_label(nbytes: int) -> str:
    if nbytes % MB == 0:
        return f"{nbytes // MB} MB"
    if nbytes >= MB:
        return f"{nbytes / MB:.6g} MB"
    if nbytes % KB == 0:
        return f"{nbytes // KB} kB"
    return f"{nbytes} B"


def _type0_rows(mpart: int) -> list[tuple[int, int, int, bool]]:
    """(l, L, U, wellformed) for the scatter type."""
    return [
        (MB, MB, 0, True),          # 0
        (mpart, mpart, 4, True),    # 1
        (MB, 2 * MB, 4, True),      # 2
        (MB, MB, 4, True),          # 3
        (32 * KB, MB, 2, True),     # 4
        (KB, MB, 2, True),          # 5
        (32 * KB + 8, MB + 256, 2, False),   # 6: 32 chunks per call
        (KB + 8, MB + 8 * KB, 2, False),     # 7: 1024 chunks per call
        (MB + 8, MB + 8, 2, False),          # 8: 1 chunk per call
    ]


def _per_chunk_rows(mpart: int, u_mpart: int, u_1mb: int, u_1mb8: int
                    ) -> list[tuple[int, int, int, bool]]:
    """(l, L=l, U, wellformed) rows shared by types 1 and 2/3/4."""
    return [
        (MB, MB, 0, True),
        (mpart, mpart, u_mpart, True),
        (MB, MB, u_1mb, True),
        (32 * KB, 32 * KB, 1, True),
        (KB, KB, 1, True),
        (32 * KB + 8, 32 * KB + 8, 1, False),
        (KB + 8, KB + 8, 1, False),
        (MB + 8, MB + 8, u_1mb8, False),
    ]


def build_patterns(memory_per_proc: int) -> list[IOPattern]:
    """The full Table 2 list (43 rows; 36 with U > 0, sum(U) = 64)."""
    mpart = mpart_for(memory_per_proc)
    patterns: list[IOPattern] = []
    number = 0

    def emit(ptype: int, rows: list, fill: bool = False) -> None:
        nonlocal number
        for l, L, U, wf in rows:
            patterns.append(
                IOPattern(
                    number=number,
                    pattern_type=ptype,
                    l=l,
                    L=L,
                    U=U,
                    wellformed=wf,
                    fill_segment=fill,
                )
            )
            number += 1

    emit(0, _type0_rows(mpart))                              # 0-8, U=22
    emit(1, _per_chunk_rows(mpart, u_mpart=4, u_1mb=2, u_1mb8=2))  # 9-16, U=12
    type2_rows = _per_chunk_rows(mpart, u_mpart=2, u_1mb=2, u_1mb8=2)
    emit(2, type2_rows)                                      # 17-24, U=10
    emit(3, type2_rows)                                      # 25-32
    emit(3, [(MB, MB, 0, True)], fill=True)                  # 33: fill up segment
    emit(4, type2_rows)                                      # 34-41
    emit(4, [(MB, MB, 0, True)], fill=True)                  # 42

    assert sum(p.U for p in patterns) == SUM_U
    return patterns


def extension_patterns(memory_per_proc: int) -> list[IOPattern]:
    """Pattern type 5: random access (the paper's Sec. 6 outlook).

    "Although [Crandall et al.] stated that 'the majority of the
    request patterns are sequential', we should examine whether random
    access patterns can be included into the b_eff_io benchmark."

    Type 5 mirrors the noncollective chunk rows of type 2, but each
    access lands at a *random* chunk-aligned offset inside the
    process's segment of a shared segmented file.  These patterns are
    NOT part of the standard Table 2 list (sum(U) stays 64); enabling
    them extends the scheduled time by their own U budget.
    """
    mpart = mpart_for(memory_per_proc)
    rows = _per_chunk_rows(mpart, u_mpart=2, u_1mb=2, u_1mb8=2)
    out = []
    for i, (l, L, U, wf) in enumerate(rows):
        out.append(
            IOPattern(
                number=43 + i,
                pattern_type=5,
                l=l,
                L=L,
                U=U,
                wellformed=wf,
            )
        )
    return out


def patterns_of_type(patterns: list[IOPattern], ptype: int) -> list[IOPattern]:
    return [p for p in patterns if p.pattern_type == ptype]


def active_pattern_count(patterns: list[IOPattern]) -> int:
    """Patterns with scheduled time (the paper's '36 patterns')."""
    return sum(1 for p in patterns if p.U > 0)
