"""Multi-partition b_eff_io runs and the system-level value.

The paper defines the b_eff_io *of a system* as the maximum over any
partition's value (with a scheduled time of at least 15 minutes for
official numbers).  This module sweeps partitions and applies that
rule, which is also exactly what Figs. 3 and 5 plot.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.beffio import analysis
from repro.beffio.benchmark import BeffIOConfig, BeffIOResult

#: the official minimum scheduled time (15 minutes)
OFFICIAL_MINIMUM_T = 900.0


@dataclass(frozen=True)
class SweepResult:
    """All partitions of one machine plus the system-level maximum."""

    machine: str
    results: tuple[BeffIOResult, ...]
    system_b_eff_io: float
    best_partition: int
    official: bool  # True when every run satisfied T >= 15 min

    def partition_values(self) -> dict[int, float]:
        return {r.nprocs: r.b_eff_io for r in self.results}


def _resolve(spec):
    """A machine key resolves through the registry; specs pass through."""
    if isinstance(spec, str):
        from repro.machines import get_machine

        return get_machine(spec)
    return spec


def _registry_key(spec) -> str:
    """Find the registry key of a spec (required to ship it to workers:
    a :class:`MachineSpec` holds environment-factory closures, so only
    the key crosses the process boundary)."""
    from repro.machines import MACHINES

    for key, factory in MACHINES.items():
        if factory().name == spec.name:
            return key
    raise ValueError(
        f"machine {spec.name!r} is not in the registry; pass the machine "
        "key (a string) to run_sweep for jobs > 1"
    )


def _run_partition(key: str, nprocs: int, config: BeffIOConfig) -> BeffIOResult:
    """Worker entry: rebuild the machine in-process and run one partition."""
    from repro.machines import get_machine

    return get_machine(key).run_beffio(nprocs, config)


def run_sweep(spec, partitions, config: BeffIOConfig | None = None,
              jobs: int = 1) -> SweepResult:
    """Run b_eff_io over several partition sizes of one machine.

    ``spec`` is a :class:`repro.machines.MachineSpec` or a machine
    registry key; ``partitions`` an iterable of process counts.
    Returns the per-partition results and the system value (max over
    partitions).  ``official`` reports whether the scheduled time
    satisfied the paper's 15-minute rule.

    ``jobs > 1`` runs partitions concurrently in worker processes.
    Every partition is an independent simulation from a fresh
    environment, so the results are bit-identical to a serial sweep —
    the workers only change wall-clock time.
    """
    partitions = sorted(set(partitions))
    if not partitions:
        raise ValueError("need at least one partition size")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    config = config or BeffIOConfig()
    if jobs > 1 and len(partitions) > 1:
        key = spec if isinstance(spec, str) else _registry_key(spec)
        with ProcessPoolExecutor(max_workers=min(jobs, len(partitions))) as pool:
            results = tuple(
                pool.map(_run_partition, [key] * len(partitions), partitions,
                         [config] * len(partitions))
            )
        spec = _resolve(spec)
    else:
        spec = _resolve(spec)
        results = tuple(spec.run_beffio(n, config) for n in partitions)
    values = {r.nprocs: r.b_eff_io for r in results}
    system = analysis.system_value(values)
    best = max(values, key=values.get)
    return SweepResult(
        machine=spec.name,
        results=results,
        system_b_eff_io=system,
        best_partition=best,
        official=config.T >= OFFICIAL_MINIMUM_T,
    )
