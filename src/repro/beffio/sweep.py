"""Multi-partition b_eff_io runs and the system-level value.

The paper defines the b_eff_io *of a system* as the maximum over any
partition's value (with a scheduled time of at least 15 minutes for
official numbers).  This module sweeps partitions and applies that
rule, which is also exactly what Figs. 3 and 5 plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.beffio import analysis
from repro.beffio.benchmark import BeffIOConfig, BeffIOResult

#: the official minimum scheduled time (15 minutes)
OFFICIAL_MINIMUM_T = 900.0


@dataclass(frozen=True)
class SweepResult:
    """All partitions of one machine plus the system-level maximum."""

    machine: str
    results: tuple[BeffIOResult, ...]
    system_b_eff_io: float
    best_partition: int
    official: bool  # True when every run satisfied T >= 15 min

    def partition_values(self) -> dict[int, float]:
        return {r.nprocs: r.b_eff_io for r in self.results}


def run_sweep(spec, partitions, config: BeffIOConfig | None = None) -> SweepResult:
    """Run b_eff_io over several partition sizes of one machine.

    ``spec`` is a :class:`repro.machines.MachineSpec`; ``partitions``
    an iterable of process counts.  Returns the per-partition results
    and the system value (max over partitions).  ``official`` reports
    whether the scheduled time satisfied the paper's 15-minute rule.
    """
    partitions = sorted(set(partitions))
    if not partitions:
        raise ValueError("need at least one partition size")
    config = config or BeffIOConfig()
    results = tuple(spec.run_beffio(n, config) for n in partitions)
    values = {r.nprocs: r.b_eff_io for r in results}
    system = analysis.system_value(values)
    best = max(values, key=values.get)
    return SweepResult(
        machine=spec.name,
        results=results,
        system_b_eff_io=system,
        best_partition=best,
        official=config.T >= OFFICIAL_MINIMUM_T,
    )
