"""Multi-partition b_eff_io runs and the system-level value.

The paper defines the b_eff_io *of a system* as the maximum over any
partition's value (with a scheduled time of at least 15 minutes for
official numbers).  This module sweeps partitions and applies that
rule, which is also exactly what Figs. 3 and 5 plot.

The orchestration — parallel partitions, crash-safe journaling,
resume, retries — lives in the benchmark-agnostic
:mod:`repro.runtime.sweep`; this module is the b_eff_io-flavoured
surface over it (the :class:`SweepResult` type and the legacy
``run_sweep`` signature).
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.beffio.benchmark import BeffIOConfig, BeffIOResult
from repro.faults.validity import VALID, RunValidity
from repro.runtime import sweep as _runtime
from repro.runtime.supervisor import PoisonRecord, SupervisionPolicy
from repro.runtime.sweep import (
    CRASH_AFTER_ENV,
    OFFICIAL_MINIMUM_T,
    SweepJournal,
    SweepWorkerError,
)

if TYPE_CHECKING:
    from repro.machines.spec import MachineSpec

__all__ = [
    "CRASH_AFTER_ENV",
    "OFFICIAL_MINIMUM_T",
    "MachineLike",
    "SweepResult",
    "SweepWorkerError",
    "run_sweep",
]

#: a machine registry key, or a resolved spec
MachineLike = Union[str, "MachineSpec"]


@dataclass(frozen=True)
class SweepResult:
    """All partitions of one machine plus the system-level maximum."""

    machine: str
    results: tuple[BeffIOResult, ...]
    system_b_eff_io: float
    best_partition: int
    official: bool  # True when every run satisfied T >= 15 min
    #: worst-case partition validity (a single invalid partition does
    #: not poison the system value — it is excluded from the max —
    #: but it does demote the sweep)
    validity: RunValidity = VALID
    #: partitions simulated in this call vs served from the result store
    fresh: int = 0
    cached: int = 0
    #: partitions quarantined by a supervised run (see
    #: :class:`~repro.runtime.supervisor.PoisonRecord`)
    poisoned: tuple[PoisonRecord, ...] = ()

    def partition_values(self) -> dict[int, float]:
        return {r.nprocs: r.b_eff_io for r in self.results}


def run_sweep(
    spec: MachineLike,
    partitions: Iterable[int],
    config: BeffIOConfig | None = None,
    jobs: int = 1,
    journal: str | os.PathLike[str] | SweepJournal | None = None,
    resume: bool = False,
    retries: int = 0,
    backoff: float = 0.0,
    store: "object | str | os.PathLike[str] | None" = None,
    supervision: SupervisionPolicy | None = None,
) -> SweepResult:
    """Run b_eff_io over several partition sizes of one machine.

    ``spec`` is a :class:`repro.machines.MachineSpec` or a machine
    registry key; ``partitions`` an iterable of process counts.
    Returns the per-partition results and the system value (max over
    partitions that produced a number).  ``official`` reports whether
    the scheduled time satisfied the paper's 15-minute rule.

    See :func:`repro.runtime.sweep.run_sweep` for the journal/resume/
    retry/store semantics (shared with b_eff).
    """
    outcome = _runtime.run_sweep(
        "b_eff_io",
        spec,
        partitions,
        config=config,
        jobs=jobs,
        journal=journal,
        resume=resume,
        retries=retries,
        backoff=backoff,
        store=store,
        supervision=supervision,
    )
    return SweepResult(
        machine=outcome.machine,
        results=outcome.results,
        system_b_eff_io=outcome.system_value,
        best_partition=outcome.best_partition,
        official=outcome.official,
        validity=outcome.validity,
        fresh=outcome.fresh,
        cached=outcome.cached,
        poisoned=outcome.poisoned,
    )
