"""Multi-partition b_eff_io runs and the system-level value.

The paper defines the b_eff_io *of a system* as the maximum over any
partition's value (with a scheduled time of at least 15 minutes for
official numbers).  This module sweeps partitions and applies that
rule, which is also exactly what Figs. 3 and 5 plot.

Sweeps are resilient and resumable:

* With ``journal=<dir>``, each partition's result is written
  atomically the moment it completes; ``resume=True`` loads the
  completed partitions (bit-identically — see
  :mod:`repro.beffio.journal`) and runs only the missing ones.
* A crashed or failing worker is retried up to ``retries`` times;
  when retries are exhausted the failure surfaces as
  :class:`SweepWorkerError` carrying the partition's configuration.
* Partitions whose resilient run produced ``nan`` (invalid) are
  excluded from the system maximum; the sweep's ``validity`` merges
  the partitions' states.
"""

from __future__ import annotations

import math
import os
import pathlib
import re
import time
import traceback
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.beffio.benchmark import BeffIOConfig, BeffIOResult
from repro.beffio.journal import SweepJournal, config_fingerprint
from repro.faults.validity import VALID, RunValidity, merge

if TYPE_CHECKING:
    from repro.machines.spec import MachineSpec

#: a machine registry key, or a resolved spec
MachineLike = Union[str, "MachineSpec"]

#: the official minimum scheduled time (15 minutes)
OFFICIAL_MINIMUM_T = 900.0

#: test/CI hook: when set to an integer k, the sweep parent raises
#: after journaling its k-th partition — equivalent (for resume
#: purposes) to killing the process there, because partition writes
#: are atomic
CRASH_AFTER_ENV = "REPRO_SWEEP_CRASH_AFTER"


class SweepWorkerError(RuntimeError):
    """A partition run failed after exhausting its retries.

    The message names the machine, the partition size, the
    configuration that failed *and the failing source frame*; the
    original exception is chained as ``__cause__`` and the worker's
    full formatted traceback is kept on ``worker_traceback`` so the
    CLI's exit-code-3 report can show where the worker died, not just
    which partition it was running.
    """

    def __init__(self, message: str, worker_traceback: str = "") -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback


def _failure_site(exc: BaseException) -> str:
    """``file:line in function`` of the deepest frame that raised ``exc``.

    For exceptions re-raised out of a :class:`ProcessPoolExecutor`
    worker the parent-side traceback only shows executor internals;
    the worker's real frames travel as a ``_RemoteTraceback`` cause
    string, so those are parsed in preference.
    """
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        found = re.findall(r'File "([^"]+)", line (\d+), in (\S+)', str(cause))
        if found:
            path, line, func = found[-1]
            return f"{pathlib.Path(path).name}:{line} in {func}"
    frames = traceback.extract_tb(exc.__traceback__)
    if not frames:
        return "no traceback available"
    last = frames[-1]
    return f"{pathlib.Path(last.filename).name}:{last.lineno} in {last.name}"


@dataclass(frozen=True)
class SweepResult:
    """All partitions of one machine plus the system-level maximum."""

    machine: str
    results: tuple[BeffIOResult, ...]
    system_b_eff_io: float
    best_partition: int
    official: bool  # True when every run satisfied T >= 15 min
    #: worst-case partition validity (a single invalid partition does
    #: not poison the system value — it is excluded from the max —
    #: but it does demote the sweep)
    validity: RunValidity = VALID

    def partition_values(self) -> dict[int, float]:
        return {r.nprocs: r.b_eff_io for r in self.results}


def _resolve(spec: MachineLike) -> "MachineSpec":
    """A machine key resolves through the registry; specs pass through."""
    if isinstance(spec, str):
        from repro.machines import get_machine

        return get_machine(spec)
    return spec


def _registry_key(spec: "MachineSpec") -> str:
    """Find the registry key of a spec (required to ship it to workers:
    a :class:`MachineSpec` holds environment-factory closures, so only
    the key crosses the process boundary)."""
    from repro.machines import MACHINES

    for key, factory in MACHINES.items():
        if factory().name == spec.name:
            return key
    raise ValueError(
        f"machine {spec.name!r} is not in the registry; pass the machine "
        "key (a string) to run_sweep for jobs > 1"
    )


def _run_partition(key: str, nprocs: int, config: BeffIOConfig) -> BeffIOResult:
    """Worker entry: rebuild the machine in-process and run one partition."""
    from repro.machines import get_machine

    return get_machine(key).run_beffio(nprocs, config)


def _describe(machine: str, nprocs: int, config: BeffIOConfig) -> str:
    return (
        f"partition nprocs={nprocs} on machine {machine!r} "
        f"(T={config.T}, types={config.pattern_types}, mode={config.mode!r}, "
        f"faults={'yes' if config.faults else 'no'})"
    )


class _Retry:
    """Per-partition attempt counter shared by both execution paths."""

    def __init__(self, machine: str, config: BeffIOConfig, retries: int, backoff: float):
        self.machine = machine
        self.config = config
        self.retries = retries
        self.backoff = backoff
        self.attempts: dict[int, int] = {}

    def failed(self, nprocs: int, exc: BaseException) -> None:
        """Count a failure; raise :class:`SweepWorkerError` past the limit."""
        n = self.attempts.get(nprocs, 0) + 1
        self.attempts[nprocs] = n
        if n > self.retries:
            raise SweepWorkerError(
                f"{_describe(self.machine, nprocs, self.config)} failed "
                f"after {n} attempt(s) at {_failure_site(exc)}: "
                f"{type(exc).__name__}: {exc}",
                worker_traceback="".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
            ) from exc
        if self.backoff > 0:
            time.sleep(self.backoff * n)


def run_sweep(
    spec: MachineLike,
    partitions: Iterable[int],
    config: BeffIOConfig | None = None,
    jobs: int = 1,
    journal: str | os.PathLike[str] | SweepJournal | None = None,
    resume: bool = False,
    retries: int = 0,
    backoff: float = 0.0,
) -> SweepResult:
    """Run b_eff_io over several partition sizes of one machine.

    ``spec`` is a :class:`repro.machines.MachineSpec` or a machine
    registry key; ``partitions`` an iterable of process counts.
    Returns the per-partition results and the system value (max over
    partitions that produced a number).  ``official`` reports whether
    the scheduled time satisfied the paper's 15-minute rule.

    ``jobs > 1`` runs partitions concurrently in worker processes.
    Every partition is an independent simulation from a fresh
    environment, so the results are bit-identical to a serial sweep —
    the workers only change wall-clock time.

    ``journal`` (a directory path) makes the sweep crash-safe: each
    partition is persisted atomically when it completes, and
    ``resume=True`` replays completed partitions bit-identically
    instead of re-running them.  ``retries``/``backoff`` bound how
    often a crashed or failing partition is re-attempted before
    :class:`SweepWorkerError` is raised.
    """
    partitions = sorted(set(partitions))
    if not partitions:
        raise ValueError("need at least one partition size")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if resume and journal is None:
        raise ValueError("resume=True needs a journal")
    config = config or BeffIOConfig()
    machine_name = spec if isinstance(spec, str) else spec.name

    jr = SweepJournal(journal) if isinstance(journal, (str, os.PathLike)) else journal
    done: dict[int, BeffIOResult] = {}
    if jr is not None:
        fingerprint = config_fingerprint(machine_name, config)
        if resume:
            jr.check(machine_name, fingerprint)
            # hoisted: a comprehension condition re-evaluates its
            # expression per row, so build the membership set once
            wanted = frozenset(partitions)
            done = {n: r for n, r in jr.completed().items() if n in wanted}
        else:
            jr.start(machine_name, fingerprint)

    crash_after = os.environ.get(CRASH_AFTER_ENV)
    crash_after = int(crash_after) if crash_after else None
    fresh = 0

    def finish(result: BeffIOResult) -> None:
        nonlocal fresh
        done[result.nprocs] = result
        if jr is not None:
            jr.record(result, machine_name)
        fresh += 1
        if crash_after is not None and fresh >= crash_after:
            raise RuntimeError(
                f"injected sweep crash after {fresh} partition(s) "
                f"({CRASH_AFTER_ENV}={crash_after})"
            )

    remaining = [n for n in partitions if n not in done]
    retry = _Retry(machine_name, config, retries, backoff)
    if jobs > 1 and len(remaining) > 1:
        key = spec if isinstance(spec, str) else _registry_key(spec)
        _run_parallel(key, remaining, config, jobs, retry, finish)
        spec = _resolve(spec)
    else:
        spec = _resolve(spec)
        for n in remaining:
            while True:
                try:
                    result = spec.run_beffio(n, config)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:  # repro-lint: disable=REPRO005 -- retry.failed re-raises (as SweepWorkerError with the captured traceback) past the retry limit
                    retry.failed(n, exc)
                    continue
                finish(result)
                break

    results = tuple(done[n] for n in partitions)
    values = {r.nprocs: r.b_eff_io for r in results}
    finite = {n: v for n, v in values.items() if not math.isnan(v)}
    if finite:
        system = max(finite.values())
        best = max(finite, key=finite.get)
    else:
        system = math.nan
        best = partitions[0]
    return SweepResult(
        machine=spec.name if not isinstance(spec, str) else machine_name,
        results=results,
        system_b_eff_io=system,
        best_partition=best,
        official=config.T >= OFFICIAL_MINIMUM_T,
        validity=merge([r.validity for r in results]),
    )


def _run_parallel(
    key: str,
    remaining: list[int],
    config: BeffIOConfig,
    jobs: int,
    retry: _Retry,
    finish: Callable[[BeffIOResult], None],
) -> None:
    """Fan partitions over worker processes; journal as each completes.

    A :class:`BrokenProcessPool` (worker killed mid-run) poisons every
    in-flight future, so the pool is rebuilt and the unfinished
    partitions resubmitted — each broken partition consumes one retry.
    """
    todo = set(remaining)
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(remaining)))
    try:
        while todo:
            futures: dict[Future[BeffIOResult], int] = {
                pool.submit(_run_partition, key, n, config): n for n in sorted(todo)
            }
            broken = False
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                # wait() returns a set; drain it in partition order so
                # journal writes and retry accounting are reproducible
                for fut in sorted(finished, key=futures.__getitem__):
                    n = futures[fut]
                    try:
                        result = fut.result()
                    except BrokenProcessPool as exc:
                        retry.failed(n, exc)
                        broken = True
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:  # repro-lint: disable=REPRO005 -- retry.failed re-raises (as SweepWorkerError with the worker's traceback) past the retry limit
                        retry.failed(n, exc)
                    else:
                        todo.discard(n)
                        finish(result)
                if broken:
                    break
            if broken and todo:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=min(jobs, len(todo)))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
