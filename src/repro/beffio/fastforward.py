"""Steady-state repetition fast-forward for the b_eff_io timed loops.

A b_eff_io pattern repeats one access for its scheduled time slice —
thousands of bit-identical repetitions once the system settles into a
periodic orbit.  This module detects that orbit *exactly* and replays
the remaining repetitions analytically instead of through the event
engine, preserving bit-identical results.

Exactness argument
------------------
All discrete state (file pointers, cached byte sets, disk positions,
statistics) evolves by integer arithmetic; one repetition shifts it by
a constant byte offset ``sigma`` per file.  All float state is virtual
*time*.  Within one floating-point binade ``[2^p, 2^(p+1))`` every
float is a multiple of the grid unit ``u = 2^(p-53)``; the difference
``d`` of two same-binade boundary times is therefore an exact multiple
of ``u``, and adding ``d`` to any same-binade float is *exact* (no
rounding).  Hence if the discrete state is shift-periodic and one
repetition's boundary times advance by ``d``, the whole event cascade
of the next repetition is the previous one translated by exactly
``d`` — every intermediate addition re-rounds identically.  Skipping
``k`` repetitions is then: shift the discrete state by ``k*sigma``
(replaying the recorded buffer-cache operations), advance the tracked
floats by ``k*d`` on the integer grid, and wake each rank at its
extrapolated boundary instant (``SleepUntil`` lands the float
verbatim).  Skips are capped so no tracked float crosses its binade,
no shifted extent crosses a stripe-unit boundary and no server cache
crosses its dirty-capacity threshold — events that would change the
orbit; and before any rank commits, the whole cache replay is
dry-run on cloned caches so an outcome regime change (eviction
patterns are not shift-periodic) shortens the skip to the verified
prefix.  A shortened skip simply resumes real simulation, which
re-detects the new orbit.

Detection requires three consecutive quiescent repetition boundaries
(no queued requests, no active network flows) whose buffer-cache
operation logs are shift-equivariant, whose integer state deltas are
constant and whose boundary times form an exact arithmetic
progression.  Anything aperiodic — the random pattern type, staggered
noncollective ranks, drain phases, cache-fill transients — fails a
check and the loop just keeps simulating.
"""

from __future__ import annotations

import math

from repro.pfs.cache import BufferCache
from repro.pfs.intervals import IntervalSet
from repro.sim.orbit import advance as _advance
from repro.sim.orbit import grid_delta as _grid_delta
from repro.sim.orbit import steps_in_binade as _steps_in_binade

#: consecutive verified macro-repetition boundaries before arming a skip
WINDOW = 3
#: minimum macro-repetitions a skip must cover to be worth arming
MIN_SKIP = 3
#: repetitions of safety margin kept below binade/capacity thresholds
MARGIN = 2
#: largest super-period tried for orbit detection: a repetition whose
#: file-pointer advance is not a multiple of the stripe period (the
#: paper's non-wellformed "+8" sizes) rotates through stripe phases,
#: so its per-server request stream is periodic only over
#: ``period / gcd(advance mod period, period)`` repetitions; the
#: detector treats that many consecutive repetitions as one
#: *macro-repetition* and runs the identical machinery on the
#: concatenated operation logs
MAX_PERIOD = 64


# ---------------------------------------------------------------------------
# discrete-state helpers
# ---------------------------------------------------------------------------


def _op_shift(prev_ops, cur_ops, sigmas) -> bool:
    """Check ``cur_ops`` is ``prev_ops`` shifted per-file; fill ``sigmas``."""
    if len(prev_ops) != len(cur_ops):
        return False
    for p, c in zip(prev_ops, cur_ops):
        if p[0] != c[0] or p[1] != c[1] or p[0] == "invalidate_file":
            return False
        if p[4:] != c[4:]:  # operation outcomes must repeat verbatim
            return False
        sig = c[2] - p[2]
        if c[3] - p[3] != sig or sig < 0:
            return False
        fid = p[1]
        if sigmas.setdefault(fid, sig) != sig:
            return False
    return True


def _tree_delta(a, b):
    """Element-wise ``b - a`` over a tuple tree; None on shape mismatch."""
    if isinstance(a, tuple):
        if not isinstance(b, tuple) or len(a) != len(b):
            return None
        out = []
        for x, y in zip(a, b):
            d = _tree_delta(x, y)
            if d is None:
                return None
            out.append(d)
        return tuple(out)
    return b - a


def _disk_pos_delta(a, b):
    if a == b:
        return ("same",)
    if a is not None and b is not None and a[0] == b[0] and b[1] >= a[1]:
        return ("shift", b[1] - a[1])
    return None


def _clone_set(s: IntervalSet) -> IntervalSet:
    c = IntervalSet()
    c._starts = list(s._starts)
    c._ends = list(s._ends)
    c._total = s._total
    return c


def _clone_cache(cache: BufferCache) -> BufferCache:
    """Deep-copy a buffer cache for the arm-time trial replay."""
    clone = BufferCache(cache.capacity)
    for fid in cache._file_order:
        clone._file_order.append(fid)
        clone._cached[fid] = _clone_set(cache._cached[fid])
        clone._dirty[fid] = _clone_set(cache._dirty[fid])
    clone.used = cache.used
    clone._clean_hint = dict(cache._clean_hint)
    return clone


def _first_alignment(x: int, sig: int, m: int):
    """Smallest ``k >= 1`` with ``(x + k*sig) % m == 0``, or None.

    Solves ``k*sig ≡ -x (mod m)`` exactly; None means the point never
    lands on the alignment grid under any number of shifts.
    """
    g = math.gcd(sig, m)
    if x % g:
        return None
    p = m // g
    k = (-(x // g) * pow((sig // g) % p, -1, p)) % p
    return k if k >= 1 else p


def _replay_rep(cache: BufferCache, ops, sigmas, k: int) -> bool:
    """Replay one repetition's recorded ops shifted by ``k`` periods.

    Returns False as soon as any operation's outcome deviates from the
    recording — the signal that the orbit breaks at that repetition.
    """
    for op in ops:
        meth, fid, s, e = op[0], op[1], op[2], op[3]
        if meth == "request":  # sentinel, no cache action
            continue
        off = sigmas[fid] * k
        if meth == "write":
            out = cache.write(fid, s + off, e + off)
            if (out.in_place, out.absorbed, out.overflow) != op[4:]:
                return False
        elif meth == "read":  # pure; verifies hit count and gap shape
            hit, gaps = cache.read_hits(fid, s + off, e + off)
            rel = tuple((gs - s - off, ge - s - off) for gs, ge in gaps)
            if (hit, rel) != op[4:]:
                return False
        elif meth == "insert_clean":
            if cache.insert_clean(fid, s + off, e + off) != op[4]:
                return False
        else:  # drain_next
            if cache.drain_next(e - s) != (fid, s + off, e + off):
                return False
    return True


class FFSession:
    """Per-partition fast-forward context shared by every rank."""

    def __init__(self, world, fs) -> None:
        self.sim = world.sim
        self.fabric = world.fabric
        self.fs = fs
        self.loops: dict[object, LoopFF] = {}

    def loop_for(self, key, handles, nranks: int, kind: str) -> "LoopFF":
        ff = self.loops.get(key)
        if ff is None:
            ff = self.loops[key] = LoopFF(self, handles, nranks, kind)
        return ff


class LoopFF:
    """Steady-state detector and skip coordinator for one timed loop.

    One instance is shared by all ranks of the loop (the simulated
    ranks are coroutines of one process, so plain attribute state is
    the rendezvous).  ``kind`` selects the termination model:

    * ``"collective"`` — barrier + root-clock decision + bcast per
      repetition (``collective_timed_loop``).
    * ``"local"`` — each rank checks its own clock
      (``local_timed_loop``); a skip arms only when every rank would
      stop after the same repetition.
    * ``"count"`` — a fixed repetition count, no clock
      (``counted_loop`` / the fill-segment loops).
    """

    def __init__(self, session: FFSession, handles, nranks: int, kind: str) -> None:
        self.session = session
        self.n = nranks
        self.kind = kind
        hkind, obj = handles
        self.iofiles = list(obj) if hkind == "per-rank" else [obj]
        self.pfsfiles = [io.pfsfile for io in self.iofiles]
        self.file_ids = [pf.file_id for pf in self.pfsfiles]
        self.servers = session.fs.servers
        self._oplogs: list[list] = []
        for srv in self.servers:
            log: list = []
            srv.cache.oplog = log
            self._oplogs.append(log)
        self._records: list[dict] = []
        self._cur: dict | None = None
        self.t_end: float | None = None
        self.max_reps: int | None = None
        self.plan: dict | None = None
        self.dead = False
        self._finished = 0

    # -- per-repetition reporting (called from the loops) ------------------

    def _record_for(self, rep: int) -> dict:
        cur = self._cur
        if cur is None or cur["rep"] != rep:
            cur = self._cur = {
                "rep": rep,
                "alpha": [None] * self.n,
                "beta": [None] * self.n,
                "chi": None,
                "count": 0,
            }
        return cur

    def body_end(self, rank: int, rep: int, t: float) -> None:
        if not self.dead:
            self._record_for(rep)["alpha"][rank] = t

    def decision(self, rep: int, t: float, t_end: float, max_reps) -> None:
        if self.dead:
            return
        self._record_for(rep)["chi"] = t
        self.t_end = t_end
        self.max_reps = max_reps

    def round_end(self, rank: int, rep: int, t: float) -> None:
        if self.dead:
            return
        cur = self._record_for(rep)
        cur["beta"][rank] = t
        cur["count"] += 1
        if cur["count"] == self.n:
            self._complete_cut(cur)

    def local_boundary(self, rank, rep, t, t_end, max_reps) -> None:
        if self.dead:
            return
        if self.t_end is not None and self.t_end != t_end:
            self.dead = True
            self._detach()
            return
        self.t_end = t_end
        cur = self._record_for(rep)
        cur["alpha"][rank] = t
        cur["beta"][rank] = t
        cur.setdefault("max_reps", {})[rank] = max_reps
        cur["count"] += 1
        if cur["count"] == self.n:
            self._complete_cut(cur)

    def counted_boundary(self, rank, rep, t, max_reps) -> None:
        self.local_boundary(rank, rep, t, math.inf, max_reps)

    def finish(self) -> None:
        """A rank's loop ended; detach the op logs once all have."""
        self._finished += 1
        if self._finished == self.n:
            self.dead = True
            self._detach()

    def _detach(self) -> None:
        for srv in self.servers:
            if srv.cache.oplog is not None:
                srv.cache.oplog = None

    # -- cut bookkeeping ---------------------------------------------------

    def _quiescent(self) -> bool:
        for srv in self.servers:
            if srv._queue or srv._wakeup is None:
                return False
        return (
            not self.session.fs.io_net._flows
            and not self.session.fabric.flows._flows
        )

    def _scalars(self):
        per_server = []
        for srv in self.servers:
            cache = srv.cache
            order = tuple(cache._file_order)
            per_server.append((
                srv.requests_served,
                srv.bytes_to_disk,
                srv.bytes_from_disk,
                srv.seeks,
                cache.used,
                cache.dirty_total,
                tuple(srv._high_water.get(fid, 0) for fid in self.file_ids),
                order,  # a new file appearing breaks the tree shape
                tuple(cache.dirty_bytes(fid) for fid in order),
            ))
        files = tuple(pf.size for pf in self.pfsfiles)
        fps = tuple(
            tuple(io._fp) + (io._shared_fp, io.bytes_written, io.bytes_read)
            for io in self.iofiles
        )
        return (tuple(per_server), files, fps)

    def _complete_cut(self, cur: dict) -> None:
        if self.plan is not None:
            # keep the in-flight record: the remaining ranks still
            # verify it in poll(); _apply clears it
            return
        self._cur = None
        cur["ops"] = [list(log) for log in self._oplogs]
        for log in self._oplogs:
            log.clear()
        cur["scalars"] = self._scalars()
        cur["disk_pos"] = [srv._disk_pos for srv in self.servers]
        cur["ndb"] = [srv._no_drain_before for srv in self.servers]
        cur["quiet"] = self._quiescent()
        self._records.append(cur)
        if len(self._records) > WINDOW * MAX_PERIOD:
            self._records.pop(0)
        for q in self._period_candidates():
            if self._try_arm(q):
                break

    def _period_candidates(self):
        """Super-periods worth trying at this cut: 1 plus the stripe
        rotation period of the observed request stream.

        One repetition advances each file's access region by a constant
        ``d`` (read off the lowest logged operation offset of the last
        two cuts); the per-server slice shapes repeat after
        ``P / gcd(d mod P, P)`` repetitions, where ``P`` is the stripe
        period.  ``lcm`` over files, capped at :data:`MAX_PERIOD`.
        """
        if len(self._records) < 2:
            return (1,)
        period = self.session.fs._split_period
        mins: list[dict] = [{}, {}]
        for m, rec in zip(mins, self._records[-2:]):
            for ops in rec["ops"]:
                for op in ops:
                    fid, s = op[1], op[2]
                    if fid not in m or s < m[fid]:
                        m[fid] = s
        q = 1
        for fid, s1 in mins[1].items():
            s0 = mins[0].get(fid)
            if s0 is None or s1 <= s0:
                continue
            r = (s1 - s0) % period
            if r:
                q = math.lcm(q, period // math.gcd(r, period))
                if q > MAX_PERIOD:
                    return (1,)
        return (1,) if q == 1 else (1, q)

    # -- arming ------------------------------------------------------------

    def _try_arm(self, q: int) -> bool:
        """Try to arm a skip with super-period ``q`` (macro-repetition =
        ``q`` consecutive repetitions); True when a plan was armed."""
        recs = self._records
        if len(recs) < WINDOW * q:
            return False
        window = recs[-WINDOW * q:]
        V = window[-1]["rep"]
        if [r["rep"] for r in window] != list(range(V - WINDOW * q + 1, V + 1)):
            return False
        # the three macro cuts: reps V-2q, V-q and V
        c0, c1, c2 = window[q - 1], window[2 * q - 1], window[3 * q - 1]
        if not (c0["quiet"] and c1["quiet"] and c2["quiet"]):
            return False
        # cheap integer check first: constant scalar deltas between the
        # macro cuts gate the expensive log concatenation below
        delta = _tree_delta(c1["scalars"], c2["scalars"])
        if delta is None or _tree_delta(c0["scalars"], c1["scalars"]) != delta:
            return False
        # discrete state: concatenated per-macro-block operation logs
        # shift-equivariant, same shift in both window pairs
        nsrv = len(self.servers)
        B = [
            [
                [op for r in window[i * q:(i + 1) * q] for op in r["ops"][s]]
                for s in range(nsrv)
            ]
            for i in range(WINDOW)
        ]
        sig01: dict = {}
        sig12: dict = {}
        for o0, o1, o2 in zip(B[0], B[1], B[2]):
            if not _op_shift(o0, o1, sig01) or not _op_shift(o1, o2, sig12):
                return False
        if sig01 != sig12:
            return False
        # Sector/block alignment decisions must provably repeat under
        # every shift of the skip (they feed the per-request penalty
        # and the read-modify-write gate, i.e. timing the replay does
        # not re-check).  The exact modular analysis caps the skip at
        # the first macro-repetition where any decision could change.
        align_cap = self._alignment_cap(sig12, B[2], delta)
        if align_cap <= 0:
            return False
        # A shift that is not a multiple of the stripe period will
        # eventually carry an access into the next stripe unit — a
        # different server and split shape, invisible inside the
        # window.  Cap the skip so every shifted extent stays inside
        # the stripe unit it currently occupies.
        unit = self.session.fs.config.stripe_unit
        period = self.session.fs._split_period
        unit_cap = 1 << 62
        for ops in B[2]:
            for op in ops:
                if op[0] == "request":  # sentinel, not an extent
                    continue
                sig = sig12[op[1]]
                if sig == 0 or sig % period == 0:
                    continue
                end = op[3]
                unit_end = ((end - 1) // unit + 1) * unit if end > 0 else unit
                unit_cap = min(unit_cap, (unit_end - end) // sig)
        dpos = [_disk_pos_delta(a, b) for a, b in zip(c1["disk_pos"], c2["disk_pos"])]
        if None in dpos or dpos != [
            _disk_pos_delta(a, b) for a, b in zip(c0["disk_pos"], c1["disk_pos"])
        ]:
            return False
        # float state: exact arithmetic progressions at the macro cuts
        alpha_tr, beta_tr = [], []
        for r in range(self.n):
            ta = _grid_delta(c0["alpha"][r], c1["alpha"][r], c2["alpha"][r])
            tb = _grid_delta(c0["beta"][r], c1["beta"][r], c2["beta"][r])
            if ta is None or tb is None:
                return False
            alpha_tr.append(ta)
            beta_tr.append(tb)
        ndb_tr = []
        for v0, v1, v2 in zip(c0["ndb"], c1["ndb"], c2["ndb"]):
            t = _grid_delta(v0, v1, v2)
            if t is None:
                return False
            ndb_tr.append(t)
        # last lattice repetition the skip may land on; the remaining
        # repetitions and the real termination always run live
        T = self._termination(window, V, q)
        if T is None:
            return False
        # caps: binade crossings and cache dirty-capacity crossings,
        # all counted in macro-repetitions
        cap = min(
            min(_steps_in_binade(c2["alpha"][r], *alpha_tr[r]) for r in range(self.n)),
            min(_steps_in_binade(c2["beta"][r], *beta_tr[r]) for r in range(self.n)),
            min(
                _steps_in_binade(v, *t)
                for v, t in zip(c2["ndb"], ndb_tr)
            ),
        ) - MARGIN
        if self.kind == "collective":
            tchi = _grid_delta(c0["chi"], c1["chi"], c2["chi"])
            if tchi is None:
                return False
            cap = min(cap, _steps_in_binade(c2["chi"], *tchi) - MARGIN)
        cap = min(cap, unit_cap - MARGIN, align_cap - MARGIN)
        for srv, srv_delta, srv_now in zip(self.servers, delta[0], c2["scalars"][0]):
            d_dirty = srv_delta[5]
            if d_dirty > 0:
                # growing dirty set: stop before write-behind overflows
                dirty_now = srv.cache.dirty_total
                cap = min(cap, (srv.cache.capacity - dirty_now) // d_dirty - MARGIN)
            # a shrinking per-file dirty backlog (background drains
            # outrunning writes) runs out mid-skip and changes the
            # drain pattern: stop before any backlog empties
            for fid, dd, dnow in zip(srv_now[7], srv_delta[8], srv_now[8]):
                if dd < 0:
                    cap = min(cap, dnow // (-dd) - MARGIN)
        T = min(T, V + cap * q)
        j = (T - V) // q - 1  # skipped macro-repetitions
        if j < MIN_SKIP:
            return False
        # Dry-run the whole replay on cloned caches before any rank
        # commits to sleeping: eviction walks older files' cached data
        # in a pattern that is *not* shift-periodic, so an overwrite or
        # read can land on a differently-evicted region mid-skip and
        # change outcome (and hence timing) — provable only by
        # replaying.  Shorten the skip to the verified prefix.
        m = self._trial_replay(sig12, B[2], j)
        if m < j + 1:
            T = V + m * q
            j = m - 1
            if j < MIN_SKIP:
                return False
        self.plan = {
            "from_rep": V + q,
            "T": T,
            "mode": "resume",
            "q": q,
            "j": j,
            "targets": [
                _advance(c2["beta"][r], *beta_tr[r], (T - V) // q)
                for r in range(self.n)
            ],
            "pred_alpha": [
                _advance(c2["alpha"][r], *alpha_tr[r], 1) for r in range(self.n)
            ],
            "pred_beta": [
                _advance(c2["beta"][r], *beta_tr[r], 1) for r in range(self.n)
            ],
            "sigmas": sig12,
            "ops": B[2],
            "delta": delta,
            "dpos": dpos,
            "ndb_tr": ndb_tr,
            "engaged": 0,
        }
        return True

    def _trial_replay(self, sigmas, per_server_ops, j: int) -> int:
        """Verify shifts ``1 .. j+1`` of the recorded ops on cache clones.

        Shift 1 is the repetition that will run live between arming and
        engagement; shifts ``2 .. j+1`` are the ones :meth:`_apply`
        replays for real.  Returns how many leading shifts repeat their
        recorded outcomes on every server (``j + 1`` when all do).
        """
        valid = j + 1
        for srv, ops in zip(self.servers, per_server_ops):
            if not ops or valid < 1:
                continue
            cache = _clone_cache(srv.cache)
            for k in range(1, valid + 1):
                if not _replay_rep(cache, ops, sigmas, k):
                    valid = k - 1
                    break
        return valid

    def _alignment_cap(self, sig12, per_server_ops, delta) -> int:
        """Largest ``T - V`` for which every alignment decision repeats.

        Two server-side decisions depend on byte positions, not cache
        content, so the trial replay cannot re-check them:

        * the per-request "non-wellformed" penalty — ``any`` extent
          endpoint off the sector grid (the request sentinels carry the
          grouping);
        * the read-modify-write gate per write-extent edge —
          ``edge % disk_block == 0 or edge >= high_water``.

        Both are exact integer questions under a uniform shift
        ``sigma`` per repetition: endpoints move on an arithmetic
        progression mod sector/block, and the edge-vs-high-water
        comparison drifts by ``sigma - d_high`` per repetition.  The
        returned cap is the last shift count before any decision could
        flip; ``<= 0`` rejects arming outright.
        """
        params = self.servers[0].params
        sector, block = params.sector, params.disk_block
        fidx = {fid: i for i, fid in enumerate(self.file_ids)}
        cap = 1 << 62
        for si, (srv, ops) in enumerate(zip(self.servers, per_server_ops)):
            dhigh = delta[0][si][6]
            for op in ops:
                meth, fid = op[0], op[1]
                sig = sig12[fid]
                if meth == "request":
                    if sig % sector == 0:
                        continue  # every residue preserved
                    if not op[5]:
                        return -1  # well-formed now, misaligned at k=1
                    # flag stays True unless *all* endpoints align at
                    # the same shift; equal first-alignment shifts mean
                    # equal residues mod the alignment period
                    ks = set()
                    never = False
                    for rs, re_ in op[6]:
                        if never:
                            break
                        for x in (op[2] + rs, op[2] + re_):
                            k = _first_alignment(x, sig, sector)
                            if k is None:
                                never = True
                                break
                            ks.add(k)
                    if never or len(ks) != 1:
                        continue
                    cap = min(cap, ks.pop() - 1)
                elif meth == "write":
                    high = srv._high_water.get(fid, 0)
                    rho = dhigh[fidx[fid]] - sig  # drift of high vs edges
                    for edge in (op[2], op[3]):
                        aligned = edge % block == 0
                        above = edge >= high
                        if aligned or above:  # no RMW read at this edge
                            if above:
                                if rho > 0 and not (aligned and sig % block == 0):
                                    # high-water outruns the edge: an RMW
                                    # read appears once it drops below
                                    cap = min(cap, (edge - high) // rho)
                            elif sig % block:
                                return -1  # alignment breaks at k=1 below high
                        else:  # RMW read happened here in the window
                            if sig % block:
                                ka = _first_alignment(edge, sig, block)
                                if ka is not None:
                                    cap = min(cap, ka - 1)
                            if rho < 0:
                                # the edge climbs past high-water and the
                                # RMW read disappears
                                kb = (high - edge + (-rho) - 1) // (-rho)
                                cap = min(cap, kb - 1)
        return cap

    def _termination(self, window, V, q: int):
        """Largest safe lattice repetition ``V + m*q`` to land on, or None.

        The skip always resumes live simulation at the landing
        repetition, so the only obligation is that no *skipped*
        repetition would have terminated the loop: the landing point
        must sit strictly before the first repetition whose decision
        fires — a clock crossing ``t_end`` at any intra-period phase,
        or a ``max_reps`` cap.  Clocks are monotone, so a phase sample
        that has not crossed ``t_end`` proves no earlier repetition of
        that phase crossed it either; checking every phase of the
        super-period covers the repetitions between lattice cuts.
        """
        def lattice(limit):
            if limit - V < q:
                return None
            return V + int((limit - V) // q) * q

        limit = math.inf
        caps = [
            v
            for rec in window
            for v in rec.get("max_reps", {}).values()
            if v is not None and v is not math.inf
        ]
        if self.kind == "collective" and self.max_reps is not None:
            caps.append(self.max_reps)
        if caps:
            limit = min(caps) - 1
        if self.kind == "count":
            return lattice(limit) if limit is not math.inf else None
        if self.t_end is None:
            return None
        for p in range(q):
            rec0, rec1, rec2 = window[p], window[q + p], window[2 * q + p]
            base = rec2["rep"]
            if self.kind == "collective":
                if rec2["chi"] is None:
                    return None
                samples = [(rec0["chi"], rec1["chi"], rec2["chi"])]
            else:  # local: every rank decides on its own clock
                samples = [
                    (rec0["alpha"][r], rec1["alpha"][r], rec2["alpha"][r])
                    for r in range(self.n)
                ]
            for v0, v1, v2 in samples:
                t = _grid_delta(v0, v1, v2)
                if t is None:
                    return None
                F = self._first_crossing(v2, t, self.t_end, base, q)
                if F is not None:
                    limit = min(limit, F - 1)
                # untracked intermediate-phase clocks must not change
                # binade either, or the translated cascade re-rounds
                limit = min(limit, base + (_steps_in_binade(v2, *t) - MARGIN) * q)
        if limit is math.inf:
            return None
        return lattice(limit)

    @staticmethod
    def _first_crossing(x: float, track, t_end: float, base: int, stride: int = 1):
        """Smallest repetition ``base + m*stride`` (``m >= 1``) whose
        clock sample reaches ``t_end``; None if the clock stands still."""
        d, e = track
        if d == 0.0:
            return None
        kx = int(math.ldexp(x, -e))
        kd = int(math.ldexp(d, -e))
        kt = math.ceil(math.ldexp(t_end, -e))  # exact: ldexp only rescales
        s = -((kx - kt) // kd)  # ceil((kt - kx) / kd)
        return base + max(1, s) * stride

    # -- engagement (called from the loops at each boundary) ---------------

    def poll(self, rank: int, reps: int):
        """At a loop boundary: None to keep simulating, or the skip
        ``(wake_time, final_reps, terminal)`` for this rank."""
        plan = self.plan
        if plan is None or self.dead or reps != plan["from_rep"]:
            return None
        cur = self._cur
        if (
            cur is None
            or cur["rep"] != reps
            or cur["alpha"][rank] != plan["pred_alpha"][rank]
            or cur["beta"][rank] != plan["pred_beta"][rank]
        ):
            raise RuntimeError(
                "b_eff_io fast-forward: verified steady state diverged; "
                "this is a bug in the periodicity guards"
            )
        plan["engaged"] += 1
        if plan["engaged"] == self.n:
            self._apply(plan)
        return (plan["targets"][rank], plan["T"], plan["mode"] != "resume")

    # -- state application -------------------------------------------------

    def _apply(self, plan: dict) -> None:
        j = plan["j"]
        sigmas = plan["sigmas"]
        if not self._quiescent():  # pragma: no cover - guarded by arming
            raise RuntimeError("b_eff_io fast-forward: skip from non-quiescent state")
        # replay the recorded cache operations for each skipped
        # repetition: repetition V+1 ran for real, so shifts start at 2
        for srv, ops in zip(self.servers, plan["ops"]):
            cache = srv.cache
            cache.oplog = None
            for k in range(2, j + 2):
                if not _replay_rep(cache, ops, sigmas, k):
                    # pragma: no cover - every shift was proven by the
                    # arm-time trial on cloned caches
                    raise RuntimeError(
                        "b_eff_io fast-forward: cache replay diverged"
                    )
        # integer state advances linearly
        srv_d, files_d, fps_d = plan["delta"]
        for srv, sd, dp, ndb in zip(
            self.servers, srv_d, plan["dpos"], plan["ndb_tr"]
        ):
            dreq, dtod, dfromd, dseek, _dused, _ddirty, dhigh, _order, _dbyfid = sd
            srv.requests_served += j * dreq
            srv.bytes_to_disk += j * dtod
            srv.bytes_from_disk += j * dfromd
            srv.seeks += j * dseek
            # cache.used / dirty_total advance through the replay above
            for fid, dh in zip(self.file_ids, dhigh):
                if dh:
                    srv._high_water[fid] = srv._high_water.get(fid, 0) + j * dh
            if dp[0] == "shift" and dp[1]:
                fid_now, off_now = srv._disk_pos
                srv._disk_pos = (fid_now, off_now + j * dp[1])
            srv._no_drain_before = _advance(srv._no_drain_before, *ndb, j)
        for pf, ds in zip(self.pfsfiles, files_d):
            pf.size += j * ds
        for io, df in zip(self.iofiles, fps_d):
            dsh, dbw, dbr = df[-3], df[-2], df[-1]
            for r, d in enumerate(df[:-3]):
                io._fp[r] += j * d
            io._shared_fp += j * dsh
            io.bytes_written += j * dbw
            io.bytes_read += j * dbr
        self._records.clear()
        self._cur = None
        self.plan = None
        if plan["mode"] == "resume":
            for srv, log in zip(self.servers, self._oplogs):
                log.clear()
                srv.cache.oplog = log
