"""The effective I/O bandwidth benchmark (b_eff_io), paper Sec. 5.

Public entry points:

* :func:`~repro.beffio.patterns.build_patterns` — the Table 2 pattern
  list (five pattern types, wellformed and non-wellformed chunk
  sizes, time units U with sum 64).
* :func:`~repro.beffio.benchmark.run_beffio` — run one partition:
  three access methods (initial write, rewrite, read) over all
  pattern types with the paper's time-driven scheduling, and the
  weighted aggregation (scatter type double-weighted; methods
  weighted 25/25/50).
* :func:`~repro.beffio.analysis.partition_value` /
  :func:`~repro.beffio.analysis.system_value` — the aggregation
  helpers (the system's b_eff_io is the max over partitions with
  T >= 15 min).
"""

from repro.beffio.patterns import IOPattern, build_patterns, extension_patterns, mpart_for, SUM_U
from repro.beffio.benchmark import BeffIOConfig, BeffIOResult, run_beffio
from repro.beffio.analysis import bytes_per_method, cache_rule, method_value, partition_value, system_value
from repro.beffio.sweep import SweepResult, run_sweep

__all__ = [
    "IOPattern",
    "build_patterns",
    "mpart_for",
    "SUM_U",
    "BeffIOConfig",
    "BeffIOResult",
    "run_beffio",
    "method_value",
    "partition_value",
    "system_value",
    "extension_patterns",
    "bytes_per_method",
    "cache_rule",
    "SweepResult",
    "run_sweep",
]
