"""Time-driven repetition loops (paper Sec. 5.1 and 5.4).

Each pattern repeats its access until the scheduled time
T_pattern = T/3 * U / sum(U) is exhausted.  Collective patterns must
stop all processes after the same iteration: the paper's algorithm —
a barrier, the decision read from the root's clock, a broadcast of
the decision — is implemented literally, because Sec. 5.4's critique
(the termination round is *not* 10x faster than a 1 kB access on the
T3E) is one of the observations we reproduce.

Noncollective patterns check their local clock.  Every loop runs at
least one repetition; ``max_reps`` additionally caps the loop (used
by the rewrite/read passes so they never run past the data written by
the initial-write pass, and by U=0 patterns which run exactly once).
"""

from __future__ import annotations

from repro.sim.process import SleepUntil

#: decision payload size of the termination broadcast (one flag byte)
DECISION_BYTES = 1


def collective_timed_loop(comm, t_end: float, body, max_reps: int | None = None,
                          ff=None):
    """Generator: repeat collective ``body()`` until the root's clock
    passes ``t_end``; returns the number of repetitions.

    ``ff`` (a :class:`repro.beffio.fastforward.LoopFF`) observes each
    repetition boundary; once it has proven the loop periodic it
    answers ``poll`` with a skip and the rank jumps — bit-exactly — to
    its terminal boundary instant instead of simulating the remaining
    repetitions.  ``ff=None`` (reference mode) leaves the loop as the
    paper describes it, event for event.
    """
    if max_reps is not None and max_reps < 1:
        raise ValueError("max_reps must be >= 1")
    reps = 0
    while True:
        if ff is not None:
            skip = ff.poll(comm.rank, reps)
            if skip is not None:
                target, final, terminal = skip
                yield SleepUntil(target)
                reps = final
                if terminal:
                    break
                continue
        yield from body()
        reps += 1
        if ff is not None:
            ff.body_end(comm.rank, reps, comm.wtime())
        if max_reps is not None and reps >= max_reps:
            break
        # Termination: barrier, then the root's decision is broadcast.
        yield from comm.barrier()
        decision = None
        if comm.rank == 0:
            decision = comm.wtime() >= t_end
            if ff is not None:
                ff.decision(reps, comm.wtime(), t_end, max_reps)
        decision = yield from comm.bcast(root=0, nbytes=DECISION_BYTES, data=decision)
        if ff is not None:
            ff.round_end(comm.rank, reps, comm.wtime())
        if decision:
            break
    return reps


def local_timed_loop(comm, t_end: float, body, max_reps: int | None = None,
                     ff=None):
    """Generator: repeat noncollective ``body()`` against the local clock."""
    if max_reps is not None and max_reps < 1:
        raise ValueError("max_reps must be >= 1")
    reps = 0
    while True:
        if ff is not None:
            skip = ff.poll(comm.rank, reps)
            if skip is not None:
                target, final, terminal = skip
                yield SleepUntil(target)
                reps = final
                if terminal:
                    break
                continue
        yield from body()
        reps += 1
        if ff is not None:
            ff.local_boundary(comm.rank, reps, comm.wtime(), t_end, max_reps)
        if max_reps is not None and reps >= max_reps:
            break
        if comm.wtime() >= t_end:
            break
    return reps


def counted_loop(comm, body, max_reps: int, ff=None):
    """Generator: repeat ``body()`` exactly ``max_reps`` times.

    The fill-segment loops use this instead of a bare ``for`` so the
    fast-forward can skip their steady state too.
    """
    if max_reps < 0:
        raise ValueError("max_reps must be >= 0")
    reps = 0
    while reps < max_reps:
        if ff is not None:
            skip = ff.poll(comm.rank, reps)
            if skip is not None:
                target, final, terminal = skip
                yield SleepUntil(target)
                reps = final
                if terminal:
                    break
                continue
        yield from body()
        reps += 1
        if ff is not None:
            ff.counted_boundary(comm.rank, reps, comm.wtime(), max_reps)
    return reps


def geometric_timed_loop(comm, t_end: float, body, max_reps: int | None = None,
                         growth: float = 2.0):
    """The paper's Sec. 5.4 improvement: batch repetitions geometrically.

    Instead of a barrier+bcast after *every* repetition, run batches
    of 1, 2, 4, ... repetitions and decide termination only between
    batches — amortizing the termination round for small-chunk
    patterns where a collective round is not much cheaper than one
    access.  Semantics otherwise match
    :func:`collective_timed_loop`: all processes stop after the same
    repetition count, at least one repetition runs, ``max_reps`` caps
    the total.
    """
    if max_reps is not None and max_reps < 1:
        raise ValueError("max_reps must be >= 1")
    if growth <= 1.0:
        raise ValueError("growth must be > 1")
    reps = 0
    batch = 1
    while True:
        todo = batch
        if max_reps is not None:
            todo = min(todo, max_reps - reps)
        for _ in range(todo):
            yield from body()
        reps += todo
        if max_reps is not None and reps >= max_reps:
            break
        yield from comm.barrier()
        decision = None
        if comm.rank == 0:
            decision = comm.wtime() >= t_end
        decision = yield from comm.bcast(root=0, nbytes=DECISION_BYTES, data=decision)
        if decision:
            break
        batch = max(batch + 1, int(batch * growth))
    return reps


def pattern_time(T: float, U: int, sum_u: int) -> float:
    """Scheduled seconds for one pattern: T/3 * U / sum(U)."""
    if T <= 0:
        raise ValueError("T must be positive")
    if sum_u <= 0:
        raise ValueError("sum_u must be positive")
    return (T / 3.0) * (U / sum_u)
