"""Segment sizing for pattern types 3 and 4 (paper Sec. 5.1 / 5.4).

The segmented file gives each process one contiguous segment; its
size must be fixed *before* the segmented patterns run.  The paper
derives per-chunk-size repeating factors from the measured types 0-2
and sets the segment to the sum of chunk sizes times those factors,
rounded up to the next multiple of 1 MB (both drawbacks of that
choice — 1 MB alignment vs. larger striping units, and 32-bit
overflow for large process counts — are discussed in Sec. 5.4; the
optional ``max_segment`` models the 2/n GB reduction rule).
"""

from __future__ import annotations

from repro.beffio.patterns import IOPattern
from repro.util import MB


def chunk_repetitions(pattern_runs, per_process: bool = True) -> dict[int, float]:
    """Measured repetitions per chunk size l from types 0-2.

    For the scatter type a repetition moves ``chunks_per_call`` disk
    chunks, so its factor is scaled accordingly.  Returns the maximum
    factor seen for each chunk size.
    """
    factors: dict[int, float] = {}
    for run in pattern_runs:
        if run.pattern_type > 2:
            continue
        chunks = run.reps * max(1, run.L // run.l)
        if per_process:
            chunks = chunks  # reps are already per process
        factors[run.l] = max(factors.get(run.l, 0.0), float(chunks))
    return factors


def estimate_segment_size(
    pattern_runs,
    type3_patterns: list[IOPattern],
    fallback_reps: float = 8.0,
    max_segment: int | None = None,
) -> int:
    """Segment bytes per process for the segmented pattern types.

    ``pattern_runs`` are the recorded runs of types 0-2 from the
    initial-write pass; ``type3_patterns`` the (non-fill) patterns the
    segment must accommodate.  Falls back to ``fallback_reps``
    repetitions per pattern when a chunk size was never measured
    (e.g. Fig. 3's runs without some pattern types).
    """
    factors = chunk_repetitions(pattern_runs)
    total = 0.0
    for p in type3_patterns:
        if p.fill_segment:
            continue
        reps = factors.get(p.l, fallback_reps)
        total += p.l * max(reps, 1.0)
    segment = ((int(total) + MB - 1) // MB) * MB  # round up to 1 MB
    segment = max(segment, MB)
    if max_segment is not None:
        segment = min(segment, max(MB, (max_segment // MB) * MB))
    return segment
