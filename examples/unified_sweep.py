#!/usr/bin/env python3
"""Drive both benchmarks through the unified runtime ("run-spine").

One API runs b_eff and b_eff_io the same way: a :class:`RunSpec`
names the run (benchmark, machine, nprocs, engine config), the sweep
orchestrator scales it across partition sizes with a crash-safe
journal, and every result comes back as a versioned
:class:`ResultEnvelope` (values + validity + provenance + timings)
ready for export.  This example sweeps two library machines with
*both* benchmarks and prints a combined characterization table — the
balance question the paper asks, asked through one runtime.

Run:  python examples/unified_sweep.py
"""

import tempfile

from repro.beff.measurement import MeasurementConfig
from repro.beffio.benchmark import BeffIOConfig
from repro.runtime import run_spec, run_sweep
from repro.util import MB

MACHINES = ("t3e", "sp")
PARTITIONS = [2, 4, 8]

# Fast engine modes keep the example to seconds; both benchmarks run
# bit-identically under their reference engines (backend="des",
# mode="reference") — that equivalence is itself a checked contract.
CONFIGS = {
    "b_eff": MeasurementConfig(backend="analytic"),
    "b_eff_io": BeffIOConfig(T=1.0, pattern_types=(0, 1, 2, 3, 4)),
}

# -- single runs through RunSpec ----------------------------------------
#
# A RunSpec is the atom of the runtime: fully typed, fingerprintable
# (engine mode and fault seed are explicit), and executable.

print("single runs (RunSpec -> ResultEnvelope)")
for machine in MACHINES:
    for benchmark, config in CONFIGS.items():
        spec = run_spec(benchmark, machine, nprocs=4, config=config)
        envelope = spec.envelope()
        value = envelope.values["b_eff"] if benchmark == "b_eff" else envelope.values["b_eff_io"]
        print(
            f"  {machine:4s} {benchmark:8s} mode={spec.engine_mode:10s}"
            f" fingerprint={spec.fingerprint()[:12]}  "
            f"value = {value / MB:9.1f} MB/s"
            f"  (measured {envelope.timings['measured_s']:.2f} simulated s)"
        )

# -- partition sweeps through the shared orchestrator -------------------
#
# The same run_sweep drives either benchmark: same journal layout,
# same resume/retry contract, same worker-error reporting.  Here each
# sweep journals into a temporary directory; pass resume=True after a
# crash to replay finished partitions bit-identically.

print("\npartition sweeps (shared orchestrator, journaled)")
rows = {}
for machine in MACHINES:
    for benchmark, config in CONFIGS.items():
        with tempfile.TemporaryDirectory() as journal_dir:
            outcome = run_sweep(
                benchmark, machine, PARTITIONS, config,
                journal=journal_dir, retries=1,
            )
        rows[(machine, benchmark)] = outcome
        per_partition = "  ".join(
            f"{n}:{v / MB:8.1f}" for n, v in sorted(outcome.partition_values().items())
        )
        print(
            f"  {machine:4s} {benchmark:8s} [{per_partition}] MB/s"
            f"  best = {outcome.system_value / MB:9.1f} MB/s"
            f" @ {outcome.best_partition} procs"
        )

# -- the balance table --------------------------------------------------
#
# With both benchmarks under one spine, the paper's balance question
# becomes a two-column table from one sweep loop.

print("\ncommunication/I-O balance (best partition each)")
print(f"  {'machine':8s} {'b_eff [MB/s]':>14s} {'b_eff_io [MB/s]':>16s} {'ratio':>8s}")
for machine in MACHINES:
    comm = rows[(machine, "b_eff")].system_value
    io = rows[(machine, "b_eff_io")].system_value
    print(
        f"  {machine:8s} {comm / MB:14.1f} {io / MB:16.1f} {comm / io:8.1f}"
    )
