#!/usr/bin/env python3
"""Quickstart: run both benchmarks on a simulated Cray T3E.

This is the 5-minute tour of the library:

1. pick a machine model from the library,
2. run b_eff (effective communication bandwidth, paper Sec. 4),
3. run one b_eff_io partition (effective I/O bandwidth, Sec. 5),
4. print the same summary numbers the paper's tables report.

Run:  python examples/quickstart.py
"""

from repro.beff import MeasurementConfig
from repro.beffio import BeffIOConfig
from repro.machines import get_machine
from repro.reporting import bandwidth_curve, beff_protocol, beffio_summary
from repro.util import MB, format_time

PROCS = 8

machine = get_machine("t3e")
print(f"machine: {machine.name}, {PROCS} processes, "
      f"{machine.memory_per_proc // MB} MB per processor\n")

# -- b_eff ------------------------------------------------------------------
# The analytic backend prices each communication round with a one-shot
# max-min allocation; drop backend="analytic" to run the full event
# simulation (identical shape, slower).
beff = machine.run_beff(PROCS, MeasurementConfig(backend="analytic"))
print(beff_protocol(beff, max_rows=10))
print(f"({len(beff.records)} raw records)\n")

print(f"time to communicate the total memory once: "
      f"{format_time(beff.memory_transfer_time())}")
print("(paper Sec. 2.2: 3.2 s on the 512-PE T3E — the 'coffee-cup' scale)\n")

# The classic b_eff diagram: bandwidth over message size.  The ratio
# of the area under this curve to the asymptotic-bandwidth rectangle
# is exactly the b_eff averaging rule.
print(bandwidth_curve(beff, "ring-6"))
print()

# -- b_eff_io ---------------------------------------------------------------
# T is the scheduled partition time in *simulated* seconds.  The paper
# requires T >= 15 min for official numbers; a few seconds preserve the
# qualitative behavior and keep the example fast.
beffio = machine.run_beffio(4, BeffIOConfig(T=4.0))
print(beffio_summary(beffio))

ratio = beff.b_eff / beffio.b_eff_io
print(f"\ncommunication / I/O bandwidth ratio: {ratio:.0f}x")
print("(paper Sec. 2.2: about two orders of magnitude)")
