#!/usr/bin/env python3
"""Balance-factor survey: Table 1 and Fig. 1 across the machine library.

Runs b_eff on every machine in the library at (a subset of) the
process counts the paper reports, prints the Table 1 columns, the
classic ping-pong comparison from the detail patterns, and the
balance factor b_eff / R_max of Fig. 1.

Run:  python examples/balance_survey.py
"""

from repro.beff import MeasurementConfig, run_detail
from repro.machines import MACHINES, get_machine
from repro.reporting import figure1_rows, table1
from repro.util import MB

# The analytic backend keeps the whole survey to a few seconds; swap
# backend="des" for the full event simulation.
CONFIG = MeasurementConfig(backend="analytic")

# (machine key, process count): a representative subset of Table 1.
RUNS = [
    ("t3e", 27),
    ("sr8000", 24),
    ("sr8000-seq", 24),
    ("sr2201", 16),
    ("sx5", 4),
    ("sx4", 16),
    ("hpv", 7),
    ("sv1", 15),
]

entries = []
for key, procs in RUNS:
    spec = get_machine(key)
    result = spec.run_beff(procs, CONFIG)
    detail = run_detail(
        spec.fabric_factory(procs), spec.memory_per_proc,
        iterations=1, int_bits=spec.int_bits,
    )
    pingpong = detail["ping-pong"].bandwidth
    entries.append((spec, result, pingpong))
    print(f"ran {spec.name:28s} n={procs:4d}  "
          f"b_eff={result.b_eff / MB:9.0f} MB/s  "
          f"ping-pong={pingpong / MB:7.0f} MB/s")

print()
print(table1(entries).render())

print()
print("Fig. 1 — balance factor (bytes communicated per flop):")
for name, bf in sorted(
    figure1_rows([(s, r) for s, r, _p in entries]), key=lambda x: -x[1]
):
    bar = "#" * max(1, int(bf * 400))
    print(f"  {name:32s} {bf:7.4f}  {bar}")

print("""
Reading the table the way the paper does:
 * ping-pong >> b_eff/proc: everyone communicating at once is far
   slower than the marketing number;
 * the last column (rings only) beats the one before it (rings and
   random placement): placement matters;
 * the SR 8000's two rows differ only in rank placement — sequential
   keeps ring neighbors inside a node.
""")
