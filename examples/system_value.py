#!/usr/bin/env python3
"""Determining a system's official b_eff_io value.

The paper defines the b_eff_io *of a system* as the maximum over any
single partition's value, measured with a scheduled time of at least
15 minutes (Sec. 5.1: "This definition permits the user of the
benchmark to freely choose the usage aspects...").  This example runs
the partition sweep on the T3E model, reports the per-partition
values and the system value, and applies the Sec. 5.4 cache rule to
decide whether the numbers can be trusted as *disk* bandwidth.

Run:  python examples/system_value.py        (~2 min)
"""

from repro.beffio import BeffIOConfig, bytes_per_method, cache_rule, run_sweep
from repro.machines import get_machine
from repro.reporting.plots import log_bar_chart
from repro.util import MB

spec = get_machine("t3e")
# Scaled-down T; the paper requires T >= 900 s for an official number
# (run_sweep reports whether that rule was met).
config = BeffIOConfig(T=2.5, pattern_types=(0, 1, 2))

sweep = run_sweep(spec, partitions=[2, 4, 8, 16], config=config)

print(f"machine: {sweep.machine}")
print(f"scheduled time per partition: T = {config.T} s "
      f"({'official' if sweep.official else 'NOT official: T < 15 min'})\n")

rows = [
    (f"{n} procs", value / MB)
    for n, value in sorted(sweep.partition_values().items())
]
print(log_bar_chart(rows, width=40, title="b_eff_io per partition (log scale)"))
print(f"\nsystem b_eff_io = {sweep.system_b_eff_io / MB:.1f} MB/s "
      f"(best partition: {sweep.best_partition} processes)")

# -- can we trust it as disk bandwidth? -------------------------------------
best = next(r for r in sweep.results if r.nprocs == sweep.best_partition)
moved = bytes_per_method(best.type_results)
verdict = cache_rule(moved, cache_bytes=spec.pfs.cache_bytes)
print("\nSec. 5.4 cache rule (bytes moved >= 20x filesystem cache?):")
for method in ("write", "rewrite", "read"):
    status = "ok" if verdict[method] else "CACHE-INFLATED"
    print(f"  {method:8s}: {moved[method] / MB:10.1f} MB moved -> {status}")
print(f"  (filesystem cache: {spec.pfs.cache_bytes / MB:.0f} MB)")
print("""
With the scaled-down T every method fails the rule — exactly the
paper's warning: short benchmark runs measure the cache, and an
official 15-minute run is needed before quoting the number.""")
