#!/usr/bin/env python3
"""I/O characterization: the paper's Sec. 5 story on two machines.

Reproduces, at example scale, the contrast of Fig. 3: on the Cray T3E
the I/O subsystem is a *global resource* (10 striped RAID disks on a
GigaRing — the partition size barely matters and the best value sits
at a mid-size partition), while on the IBM SP the I/O bandwidth
*tracks the number of compute nodes* until the 20 GPFS servers
saturate.  Also prints the per-pattern detail (the data behind
Fig. 4) for one run.

Run:  python examples/io_characterization.py          (~1-2 min)
"""

from repro.beffio import BeffIOConfig
from repro.machines import get_machine
from repro.reporting import beffio_pattern_table, figure3_series
from repro.util import MB

# Simulated seconds per partition; the paper uses T >= 900 s.  A small
# T preserves the shapes (and, per Sec. 5.4, *overstates* cache
# benefits exactly the way short real runs do).
T = 3.0
PARTITIONS = (2, 4, 8, 16)
CONFIG = BeffIOConfig(T=T, pattern_types=(0, 1, 2))  # Fig. 3 ran without type 3

for key in ("t3e", "sp"):
    spec = get_machine(key)
    print(f"=== {spec.name} ===")
    results = []
    for procs in PARTITIONS:
        res = spec.run_beffio(procs, CONFIG)
        results.append(res)
        print(f"  ran partition of {procs} processes: "
              f"b_eff_io = {res.b_eff_io / MB:.1f} MB/s")
    print("\n  procs   write  rewrite   read   b_eff_io  (MB/s)")
    for procs, w, rw, r, total in figure3_series(results):
        print(f"  {procs:5d} {w:8.1f} {rw:8.1f} {r:7.1f} {total:10.1f}")
    best = max(results, key=lambda r: r.b_eff_io)
    print(f"  -> best partition: {best.nprocs} processes\n")

# -- Fig. 4-style detail on the T3E ----------------------------------------
spec = get_machine("t3e")
res = spec.run_beffio(4, BeffIOConfig(T=3.0))
print(beffio_pattern_table(res, "write").render())
print("""
Things to look for (paper Sec. 5.3):
 * type 0 (collective scatter) keeps its bandwidth at small chunks:
   two-phase collective buffering turns 1 kB strides into large
   contiguous filesystem writes;
 * the '+8' non-wellformed chunks pay read-modify-write penalties;
 * 1 kB noncollective chunks (types 1-3) are an order of magnitude
   below the 1 MB ones.
""")
