#!/usr/bin/env python3
"""Process-placement study on a cluster of SMP nodes.

The paper's Table 1 shows the Hitachi SR 8000 twice: with *sequential*
rank numbering (ranks fill one SMP node before the next) and with
*round-robin* numbering (consecutive ranks land on different nodes).
Ring bandwidth differs by ~4x because sequential placement keeps most
ring neighbors on the same memory bus.

This example quantifies that effect, shows the random patterns are
placement-insensitive (they are random either way), and runs the
non-averaged Cartesian detail patterns whose dimensions stress the
two levels of the hierarchy differently.

Run:  python examples/placement_study.py
"""

from repro.beff import MeasurementConfig, run_detail
from repro.machines import hitachi_sr8000
from repro.util import MB

PROCS = 24
CONFIG = MeasurementConfig(backend="analytic")

results = {}
for placement in ("sequential", "round-robin"):
    spec = hitachi_sr8000(placement)
    results[placement] = spec.run_beff(PROCS, CONFIG)

print(f"Hitachi SR 8000, {PROCS} processes (3 SMP nodes x 8 CPUs)\n")
print(f"{'':24s}{'sequential':>12s}{'round-robin':>12s}{'paper seq':>10s}{'paper rr':>9s}")
rows = [
    ("b_eff/proc", lambda r: r.b_eff_per_proc, 75, 38),
    ("b_eff/proc @ Lmax", lambda r: r.b_eff_at_lmax_per_proc, 226, 115),
    ("ring-only @ Lmax/proc", lambda r: r.ring_only_at_lmax_per_proc, 400, 110),
]
for label, getter, paper_seq, paper_rr in rows:
    seq = getter(results["sequential"]) / MB
    rr = getter(results["round-robin"]) / MB
    print(f"{label:24s}{seq:10.0f} {rr:12.0f} {paper_seq:10d} {paper_rr:9d}")

ring_ratio = (
    results["sequential"].logavg_ring / results["round-robin"].logavg_ring
)
random_ratio = (
    results["sequential"].logavg_random / results["round-robin"].logavg_random
)
print(f"\nsequential/round-robin ratio: ring patterns {ring_ratio:.2f}x, "
      f"random patterns {random_ratio:.2f}x")
print("(rings love locality; random placement can't exploit it)\n")

# -- detail patterns: where does the hierarchy bite? ------------------------
for placement in ("sequential", "round-robin"):
    spec = hitachi_sr8000(placement)
    det = run_detail(spec.fabric_factory(PROCS), spec.memory_per_proc, iterations=1)
    interesting = [k for k in det if k.startswith("cart") or "bisection" in k]
    print(f"{placement}:")
    for name in sorted(interesting):
        print(f"  {name:16s} {det[name].bandwidth / MB:10.0f} MB/s aggregate")
    print()

# -- which links actually carry the traffic? --------------------------------
# The fluid network tracks bytes per link; the hottest links explain
# the placement gap: sequential ring traffic lives on the memory
# buses, round-robin traffic funnels through the NICs.
for placement in ("sequential", "round-robin"):
    spec = hitachi_sr8000(placement)
    fabric = spec.fabric_factory(PROCS)()
    from repro.mpi import World
    from repro.sim import Process

    world = World(fabric)

    def program(comm):
        n = comm.size
        left, right = (comm.rank - 1) % n, (comm.rank + 1) % n
        yield from comm.sendrecv(left, 8 * MB, right)
        yield from comm.sendrecv(right, 8 * MB, left)

    world.run(program)
    print(f"{placement}: hottest links after one ring round")
    for name, nbytes in fabric.flows.hottest_links(top=4):
        print(f"  {name:12s} {nbytes / MB:8.0f} MB")
    print()
