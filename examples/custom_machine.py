#!/usr/bin/env python3
"""Model your own machine and benchmark it.

The machine library covers the paper's systems, but the point of the
benchmarks is to characterize *new* machines.  This example builds a
hypothetical commodity Linux cluster (the kind the paper's "Top
Clusters" outlook, Sec. 6, is aimed at): 16 dual-CPU nodes on a
fat-tree with 2:1 oversubscription, plus a small NFS-ish I/O
subsystem — then asks the benchmarks whether it is *balanced*.

Run:  python examples/custom_machine.py
"""

from repro.beff import MeasurementConfig, balance_factor
from repro.beffio import BeffIOConfig
from repro.machines import MachineSpec, get_machine
from repro.net import NetParams
from repro.pfs import PFSConfig
from repro.topology import FatTree
from repro.util import GB, KB, MB, format_time


def commodity_cluster() -> MachineSpec:
    return MachineSpec(
        name="Commodity cluster (hypothetical)",
        memory_per_proc=512 * MB,  # L_max = 4 MB
        int_bits=32,
        rmax_per_proc=0.6e9,
        # 100 MB/s NICs (gigabit-class), 8 hosts per edge switch,
        # 2:1 oversubscribed uplinks
        make_topology=lambda n: FatTree(
            n, radix=8, downlink_bw=100 * MB, oversubscription=2.0
        ),
        net=NetParams(
            latency=45e-6,  # commodity TCP-era latency
            intra_node_latency=10e-6,
            eager_threshold=16 * KB,
            rendezvous_latency=25e-6,
            msg_rate_cap=95 * MB,
        ),
        pfs=PFSConfig(
            num_servers=2,  # two NFS-ish servers
            stripe_unit=64 * KB,
            disk_bw=25 * MB,
            ingest_bw=300 * MB,
            seek_time=8e-3,
            request_overhead=4e-4,
            disk_block=8 * KB,
            cache_bytes=512 * MB,
            client_bw=60 * MB,
            server_net_bw=80 * MB,
            call_overhead=2e-4,
        ),
        procs_choices=(16, 32),
        notes="example of a user-defined machine",
    )


cluster = commodity_cluster()
PROCS = 16

print(f"=== {cluster.name}, {PROCS} processes ===\n")
beff = cluster.run_beff(PROCS, MeasurementConfig(backend="analytic"))
print(f"b_eff                 {beff.b_eff / MB:10.0f} MB/s")
print(f"b_eff per process     {beff.b_eff_per_proc / MB:10.0f} MB/s")
print(f"at Lmax per process   {beff.b_eff_at_lmax_per_proc / MB:10.0f} MB/s")
print(f"memory communicated in {format_time(beff.memory_transfer_time())}")

bf = balance_factor(beff.b_eff, cluster.rmax(PROCS))
t3e = get_machine("t3e")
t3e_beff = t3e.run_beff(PROCS, MeasurementConfig(backend="analytic"))
bf_t3e = balance_factor(t3e_beff.b_eff, t3e.rmax(PROCS))
print(f"\nbalance factor        {bf:10.4f} bytes/flop")
print(f"Cray T3E reference    {bf_t3e:10.4f} bytes/flop")
print(f"-> the cluster delivers {bf / bf_t3e:.1%} of the T3E's balance\n")

io = cluster.run_beffio(8, BeffIOConfig(T=3.0))
print(f"b_eff_io ({io.nprocs} procs)    {io.b_eff_io / MB:10.1f} MB/s")
for method, value in io.method_values.items():
    print(f"  {method:8s}            {value / MB:10.1f} MB/s")

# The coffee-cup rule (paper Sec. 2.2): a balanced system writes or
# reads its total memory in ~10 minutes.
memory = cluster.memory_per_proc * io.nprocs
coffee = memory / io.b_eff_io
print(f"\ncoffee-cup check: total memory {memory / GB:.1f} GB, "
      f"I/O round trip ~{format_time(coffee)}")
print("(rule of thumb: should be <= ~10 min on a balanced system)")
