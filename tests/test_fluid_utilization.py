"""Tests for per-link utilization accounting."""

import pytest

from repro.beff import MeasurementConfig, run_beff
from repro.net import Fabric, NetParams
from repro.sim import FlowNetwork, Process, Simulator
from repro.topology import Torus
from repro.util import MB


class TestLinkBytes:
    def test_single_flow_charges_route(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        a, b = net.add_link(10.0, "a"), net.add_link(10.0, "b")

        def prog():
            yield net.start_flow([a, b], 100.0)

        Process(sim, prog())
        sim.run_to_completion()
        assert net.link_bytes[a] == pytest.approx(100.0)
        assert net.link_bytes[b] == pytest.approx(100.0)

    def test_shared_link_accumulates_both_flows(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_link(10.0, "shared")

        def prog(n):
            yield net.start_flow([link], n)

        Process(sim, prog(30.0))
        Process(sim, prog(70.0))
        sim.run_to_completion()
        assert net.link_bytes[link] == pytest.approx(100.0)

    def test_hottest_links_ranked(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        cold = net.add_link(10.0, "cold")
        hot = net.add_link(10.0, "hot")

        def prog(route, n):
            yield net.start_flow(route, n)

        Process(sim, prog([cold], 10.0))
        Process(sim, prog([hot], 90.0))
        sim.run_to_completion()
        ranked = net.hottest_links()
        assert ranked[0] == ("hot", pytest.approx(90.0))
        assert ranked[1][0] == "cold"

    def test_private_cap_links_excluded(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_link(100.0, "real")

        def prog():
            yield net.start_flow([link], 50.0, rate_cap=10.0)

        Process(sim, prog())
        sim.run_to_completion()
        names = [name for name, _b in net.hottest_links()]
        assert names == ["real"]

    def test_top_limit(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        links = [net.add_link(10.0, f"l{i}") for i in range(5)]

        def prog(link):
            yield net.start_flow([link], 10.0)

        for link in links:
            Process(sim, prog(link))
        sim.run_to_completion()
        assert len(net.hottest_links(top=3)) == 3


class TestRingVsRandomExplanation:
    def test_random_placement_creates_hotter_fabric_links(self):
        # the observability feature explains the b_eff result: under
        # random placement, some torus fabric link carries far more
        # bytes than any link does under ring placement
        def max_fabric_bytes(kind):
            def factory():
                sim = Simulator()
                return Fabric(
                    sim, Torus((4, 4, 4), link_bw=300 * MB),
                    NetParams(latency=10e-6),
                )

            fabric = factory()
            from repro.beff.patterns import random_patterns, ring_patterns
            from repro.sim import Process as P

            pattern = (ring_patterns(64) if kind == "ring" else random_patterns(64))[5]

            def prog(src, dst):
                yield fabric.transfer_event(src, dst, MB)

            for ring in pattern.rings:
                k = len(ring)
                for i, rank in enumerate(ring):
                    P(fabric.sim, prog(rank, ring[(i + 1) % k]))
            fabric.sim.run_to_completion()
            fabric_bytes = [
                nbytes
                for name, nbytes in fabric.flows.hottest_links(top=5)
                if ".d" in name  # fabric links only (torus.l<n>.d<dim><dir>)
            ]
            return max(fabric_bytes) if fabric_bytes else 0.0

        assert max_fabric_bytes("random") >= 2 * max_fabric_bytes("ring")
