"""Failure-injection tests: errors must surface loudly, never hang.

A simulation framework earns trust by how it fails: a crashed rank
program, an impossible configuration, or a semantic violation must
abort the run with the original exception — not deadlock, not corrupt
other ranks' results silently.
"""

import pytest

from repro.mpi import MpiError, World
from repro.mpiio import IOFile, StridedView
from repro.net import Fabric, NetParams
from repro.pfs import FileSystem, PFSConfig
from repro.sim import DeadlockError, Process, Simulator, Sleep
from repro.topology import Torus
from repro.util import KB, MB


def make_world(nprocs=4):
    sim = Simulator()
    fabric = Fabric(sim, Torus((nprocs,), link_bw=100 * MB), NetParams())
    return World(fabric)


class TestRankProgramCrashes:
    def test_exception_in_rank_program_propagates(self):
        world = make_world(2)

        def program(comm):
            yield Sleep(0.1)
            if comm.rank == 1:
                raise RuntimeError("simulated application bug")

        with pytest.raises(RuntimeError, match="application bug"):
            world.run(program)

    def test_exception_mid_collective_propagates(self):
        world = make_world(4)

        def program(comm):
            yield from comm.barrier()
            if comm.rank == 2:
                raise ValueError("boom in the middle")
            yield from comm.barrier()

        with pytest.raises(ValueError, match="boom"):
            world.run(program)


class TestSemanticViolations:
    def test_one_sided_collective_deadlocks_loudly(self):
        # rank 0 calls barrier, rank 1 does not: a real MPI would hang;
        # we must raise DeadlockError naming the stuck process
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.barrier()

        with pytest.raises(DeadlockError, match="rank0"):
            world.run(program)

    def test_missing_receive_detected(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                # rendezvous-sized message with no receiver ever posted
                yield from comm.send(1, nbytes=1 * MB)

        with pytest.raises(DeadlockError):
            world.run(program)

    def test_mismatched_collective_file_call_detected(self):
        sim = Simulator()
        fabric = Fabric(sim, Torus((2,), link_bw=100 * MB), NetParams())
        world = World(fabric)
        fs = FileSystem(sim, PFSConfig(
            num_servers=1, stripe_unit=64 * KB, disk_bw=50 * MB,
            ingest_bw=400 * MB, seek_time=1e-3, request_overhead=1e-4,
            disk_block=4 * KB, cache_bytes=16 * MB, client_bw=100 * MB,
            server_net_bw=100 * MB, call_overhead=1e-5,
        ))
        f = IOFile(world.comm_world, fs, "half")

        def program(comm):
            if comm.rank == 0:
                yield from f.write_all(0, KB)  # rank 1 never joins

        with pytest.raises(DeadlockError):
            world.run(program)


class TestBadConfigurationsFailFast:
    def test_view_mapping_errors_surface(self):
        world = make_world(2)
        with pytest.raises(ValueError):
            StridedView(0, 10, 5)  # stride < block

    def test_send_to_invalid_rank_fails_at_call(self):
        world = make_world(2)

        def program(comm):
            yield from comm.send(17, nbytes=8)

        with pytest.raises(MpiError):
            world.run(program)

    def test_simulator_refuses_past_scheduling_from_program(self):
        sim = Simulator()

        def prog():
            yield Sleep(1.0)
            sim.schedule(-5.0, lambda: None)

        Process(sim, prog())
        with pytest.raises(ValueError):
            sim.run()


class TestPartialProgressIsNotLost:
    def test_results_before_crash_are_recorded(self):
        world = make_world(2)
        seen = []

        def program(comm):
            yield from comm.barrier()
            seen.append(comm.rank)
            yield from comm.barrier()
            if comm.rank == 0:
                raise RuntimeError("late crash")

        with pytest.raises(RuntimeError):
            world.run(program)
        assert sorted(seen) == [0, 1]
