"""Fast-path vs reference oracle: the bit-identity contract.

``BeffIOConfig(mode="fast")`` arms the steady-state repetition
fast-forward (:mod:`repro.beffio.fastforward`); ``mode="reference"``
simulates every repetition event for event.  The whole design rests on
the two modes being *bit-identical* — not approximately equal — in
every reported aggregate, because a skip only ever replaces
repetitions it has proven periodic.  These tests pin that contract
across randomized small configurations, and pin the driver-level
``sync_drains`` default against the MPI-IO layer's.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beffio import BeffIOConfig, run_beffio
from repro.beffio.sweep import run_sweep
from repro.mpiio.file import IOFile, open_file
from repro.util import KB, MB

from tests.test_beffio_benchmark import env_factory

MEM = 256 * MB


def _identical(ref, fast):
    assert ref.b_eff_io == fast.b_eff_io
    assert ref.pattern_runs == fast.pattern_runs
    assert ref.method_values == fast.method_values
    assert ref.type_results == fast.type_results
    assert ref.segment_size == fast.segment_size


def _run_both(nprocs, config_kwargs, fs_over=None):
    results = {}
    for mode in ("reference", "fast"):
        results[mode] = run_beffio(
            env_factory(nprocs, **(fs_over or {})),
            MEM,
            BeffIOConfig(mode=mode, **config_kwargs),
        )
    return results["reference"], results["fast"]


class TestFastMatchesReference:
    def test_default_small_run(self):
        ref, fast = _run_both(4, dict(T=1.5))
        _identical(ref, fast)

    def test_longer_run_arms_skips(self):
        # T=6 is long enough that several timed loops provably arm
        ref, fast = _run_both(4, dict(T=6.0))
        _identical(ref, fast)

    def test_geometric_termination_never_breaks(self):
        # geometric loops are not eligible for the fast path; fast
        # mode must still agree (it simply never arms)
        ref, fast = _run_both(4, dict(T=1.5, termination="geometric"))
        _identical(ref, fast)

    def test_super_period_geometry(self):
        # a stripe period that does not divide the per-repetition
        # advance of the non-wellformed rows forces the detector
        # through its super-period (macro-repetition) path
        ref, fast = _run_both(
            4, dict(T=3.0, pattern_types=(0,)),
            fs_over=dict(num_servers=2, stripe_unit=16 * KB),
        )
        _identical(ref, fast)

    @settings(max_examples=6, deadline=None)
    @given(
        nprocs=st.sampled_from([2, 3, 4]),
        T=st.sampled_from([0.75, 1.5, 3.0]),
        types=st.sets(st.sampled_from([0, 1, 2, 3, 4]), min_size=1, max_size=2),
        termination=st.sampled_from(["per-iteration", "geometric"]),
        sync_drains=st.booleans(),
        num_servers=st.sampled_from([1, 2, 4]),
    )
    def test_randomized_configs(self, nprocs, T, types, termination,
                                sync_drains, num_servers):
        ref, fast = _run_both(
            nprocs,
            dict(
                T=T,
                pattern_types=tuple(sorted(types)),
                termination=termination,
                sync_drains=sync_drains,
            ),
            fs_over=dict(num_servers=num_servers),
        )
        _identical(ref, fast)

    def test_wellformed_only_subset(self):
        ref, fast = _run_both(4, dict(T=1.5, wellformed_only=True))
        _identical(ref, fast)
        assert fast.pattern_runs and all(r.wellformed for r in fast.pattern_runs)


class TestSyncDrainsContract:
    def test_driver_default_matches_mpiio_default(self):
        """The b_eff_io driver and a standalone open_file must agree on
        what MPI_File_sync means by default (publish, don't drain)."""
        import inspect

        driver_default = BeffIOConfig().sync_drains
        open_default = inspect.signature(open_file).parameters["sync_drains"].default
        iofile_default = inspect.signature(IOFile.__init__).parameters[
            "sync_drains"
        ].default
        assert driver_default == open_default == iofile_default is False

    def test_sync_drains_changes_measured_bandwidth(self):
        """sync_drains=True waits for disk writeback inside the timed
        region, so a cache-sized write run must measure a strictly
        lower value than publish-only sync."""
        loose = run_beffio(
            env_factory(4), MEM, BeffIOConfig(T=1.5, pattern_types=(0,))
        )
        strict = run_beffio(
            env_factory(4), MEM,
            BeffIOConfig(T=1.5, pattern_types=(0,), sync_drains=True),
        )
        assert strict.b_eff_io < loose.b_eff_io

    def test_sync_drains_identity_holds_in_fast_mode(self):
        ref, fast = _run_both(4, dict(T=1.5, sync_drains=True))
        _identical(ref, fast)


class TestParallelSweep:
    def test_parallel_identical_to_serial_four_configs(self):
        """The 4-partition matrix: a parallel sweep must reproduce the
        serial sweep bit for bit (each partition is an independent
        simulation; workers only change wall-clock time)."""
        config = BeffIOConfig(T=2.0, pattern_types=(0, 1))
        serial = run_sweep("sp", [1, 2, 3, 4], config, jobs=1)
        parallel = run_sweep("sp", [1, 2, 3, 4], config, jobs=4)
        assert serial.machine == parallel.machine
        assert serial.system_b_eff_io == parallel.system_b_eff_io
        assert serial.best_partition == parallel.best_partition
        for a, b in zip(serial.results, parallel.results):
            assert a.nprocs == b.nprocs
            assert a.b_eff_io == b.b_eff_io
            assert a.pattern_runs == b.pattern_runs

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("sp", [2], BeffIOConfig(T=1.0), jobs=0)
