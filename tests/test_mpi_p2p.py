"""Tests for simulated MPI point-to-point semantics."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiError, World
from repro.net import Fabric, NetParams
from repro.sim import Simulator, Sleep
from repro.topology import Crossbar, Torus
from repro.util import MB


def make_world(nprocs=2, topo=None, **params):
    sim = Simulator()
    topo = topo or Torus((nprocs,), link_bw=100 * MB)
    params.setdefault("latency", 10e-6)
    fabric = Fabric(sim, topo, NetParams(**params))
    return World(fabric)


class TestBasicSendRecv:
    def test_payload_delivery(self):
        world = make_world()
        got = {}

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=1024, tag=5, data="hello")
            else:
                status = yield from comm.recv(0, tag=5)
                got.update(source=status.source, tag=status.tag,
                           nbytes=status.nbytes, data=status.data)

        world.run(program)
        assert got == {"source": 0, "tag": 5, "nbytes": 1024, "data": "hello"}

    def test_recv_before_send(self):
        world = make_world()
        got = []

        def program(comm):
            if comm.rank == 1:
                status = yield from comm.recv(0)
                got.append(status.nbytes)
            else:
                yield Sleep(1.0)
                yield from comm.send(1, nbytes=64)

        world.run(program)
        assert got == [64]

    def test_wildcard_source_and_tag(self):
        world = make_world(3)
        got = []

        def program(comm):
            if comm.rank == 2:
                s1 = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                s2 = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                got.append({s1.source, s2.source})
            elif comm.rank == 0:
                yield from comm.send(2, nbytes=8, tag=1)
            else:
                yield Sleep(0.5)
                yield from comm.send(2, nbytes=8, tag=2)

        world.run(program)
        assert got == [{0, 1}]

    def test_tag_selectivity(self):
        world = make_world()
        order = []

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=8, tag=1, data="first")
                yield from comm.send(1, nbytes=8, tag=2, data="second")
            else:
                s2 = yield from comm.recv(0, tag=2)
                s1 = yield from comm.recv(0, tag=1)
                order.extend([s2.data, s1.data])

        world.run(program)
        assert order == ["second", "first"]

    def test_non_overtaking_same_tag(self):
        world = make_world()
        order = []

        def program(comm):
            if comm.rank == 0:
                for i in range(4):
                    yield from comm.send(1, nbytes=8, tag=0, data=i)
            else:
                for _ in range(4):
                    status = yield from comm.recv(0, tag=0)
                    order.append(status.data)

        world.run(program)
        assert order == [0, 1, 2, 3]

    def test_self_send(self):
        world = make_world()
        got = []

        def program(comm):
            if comm.rank == 0:
                req = comm.irecv(0, tag=3)
                yield from comm.send(0, nbytes=16, tag=3, data="self")
                status = yield from req.wait()
                got.append(status.data)
            else:
                return
                yield  # pragma: no cover

        world.run(program)
        assert got == ["self"]

    def test_truncation_error(self):
        world = make_world()

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=100)
            else:
                yield from comm.recv(0, capacity=50)

        with pytest.raises(MpiError, match="truncation"):
            world.run(program)

    def test_invalid_rank_rejected(self):
        world = make_world()

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(5, nbytes=1)

        with pytest.raises(MpiError):
            world.run(program)

    def test_user_negative_tag_rejected(self):
        world = make_world()

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=1, tag=-7)
            else:
                yield from comm.recv(0)

        with pytest.raises(MpiError):
            world.run(program)


class TestProtocols:
    def test_eager_send_completes_without_receiver(self):
        # An eager send's request completes even though the matching
        # receive is posted much later.
        world = make_world(eager_threshold=1024)
        send_done_at = []

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=512)
                send_done_at.append(comm.wtime())
            else:
                yield Sleep(10.0)
                yield from comm.recv(0)

        world.run(program)
        assert send_done_at[0] < 1.0

    def test_rendezvous_send_waits_for_receiver(self):
        world = make_world(eager_threshold=100)
        send_done_at = []

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=1000)
                send_done_at.append(comm.wtime())
            else:
                yield Sleep(10.0)
                yield from comm.recv(0)

        world.run(program)
        assert send_done_at[0] >= 10.0

    def test_rendezvous_data_flow_starts_after_match(self):
        # Transfer counts as fabric traffic only after the handshake.
        world = make_world(eager_threshold=0, rendezvous_latency=0.0, latency=0.0)
        recv_done = []

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=100 * MB)
            else:
                yield Sleep(5.0)
                yield from comm.recv(0)
                recv_done.append(comm.wtime())

        world.run(program)
        # 5 s wait + 100 MB at 100 MB/s = 6 s total
        assert recv_done[0] == pytest.approx(6.0, rel=1e-6)


class TestNonblocking:
    def test_isend_irecv_waitall(self):
        world = make_world()
        got = []

        def program(comm):
            if comm.rank == 0:
                reqs = [comm.isend(1, nbytes=8, tag=i, data=i) for i in range(3)]
                yield from comm.waitall(reqs)
            else:
                reqs = [comm.irecv(0, tag=i) for i in range(3)]
                statuses = yield from comm.waitall(reqs)
                got.extend(s.data for s in statuses)

        world.run(program)
        assert got == [0, 1, 2]

    def test_request_test_probe(self):
        world = make_world()
        probes = []

        def program(comm):
            if comm.rank == 0:
                yield Sleep(1.0)
                yield from comm.send(1, nbytes=8)
            else:
                req = comm.irecv(0)
                probes.append(req.test())
                yield Sleep(2.0)
                probes.append(req.test())
                yield from req.wait()

        world.run(program)
        assert probes == [False, True]

    def test_sendrecv_bidirectional(self):
        world = make_world()
        got = {}

        def program(comm):
            other = 1 - comm.rank
            status = yield from comm.sendrecv(
                other, send_nbytes=32, src=other, send_data=f"from{comm.rank}"
            )
            got[comm.rank] = status.data

        world.run(program)
        assert got == {0: "from1", 1: "from0"}


class TestTimingParallelism:
    def test_nonblocking_sends_overlap(self):
        # Two 100 MB messages to distinct destinations over distinct
        # links: nonblocking overlaps them, sequential does not.
        def run(sequential):
            world = make_world(
                3, topo=Crossbar(3, port_bw=100 * MB), latency=0.0,
                intra_node_latency=0.0, eager_threshold=0,
                rendezvous_latency=0.0,
            )
            t = []

            def program(comm):
                if comm.rank == 0:
                    if sequential:
                        yield from comm.send(1, nbytes=50 * MB)
                        yield from comm.send(2, nbytes=50 * MB)
                    else:
                        r1 = comm.isend(1, nbytes=50 * MB)
                        r2 = comm.isend(2, nbytes=50 * MB)
                        yield from comm.waitall([r1, r2])
                    t.append(comm.wtime())
                else:
                    yield from comm.recv(0)

            world.run(program)
            return t[0]

        seq_time = run(sequential=True)
        par_time = run(sequential=False)
        # Both messages share rank 0's tx port, so overlap does not
        # halve the time, but it must not be slower than sequential.
        assert par_time <= seq_time * (1 + 1e-9)

    def test_two_rank_ring_full_duplex(self):
        # Paired sendrecv between 2 ranks uses opposite link directions.
        world = make_world(2, latency=0.0, intra_node_latency=0.0,
                           eager_threshold=1 << 30)
        t = []

        def program(comm):
            other = 1 - comm.rank
            yield from comm.sendrecv(other, send_nbytes=100 * MB, src=other)
            t.append(comm.wtime())

        world.run(program)
        # each direction has its own 100 MB/s path: ~1 s, not ~2 s
        assert t[0] == pytest.approx(1.0, rel=0.01)


class TestWorldRun:
    def test_returns_rank_results(self):
        world = make_world(4)

        def program(comm):
            yield Sleep(0.0)
            return comm.rank * 10

        results = world.run(program)
        assert results == [0, 10, 20, 30]

    def test_deadlock_detected(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(1)  # never sent

        from repro.sim import DeadlockError

        with pytest.raises(DeadlockError):
            world.run(program)
