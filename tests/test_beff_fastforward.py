"""b_eff orbit fast-forward: the fast==reference bit-identity contract.

``MeasurementConfig(mode="fast")`` arms the steady-state repetition
fast-forward for the DES backend's timed loops
(:mod:`repro.beff.fastforward`); ``mode="reference"`` simulates every
repetition event for event.  A skip only ever replaces repetitions it
has *proven* exactly periodic, so the two modes must agree to the
bit — in every per-measurement record and every aggregate — across
all three timing methods, under a shuffled event-tie order, and the
fast path must actually engage (a fast path that never arms would
pass equality vacuously).
"""

from __future__ import annotations

import pytest

from repro.beff import MeasurementConfig, run_beff
from repro.beff.fastforward import MIN_SKIP, CountedLoopFF, FastForwardSession
from repro.devtools.sanitizer import sanitized
from repro.faults.plan import FaultPlan, LinkFault
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.topology import Torus
from repro.util import MB

MEM = 512 * MB
#: long enough repetition loops that orbits provably arm, small
#: enough that the reference run stays test-suite friendly
CONFIG = dict(repetitions=1, max_looplength=48)


def torus_factory(shape):
    def make():
        sim = Simulator()
        return Fabric(sim, Torus(shape, link_bw=300 * MB), NetParams(latency=10e-6))

    return make


def _run(mode, shape=(2, 2, 2), tie_shuffle_seed=None, **over):
    kwargs = {**CONFIG, **over, "mode": mode}
    if tie_shuffle_seed is None:
        return run_beff(torus_factory(shape), MEM, MeasurementConfig(**kwargs))
    with sanitized(record=False, tie_shuffle_seed=tie_shuffle_seed):
        return run_beff(torus_factory(shape), MEM, MeasurementConfig(**kwargs))


def _identical(fast, ref):
    assert len(fast.records) == len(ref.records)
    for a, b in zip(fast.records, ref.records):
        assert (a.pattern, a.size, a.method, a.repetition) == (
            b.pattern,
            b.size,
            b.method,
            b.repetition,
        )
        assert a.looplength == b.looplength
        assert a.time.hex() == b.time.hex()
        assert a.bandwidth.hex() == b.bandwidth.hex()
    for name in (
        "b_eff",
        "b_eff_at_lmax",
        "ring_only_at_lmax",
        "logavg_ring",
        "logavg_random",
    ):
        assert getattr(fast, name).hex() == getattr(ref, name).hex()
    assert fast.per_pattern == ref.per_pattern


class TestFastMatchesReference:
    @pytest.mark.parametrize("method", ["nonblocking", "sendrecv", "alltoallv"])
    def test_bit_identical_per_method_and_ff_engages(self, method):
        fast = _run("fast", methods=(method,))
        ref = _run("reference", methods=(method,))
        _identical(fast, ref)
        assert fast.engine_mode == "des-fast"
        assert ref.engine_mode == "des-reference"
        # vacuous-equality guard: the loops must actually skip work
        assert fast.ff_loops_armed > 0
        assert fast.ff_reps_skipped >= MIN_SKIP * fast.ff_loops_armed
        assert ref.ff_loops_armed == 0 and ref.ff_reps_skipped == 0

    def test_all_methods_together(self):
        fast = _run("fast")
        ref = _run("reference")
        _identical(fast, ref)
        assert fast.ff_loops_armed > 0

    def test_bit_identical_under_tie_shuffle(self):
        baseline = _run("reference")
        shuffled_fast = _run("fast", tie_shuffle_seed=7)
        _identical(shuffled_fast, baseline)
        assert shuffled_fast.ff_loops_armed > 0

    def test_multiple_repetitions(self):
        fast = _run("fast", repetitions=3, methods=("sendrecv",))
        ref = _run("reference", repetitions=3, methods=("sendrecv",))
        _identical(fast, ref)


class TestForcingAndPlumbing:
    def test_faults_force_reference_loops(self):
        plan = FaultPlan(
            events=(LinkFault(selector=0, t_start=1e-4, t_end=1e-3, factor=0.5),),
            seed=11,
        )
        res = _run("fast", faults=plan)
        assert res.engine_mode == "des-reference"
        assert res.ff_loops_armed == 0 and res.ff_reps_skipped == 0

    def test_reference_mode_forces_reference(self):
        res = _run("reference")
        assert res.engine_mode == "des-reference"

    def test_analytic_backend_unaffected(self):
        res = run_beff(
            torus_factory((2, 2, 2)),
            MEM,
            MeasurementConfig(backend="analytic", **CONFIG),
        )
        assert res.engine_mode == "analytic"
        assert res.ff_loops_armed == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            MeasurementConfig(mode="warp")

    def test_engine_mode_in_spec_fingerprint(self):
        from repro.runtime.spec import engine_mode_of, sweep_fingerprint

        fast_cfg = MeasurementConfig(mode="fast")
        ref_cfg = MeasurementConfig(mode="reference")
        assert engine_mode_of(fast_cfg) == "des-fast"
        assert engine_mode_of(ref_cfg) == "des-reference"
        assert sweep_fingerprint("b_eff", "t3e", fast_cfg) != sweep_fingerprint(
            "b_eff", "t3e", ref_cfg
        )
        # a fault plan pins the effective engine to the reference loops
        plan = FaultPlan(
            events=(LinkFault(selector=0, t_start=1e-4, t_end=1e-3, factor=0.5),),
            seed=3,
        )
        assert engine_mode_of(MeasurementConfig(faults=plan)) == "des-reference"

    def test_engine_mode_survives_envelope_roundtrip(self):
        from repro.runtime.envelope import envelope_for, result_from_envelope

        res = _run("fast", methods=("sendrecv",))
        env = envelope_for(res, machine="t3e")
        assert env.provenance["engine_mode"] == "des-fast"
        rebuilt = result_from_envelope(
            type(env).from_dict(env.to_dict())
        )
        assert rebuilt.engine_mode == "des-fast"
        assert rebuilt.b_eff.hex() == res.b_eff.hex()


class TestLoopProtocol:
    """Unit-level checks of the detector itself."""

    def _session(self, n=2):
        fabric = torus_factory((2,))()
        return FastForwardSession(fabric, n)

    def test_aperiodic_boundaries_never_arm(self):
        session = self._session()
        loop = session.loop_for(("p", 1, "m", 0), looplength=100)
        t = 1.0
        for rep in range(1, 30):
            t += 0.1 * rep  # growing gaps: no arithmetic progression
            for rank in range(2):
                assert loop.boundary(rank, rep, t) is None
        assert session.loops_armed == 0

    def test_desynchronized_ranks_never_arm(self):
        session = self._session()
        loop = session.loop_for(("p", 1, "m", 0), looplength=100)
        for rep in range(1, 30):
            base = 1.0 + rep / 1024.0  # exact grid, ample binade headroom
            assert loop.boundary(0, rep, base) is None
            assert loop.boundary(1, rep, base + 1e-9) is None
        assert session.loops_armed == 0

    def test_periodic_boundaries_arm_and_skip(self):
        session = self._session()
        looplength = 100
        loop = session.loop_for(("p", 1, "m", 0), looplength)
        skips = []
        rep, d = 0, 1.0 / 1024.0  # dyadic: boundaries land exactly on grid
        while rep < looplength - 1:
            rep += 1
            t = 1.0 + d * rep
            got = [loop.boundary(rank, rep, t) for rank in range(2)]
            assert got[0] == got[1]
            if got[0] is not None:
                target, landing = got[0]
                skips.append((rep, landing))
                rep = landing
                t = target
        assert session.loops_armed == 1
        assert skips and skips[0][1] == looplength - 1
        # the skip was offered at from_rep (which ran live as the
        # verification rep); everything up to the landing is replayed
        assert session.reps_skipped == skips[0][1] - skips[0][0]

    def test_diverged_prediction_raises(self):
        session = self._session(n=1)
        loop = session.loop_for(("p", 1, "m", 0), looplength=100)
        for rep in range(1, 4):
            loop.boundary(0, rep, 1.0 + rep / 1024.0)
        assert loop.plan is not None
        with pytest.raises(RuntimeError, match="diverged"):
            loop.boundary(0, 4, 12345.0)

    def test_short_loops_never_arm(self):
        session = self._session(n=1)
        loop = session.loop_for(("p", 1, "m", 0), looplength=4)
        for rep in range(1, 4):
            assert loop.boundary(0, rep, 1.0 + rep / 1024.0) is None
        assert session.loops_armed == 0

    def test_finish_releases_loop_state(self):
        session = self._session(n=2)
        key = ("p", 1, "m", 0)
        loop = session.loop_for(key, looplength=10)
        assert session.loop_for(key, looplength=10) is loop
        loop.finish()
        assert key in session.loops
        loop.finish()
        assert key not in session.loops
