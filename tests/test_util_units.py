"""Unit tests for byte/bandwidth unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util import KB, MB, GB, format_bandwidth, format_bytes, format_time, parse_size


class TestConstants:
    def test_binary_convention(self):
        assert KB == 1024
        assert MB == 1024 * 1024
        assert GB == 1024**3


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("1", 1),
            ("8B", 8),
            ("1kB", KB),
            ("1 kB", KB),
            ("32kB", 32 * KB),
            ("1MB", MB),
            ("2 MB", 2 * MB),
            ("1.5MB", int(1.5 * MB)),
            ("1GB", GB),
            ("4k", 4 * KB),
            ("1m", MB),
            ("1KiB", KB),
            ("1MiB", MB),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_rounds(self):
        assert parse_size(10.6) == 10

    def test_rejects_negative_number(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("lots of bytes")

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            parse_size(True)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_roundtrip_ints(self, n):
        assert parse_size(n) == n


class TestFormatBytes:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, "0 B"),
            (1, "1 B"),
            (8, "8 B"),
            (KB, "1 kB"),
            (32 * KB, "32 kB"),
            (MB, "1 MB"),
            (2 * MB, "2 MB"),
            (GB, "1 GB"),
            (int(1.5 * MB), "1.5 MB"),
        ],
    )
    def test_paper_style(self, nbytes, expected):
        assert format_bytes(nbytes) == expected

    def test_negative(self):
        assert format_bytes(-MB) == "-1 MB"


class TestFormatBandwidth:
    def test_table1_style_integers(self):
        assert format_bandwidth(330 * MB) == "330 MB/s"

    def test_small_values_keep_precision(self):
        assert format_bandwidth(0.5 * MB) == "0.500 MB/s"

    def test_mid_values_one_decimal(self):
        assert format_bandwidth(4.25 * MB) == "4.2 MB/s"


class TestFormatTime:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (2.5e-6, "2.5 us"),
            (2.5e-3, "2.50 ms"),
            (3.2, "3.20 s"),
            (900, "15.0 min"),
        ],
    )
    def test_units(self, seconds, expected):
        assert format_time(seconds) == expected

    def test_negative(self):
        assert format_time(-1.0) == "-1.00 s"
