"""End-to-end test of the paper-fidelity measurement mode.

The default configuration collapses repetitions and loop lengths
because the simulator is deterministic; this test runs the *actual*
control loop — loop length starting at 300 and adapted from the
previous loop's execution time into the 2.5-5 ms window, three
repetitions — on a small machine and checks the adaptation worked.
"""

import pytest

from repro.beff import MeasurementConfig, run_beff
from repro.beff.measurement import paper_fidelity
from repro.net import Fabric, NetParams
from repro.sim import Simulator
from repro.topology import Torus
from repro.util import MB


def fabric_factory():
    sim = Simulator()
    return Fabric(
        sim, Torus((2,), link_bw=300 * MB),
        NetParams(latency=10e-6, msg_rate_cap=300 * MB),
    )


@pytest.fixture(scope="module")
def result():
    config = MeasurementConfig(
        methods=("nonblocking",),
        repetitions=3,
        max_looplength=300,
    )
    return run_beff(fabric_factory, 512 * MB, config)


class TestPaperFidelityRun:
    def test_three_repetitions_recorded(self, result):
        reps = {r.repetition for r in result.records}
        assert reps == {0, 1, 2}

    def test_looplength_starts_at_300(self, result):
        assert result.records[0].looplength == 300

    def test_looplengths_adapt_into_window(self, result):
        # after warm-up, loops with small messages settle near the
        # 2.5-5 ms window; big messages drop to looplength 1
        config = paper_fidelity()
        settled = result.records[42:]  # skip the first pattern's warm-up
        for rec in settled:
            if rec.looplength not in (1, 300):
                assert 1e-3 < rec.time < 20e-3, rec

    def test_lmax_loops_run_once(self, result):
        lmax_records = [r for r in result.records if r.size == result.lmax]
        # a 4 MB round takes ~27 ms >> the 5 ms budget -> looplength 1
        assert all(r.looplength == 1 for r in lmax_records)

    def test_repetitions_identical_in_deterministic_sim(self, result):
        # the paper takes the max over repetitions because real
        # machines jitter; our virtual clock makes them identical —
        # which is exactly why the default config uses one repetition
        by_key = {}
        for r in result.records:
            by_key.setdefault((r.pattern, r.size, r.looplength), []).append(r.bandwidth)
        for key, values in by_key.items():
            # identical up to float accumulation of virtual timestamps
            assert max(values) == pytest.approx(min(values), rel=1e-9), key

    def test_matches_fast_mode_result(self, result):
        fast = run_beff(
            fabric_factory, 512 * MB,
            MeasurementConfig(methods=("nonblocking",)),
        )
        assert fast.b_eff == pytest.approx(result.b_eff, rel=1e-6)
