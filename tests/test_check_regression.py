"""Unit tests for the perf regression gate (benchmarks/check_regression.py)."""

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT))

from benchmarks import check_regression as cr  # noqa: E402

RESULTS = REPO_ROOT / "benchmarks" / "results"


def _head_has_baselines() -> bool:
    proc = subprocess.run(
        ["git", "show", "HEAD:benchmarks/results/BENCH_fluid.json"],
        cwd=REPO_ROOT,
        capture_output=True,
    )
    return proc.returncode == 0


needs_git_baseline = pytest.mark.skipif(
    not _head_has_baselines(), reason="no committed BENCH baseline at HEAD"
)


def _copy_results(tmp_path: pathlib.Path) -> pathlib.Path:
    dst = tmp_path / "results"
    dst.mkdir()
    for name in ("BENCH_fluid.json", "BENCH_beffio.json"):
        shutil.copy(RESULTS / name, dst / name)
    return dst


def test_round_speedup_extractor_selects_by_procs():
    payload = {"rounds": [{"procs": 16, "speedup": 2.0}, {"procs": 128, "speedup": 9.5}]}
    assert cr._round_speedup(128)(payload) == 9.5
    assert cr._round_speedup(256)(payload) is None
    assert cr._round_speedup(128)({}) is None


def test_dotted_extractor_missing_sections():
    assert cr._dotted("headline", "speedup")({"headline": {"speedup": 3.0}}) == 3.0
    assert cr._dotted("headline", "speedup")({}) is None
    assert cr._dotted("headline", "speedup")({"headline": 4}) is None


@needs_git_baseline
def test_committed_payloads_pass_gate(tmp_path, capsys):
    results = _copy_results(tmp_path)
    assert cr.check(results, "HEAD", tolerance=0.20) == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out


@needs_git_baseline
def test_regression_beyond_tolerance_fails(tmp_path, capsys):
    results = _copy_results(tmp_path)
    path = results / "BENCH_beffio.json"
    payload = json.loads(path.read_text())
    payload["headline"]["speedup"] = payload["headline"]["speedup"] * 0.5
    path.write_text(json.dumps(payload))
    assert cr.check(results, "HEAD", tolerance=0.20) == 1
    assert "FAIL  BENCH_beffio.json:headline.speedup" in capsys.readouterr().out


@needs_git_baseline
def test_missing_fresh_payload_is_skipped_not_failed(tmp_path, capsys):
    results = tmp_path / "empty"
    results.mkdir()
    assert cr.check(results, "HEAD", tolerance=0.20) == 0
    out = capsys.readouterr().out
    assert "SKIP" in out and "0 regression(s)" in out


def test_unknown_baseline_ref_is_note_not_error(tmp_path, capsys):
    results = _copy_results(tmp_path)
    assert cr.check(results, "no-such-ref", tolerance=0.20) == 0
    out = capsys.readouterr().out
    assert "no baseline at no-such-ref" in out


def test_cli_tolerance_validation():
    with pytest.raises(SystemExit):
        cr.main(["--tolerance", "1.5"])
