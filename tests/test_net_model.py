"""Tests for the Fabric transfer cost model."""

import pytest

from repro.net import Fabric, NetParams
from repro.sim import Process, Simulator, Sleep
from repro.topology import ClusteredSMP, Crossbar, Torus
from repro.util import MB


def make_fabric(topo, **params):
    sim = Simulator()
    fabric = Fabric(sim, topo, NetParams(**params))
    return sim, fabric


class TestNetParamsValidation:
    def test_defaults_valid(self):
        NetParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency": -1.0},
            {"per_hop_latency": -1e-9},
            {"intra_node_latency": -1.0},
            {"rendezvous_latency": -1.0},
            {"eager_threshold": -1},
            {"copy_bw": 0.0},
            {"copy_penalty": 0.0},
            {"copy_penalty": 1.5},
            {"msg_rate_cap": -5.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            NetParams(**kwargs)


class TestLatency:
    def test_inter_node_latency_plus_hops(self):
        topo = Torus((8,), link_bw=100 * MB)
        _, fabric = make_fabric(topo, latency=10e-6, per_hop_latency=1e-6)
        r = topo.route(0, 3)  # 3 hops
        assert fabric.startup_latency(r) == pytest.approx(13e-6)

    def test_intra_node_latency(self):
        topo = ClusteredSMP(2, 2, membus_bw=100 * MB, nic_bw=10 * MB)
        _, fabric = make_fabric(topo, latency=10e-6, intra_node_latency=2e-6)
        assert fabric.startup_latency(topo.route(0, 1)) == pytest.approx(2e-6)

    def test_eager_classification(self):
        _, fabric = make_fabric(Torus((2,), link_bw=MB), eager_threshold=4096)
        assert fabric.is_eager(4096)
        assert not fabric.is_eager(4097)


class TestTransferTiming:
    def test_single_transfer_latency_plus_bandwidth(self):
        sim, fabric = make_fabric(
            Torus((2,), link_bw=100.0), latency=1.0, per_hop_latency=0.0
        )
        done = []

        def prog():
            yield fabric.transfer_event(0, 1, 100)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [pytest.approx(2.0)]  # 1 s latency + 100/100 s

    def test_msg_rate_cap_applies(self):
        sim, fabric = make_fabric(
            Torus((2,), link_bw=1000.0), latency=0.0, msg_rate_cap=10.0
        )
        done = []

        def prog():
            yield fabric.transfer_event(0, 1, 100)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [pytest.approx(10.0)]

    def test_intra_node_copy_halving(self):
        # copy_bw=100, penalty 0.5 -> intra-node message runs at 50 B/s.
        topo = ClusteredSMP(1, 2, membus_bw=10000.0, nic_bw=10000.0)
        sim, fabric = make_fabric(
            topo, intra_node_latency=0.0, copy_bw=100.0, copy_penalty=0.5
        )
        done = []

        def prog():
            yield fabric.transfer_event(0, 1, 100)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [pytest.approx(2.0)]

    def test_self_message_is_local_copy(self):
        topo = Crossbar(2, port_bw=1000.0)
        sim, fabric = make_fabric(topo, intra_node_latency=1.0, copy_bw=100.0)
        done = []

        def prog():
            yield fabric.transfer_event(0, 0, 100)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        # latency 1.0 + 100 bytes at 50 B/s (copy halving) = 3.0
        assert done == [pytest.approx(3.0)]

    def test_concurrent_transfers_share_links(self):
        sim, fabric = make_fabric(Torus((2,), link_bw=100.0), latency=0.0)
        topo = fabric.topology
        done = {}

        def prog(tag):
            yield fabric.transfer_event(0, 1, 100)
            done[tag] = sim.now

        Process(sim, prog("a"))
        Process(sim, prog("b"))
        sim.run_to_completion()
        # both cross tx0 (and the same fabric link): share 100 B/s
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(2.0)

    def test_staggered_transfers(self):
        sim, fabric = make_fabric(Torus((2,), link_bw=100.0), latency=0.0)
        done = {}

        def first():
            yield fabric.transfer_event(0, 1, 100)
            done["first"] = sim.now

        def second():
            yield Sleep(0.5)
            yield fabric.transfer_event(0, 1, 50)
            done["second"] = sim.now

        Process(sim, first())
        Process(sim, second())
        sim.run_to_completion()
        # 0-0.5 s: first alone (50 B). 0.5-1.5: share 50/50 (first +50 done at 1.5;
        # second +50 done at 1.5).
        assert done["first"] == pytest.approx(1.5)
        assert done["second"] == pytest.approx(1.5)

    def test_zero_byte_message_costs_latency_only(self):
        sim, fabric = make_fabric(Torus((2,), link_bw=100.0), latency=1.0)
        done = []

        def prog():
            yield fabric.transfer_event(0, 1, 0)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [pytest.approx(1.0)]

    def test_negative_size_rejected(self):
        _, fabric = make_fabric(Torus((2,), link_bw=100.0))
        with pytest.raises(ValueError):
            fabric.transfer_event(0, 1, -1)

    def test_statistics(self):
        sim, fabric = make_fabric(Torus((2,), link_bw=100.0))

        def prog():
            yield fabric.transfer_event(0, 1, 10)
            yield fabric.transfer_event(1, 0, 20)

        Process(sim, prog())
        sim.run_to_completion()
        assert fabric.messages_sent == 2
        assert fabric.bytes_sent == 30

    def test_transfer_generator_form(self):
        sim, fabric = make_fabric(Torus((2,), link_bw=100.0), latency=0.0)
        done = []

        def prog():
            yield from fabric.transfer(0, 1, 100)
            done.append(sim.now)

        Process(sim, prog())
        sim.run_to_completion()
        assert done == [pytest.approx(1.0)]
