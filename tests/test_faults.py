"""Deterministic fault plans and the injector's bit-exactness guarantees.

The fault subsystem's core contract is twofold: the *same seed* always
produces the *same schedule* (and hence bit-equal degraded benchmark
results), and an *empty or never-opening* plan leaves every benchmark
number bit-identical to an undisturbed run.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.beff import MeasurementConfig, run_beff
from repro.faults import (
    OUTAGE_FLOOR,
    FaultInjector,
    FaultPlan,
    JitterBurst,
    LinkFault,
    ServerCrash,
    Straggler,
)
from repro.net import Fabric, NetParams
from repro.sim import FlowNetwork, Process, Simulator
from repro.topology import Torus
from repro.util import MB

MEM = 512 * MB  # per-proc memory -> Lmax = 4 MB
FAST = dict(methods=("sendrecv", "nonblocking"), max_looplength=1)


def torus_factory(n, link_bw=300 * MB):
    def make():
        sim = Simulator()
        return Fabric(sim, Torus((n,), link_bw=link_bw), NetParams(latency=10e-6))

    return make


def make_fabric(n=4):
    sim = Simulator()
    fabric = Fabric(sim, Torus((n,), link_bw=100 * MB), NetParams())
    return sim, fabric


class TestPlanDeterminism:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_generate_same_seed_same_schedule(self, seed):
        kwargs = dict(nprocs=8, num_servers=4)
        p1 = FaultPlan.generate(seed, 10.0, **kwargs)
        p2 = FaultPlan.generate(seed, 10.0, **kwargs)
        assert p1 == p2
        assert p1.signature() == p2.signature()

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_severity_profile_same_seed_same_schedule(self, seed):
        p1 = FaultPlan.severity_profile(seed, 30.0, 0.75, nprocs=4, num_servers=2)
        p2 = FaultPlan.severity_profile(seed, 30.0, 0.75, nprocs=4, num_servers=2)
        assert p1 == p2

    def test_generate_events_sorted_by_start(self):
        plan = FaultPlan.generate(7, 10.0, nprocs=8, num_servers=4, n_link=3)
        starts = [
            e.t_crash if isinstance(e, ServerCrash) else e.t_start
            for e in plan.events
        ]
        assert starts == sorted(starts)

    def test_severity_zero_is_empty_plan(self):
        plan = FaultPlan.severity_profile(3, 10.0, 0.0, nprocs=4)
        assert plan == FaultPlan(seed=3)
        assert not plan  # falsy: skips injector attachment entirely

    def test_needs_filesystem(self):
        assert FaultPlan(events=(ServerCrash(0, 1.0, 2.0),)).needs_filesystem()
        assert not FaultPlan(events=(LinkFault(0, 1.0, 2.0, 0.5),)).needs_filesystem()


class TestPlanValidation:
    def test_link_factor_range(self):
        with pytest.raises(ValueError, match="factor"):
            LinkFault(0, 1.0, 2.0, 1.5)

    def test_straggler_slowdown_at_least_one(self):
        with pytest.raises(ValueError, match="slowdown"):
            Straggler(0, 1.0, 2.0, 0.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty fault window"):
            JitterBurst(2.0, 2.0, 0.5)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="past"):
            LinkFault(0, -1.0, 2.0, 0.5)

    def test_infinite_end_allowed(self):
        ServerCrash(0, 1.0, math.inf)  # the unrecoverable case

    def test_jitter_amplitude_positive(self):
        with pytest.raises(ValueError, match="amplitude"):
            JitterBurst(1.0, 2.0, 0.0)


class TestInjectorLinks:
    def test_degrade_then_restore_exact_capacity(self):
        sim, fabric = make_fabric()
        link_id = fabric.topology.links_matching("")[0]
        base = fabric.flows.link(link_id).capacity
        inj = FaultInjector(FaultPlan(events=(LinkFault(0, 1.0, 2.0, 0.5),)))
        inj.attach(sim, fabric=fabric)
        sim.run(until=1.5)
        assert fabric.flows.link(link_id).capacity == base * 0.5
        sim.run(until=3.0)
        # bit-exact restore, not approximately equal
        assert fabric.flows.link(link_id).capacity == base

    def test_overlapping_windows_stack_multiplicatively(self):
        sim, fabric = make_fabric()
        link_id = fabric.topology.links_matching("")[0]
        base = fabric.flows.link(link_id).capacity
        plan = FaultPlan(events=(
            LinkFault(0, 1.0, 3.0, 0.5),
            LinkFault(0, 2.0, 4.0, 0.5),
        ))
        FaultInjector(plan).attach(sim, fabric=fabric)
        sim.run(until=2.5)
        assert fabric.flows.link(link_id).capacity == base * 0.25
        sim.run(until=3.5)
        assert fabric.flows.link(link_id).capacity == base * 0.5
        sim.run(until=5.0)
        assert fabric.flows.link(link_id).capacity == base

    def test_outage_keeps_positive_floor_capacity(self):
        sim, fabric = make_fabric()
        link_id = fabric.topology.links_matching("")[0]
        base = fabric.flows.link(link_id).capacity
        FaultInjector(FaultPlan(events=(LinkFault(0, 1.0, 2.0, 0.0),))).attach(
            sim, fabric=fabric
        )
        sim.run(until=1.5)
        cap = fabric.flows.link(link_id).capacity
        assert cap > 0  # the fluid engine needs positive capacities
        assert cap == pytest.approx(base * OUTAGE_FLOOR)
        sim.run(until=3.0)
        assert fabric.flows.link(link_id).capacity == base

    def test_empty_string_selector_hits_every_link(self):
        sim, fabric = make_fabric()
        ids = fabric.topology.links_matching("")
        bases = {i: fabric.flows.link(i).capacity for i in ids}
        FaultInjector(FaultPlan(events=(LinkFault("", 1.0, 2.0, 0.5),))).attach(
            sim, fabric=fabric
        )
        sim.run(until=1.5)
        for i in ids:
            assert fabric.flows.link(i).capacity == bases[i] * 0.5

    def test_unmatched_selector_raises_at_attach(self):
        sim, fabric = make_fabric()
        inj = FaultInjector(
            FaultPlan(events=(LinkFault("no-such-link-xyz", 1.0, 2.0, 0.5),))
        )
        with pytest.raises(ValueError, match="matched no links"):
            inj.attach(sim, fabric=fabric)

    def test_server_fault_without_filesystem_rejected(self):
        sim, fabric = make_fabric()
        inj = FaultInjector(FaultPlan(events=(ServerCrash(0, 1.0, 2.0),)))
        with pytest.raises(ValueError, match="filesystem"):
            inj.attach(sim, fabric=fabric)

    def test_double_attach_rejected(self):
        sim, fabric = make_fabric()
        inj = FaultInjector(FaultPlan())
        inj.attach(sim, fabric=fabric)
        with pytest.raises(RuntimeError, match="already attached"):
            inj.attach(sim, fabric=fabric)

    def test_transitions_are_logged(self):
        sim, fabric = make_fabric()
        inj = FaultInjector(FaultPlan(events=(LinkFault(0, 1.0, 2.0, 0.5),)))
        inj.attach(sim, fabric=fabric)
        sim.run(until=3.0)
        times = [t for t, _ in inj.transitions]
        assert times == [1.0, 2.0]


class TestInjectorLatencyHooks:
    def test_straggler_inflates_latency_only_in_window(self):
        sim, fabric = make_fabric()
        inj = FaultInjector(FaultPlan(events=(Straggler(1, 1.0, 2.0, 3.0),)))
        inj.attach(sim, fabric=fabric)
        lat = 1e-6
        assert inj.adjust_latency(0, 1, lat) == lat  # window not open yet
        sim.run(until=1.5)
        assert inj.adjust_latency(0, 1, lat) == lat * 3.0  # dst straggling
        assert inj.adjust_latency(1, 2, lat) == lat * 3.0  # src straggling
        assert inj.adjust_latency(0, 2, lat) == lat  # uninvolved pair
        sim.run(until=3.0)
        assert inj.adjust_latency(0, 1, lat) == lat  # exact after revert

    def test_jitter_only_inside_burst_and_bounded(self):
        sim, fabric = make_fabric()
        inj = FaultInjector(FaultPlan(events=(JitterBurst(1.0, 2.0, 0.5),), seed=9))
        inj.attach(sim, fabric=fabric)
        lat = 1e-6
        # outside the burst: exact pass-through, no randomness consumed
        assert inj.adjust_latency(0, 1, lat) == lat
        sim.run(until=1.5)
        draws = [inj.adjust_latency(0, 1, lat) for _ in range(8)]
        assert all(lat <= d <= lat * 1.5 for d in draws)
        assert len(set(draws)) > 1  # actually random within the burst
        sim.run(until=3.0)
        assert inj.adjust_latency(0, 1, lat) == lat


class TestSetCapacity:
    @pytest.mark.parametrize("mode", ["incremental", "reference"])
    def test_midflow_change_slows_remaining_bytes(self, mode):
        sim = Simulator()
        net = FlowNetwork(sim, mode=mode)
        link = net.add_link(10.0)
        done = []

        def prog():
            yield net.start_flow([link], 100.0)
            done.append(sim.now)

        Process(sim, prog())
        sim.schedule_abs(5.0, lambda: net.set_capacity(link, 5.0))
        sim.run_to_completion()
        # 50 bytes at 10 B/s, then 50 bytes at 5 B/s
        assert done[0] == pytest.approx(15.0)

    @pytest.mark.parametrize("mode", ["incremental", "reference"])
    def test_restore_speeds_back_up(self, mode):
        sim = Simulator()
        net = FlowNetwork(sim, mode=mode)
        link = net.add_link(10.0)
        done = []

        def prog():
            yield net.start_flow([link], 100.0)
            done.append(sim.now)

        Process(sim, prog())
        sim.schedule_abs(2.0, lambda: net.set_capacity(link, 5.0))
        sim.schedule_abs(6.0, lambda: net.set_capacity(link, 10.0))
        sim.run_to_completion()
        # 20 bytes fast + 20 bytes slow + 60 bytes fast
        assert done[0] == pytest.approx(12.0)

    def test_invalid_capacities_rejected(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_link(10.0)
        with pytest.raises(ValueError):
            net.set_capacity(link, 0.0)
        with pytest.raises(ValueError):
            net.set_capacity(link, math.inf)

    def test_link_ids_and_find_links(self):
        _, fabric = make_fabric()
        net = fabric.flows
        ids = net.link_ids()
        assert ids  # a torus has physical links
        assert net.find_links("") == ids
        assert net.find_links("no-such-name-xyz") == []


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_beff(torus_factory(4), MEM, MeasurementConfig(**FAST))

    def test_empty_plan_is_bit_identical(self, baseline):
        cfg = MeasurementConfig(**FAST, faults=FaultPlan.empty())
        res = run_beff(torus_factory(4), MEM, cfg)
        assert res.b_eff == baseline.b_eff
        assert res.per_pattern == baseline.per_pattern
        assert res.records == baseline.records
        assert res.validity.ok

    def test_never_opening_plan_is_bit_identical(self, baseline):
        # windows far past the end of the run: the injector is attached
        # and scheduled, but no window ever opens during measurement
        plan = FaultPlan(events=(
            LinkFault(0, 1e6, 1e6 + 1.0, 0.5),
            Straggler(0, 1e6, 1e6 + 1.0, 4.0),
            JitterBurst(1e6, 1e6 + 1.0, 0.5),
        ))
        res = run_beff(torus_factory(4), MEM, MeasurementConfig(**FAST, faults=plan))
        assert res.b_eff == baseline.b_eff
        assert res.records == baseline.records
        assert res.validity.ok

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=3, deadline=None)
    def test_same_seed_bit_equal_degraded_results(self, seed):
        p1 = FaultPlan.severity_profile(seed, 1.0, 0.6, nprocs=4)
        p2 = FaultPlan.severity_profile(seed, 1.0, 0.6, nprocs=4)
        assert p1 == p2
        r1 = run_beff(torus_factory(4), MEM, MeasurementConfig(**FAST, faults=p1))
        r2 = run_beff(torus_factory(4), MEM, MeasurementConfig(**FAST, faults=p2))
        assert r1.b_eff == r2.b_eff
        assert r1.records == r2.records

    def test_faults_degrade_bandwidth(self, baseline):
        plan = FaultPlan.severity_profile(11, 1.0, 0.6, nprocs=4)
        res = run_beff(torus_factory(4), MEM, MeasurementConfig(**FAST, faults=plan))
        assert res.b_eff < baseline.b_eff
