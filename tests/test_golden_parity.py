"""Golden parity: published aggregates pinned bit-exactly.

``tests/data/golden_parity.json`` records, as ``float.hex`` strings,
the aggregate numbers both benchmarks produced on two library
machines in both engine modes *before* the aggregation formulas moved
onto the shared reduction-tree runtime.  These tests re-run the same
configurations and demand bit-identical output, so any refactor of
the runtime spine (fold order, reducer composition, envelope round
trips) that perturbs a single ULP fails loudly.

The matrix: b_eff on t3e + sr2201 with backend des + analytic, and
b_eff_io on t3e + sp in fast + reference mode, all at 4 processes.
"""

import json
import pathlib

import pytest

from repro.beff.measurement import MeasurementConfig
from repro.beffio.benchmark import BeffIOConfig
from repro.machines import MACHINES

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_parity.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: the b_eff_io configuration the goldens were recorded under
BEFFIO_CONFIG = dict(T=1.0, pattern_types=(0, 1, 2, 3, 4))

NPROCS = 4


def hexf(x):
    return float.hex(x)


@pytest.mark.parametrize(
    "key", sorted(k for k in GOLDEN if k.startswith("beff/"))
)
def test_beff_aggregates_are_bit_identical(key):
    _, machine, backend = key.split("/")
    spec = MACHINES[machine]()
    result = spec.run_beff(NPROCS, MeasurementConfig(backend=backend))
    got = {
        "b_eff": hexf(result.b_eff),
        "b_eff_at_lmax": hexf(result.b_eff_at_lmax),
        "ring_only_at_lmax": hexf(result.ring_only_at_lmax),
        "logavg_ring": hexf(result.logavg_ring),
        "logavg_random": hexf(result.logavg_random),
        "per_pattern": {p: hexf(v) for p, v in result.per_pattern.items()},
    }
    assert got == GOLDEN[key]


@pytest.mark.parametrize(
    "key", sorted(k for k in GOLDEN if k.startswith("beffio/"))
)
def test_beffio_aggregates_are_bit_identical(key):
    _, machine, mode = key.split("/")
    spec = MACHINES[machine]()
    result = spec.run_beffio(NPROCS, BeffIOConfig(mode=mode, **BEFFIO_CONFIG))
    got = {
        "b_eff_io": hexf(result.b_eff_io),
        "method_values": {m: hexf(v) for m, v in result.method_values.items()},
        "type_bandwidths": {
            f"{t.method}/t{t.pattern_type}": hexf(t.bandwidth)
            for t in result.type_results
        },
    }
    assert got == GOLDEN[key]
