"""Tests for the collective rendezvous gate."""

import pytest

from repro.mpiio.gate import CollectiveGate
from repro.sim import Process, SimEvent, Simulator, Sleep


def make(size):
    sim = Simulator()
    return sim, CollectiveGate(sim, size, name="g")


class TestGate:
    def test_all_ranks_leave_together_with_result(self):
        sim, gate = make(3)
        exits = []

        def action(contribs):
            yield Sleep(1.0)
            return sum(contribs.values())

        def rank(r, delay):
            yield Sleep(delay)
            result = yield from gate.arrive(r, r * 10, action)
            exits.append((r, result, sim.now))

        for r, delay in ((0, 0.0), (1, 2.0), (2, 1.0)):
            Process(sim, rank(r, delay))
        sim.run_to_completion()
        # last arrival at t=2, action takes 1 s -> everyone leaves at 3
        assert sorted(exits) == [(0, 30, 3.0), (1, 30, 3.0), (2, 30, 3.0)]

    def test_sequential_calls_match_by_order(self):
        sim, gate = make(2)
        results = []

        def action(contribs):
            yield Sleep(0.1)
            return tuple(sorted(contribs.values()))

        def rank(r):
            a = yield from gate.arrive(r, f"first-{r}", action)
            b = yield from gate.arrive(r, f"second-{r}", action)
            if r == 0:
                results.extend([a, b])

        Process(sim, rank(0))
        Process(sim, rank(1))
        sim.run_to_completion()
        assert results == [
            ("first-0", "first-1"),
            ("second-0", "second-1"),
        ]

    def test_size_one_gate_runs_immediately(self):
        sim, gate = make(1)
        results = []

        def action(contribs):
            yield Sleep(0.5)
            return contribs[0]

        def rank():
            out = yield from gate.arrive(0, "solo", action)
            results.append((out, sim.now))

        Process(sim, rank())
        sim.run_to_completion()
        assert results == [("solo", 0.5)]

    def test_double_arrival_same_seq_rejected(self):
        sim, gate = make(2)

        def action(contribs):
            yield Sleep(0.0)

        # simulate a buggy rank arriving twice before anyone else:
        # the second arrive() of rank 0 joins instance #1, not #0, so
        # re-arrival at the same instance must be forced artificially
        gate._rank_seq[0] = 0
        gen = gate.arrive(0, "x", action)
        next(gen)  # parks on the release event of instance 0
        gate._rank_seq[0] = 0  # rewind: next arrival hits instance 0 again
        gen2 = gate.arrive(0, "y", action)
        with pytest.raises(RuntimeError, match="twice"):
            next(gen2)

    def test_bad_rank_rejected(self):
        sim, gate = make(2)
        gen = gate.arrive(5, None, lambda c: iter(()))
        with pytest.raises(ValueError):
            next(gen)

    def test_bad_size_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CollectiveGate(sim, 0)
